"""Legacy setup shim.

The offline build environment has setuptools but no ``wheel`` package,
so PEP-660 editable installs (which build a wheel) fail. This shim
lets ``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path, which needs no wheel.
"""

from setuptools import setup

setup()
