"""Mesh interconnect model: topology, packets, wormhole timing."""

from repro.network.fabric import Network, NetworkStats
from repro.network.packet import PROTOCOL_KINDS, Packet, PacketKind
from repro.network.topology import Coord, Mesh2D

__all__ = [
    "Coord",
    "Mesh2D",
    "Network",
    "NetworkStats",
    "PROTOCOL_KINDS",
    "Packet",
    "PacketKind",
]
