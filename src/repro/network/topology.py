"""2-D mesh topology and dimension-ordered (XY) routing.

Alewife uses a two-dimensional mesh interconnect (the paper's
prototype plan: 2-D mesh, 33 MHz nodes). Nodes are numbered row-major:
node ``i`` sits at ``(x, y) = (i % width, i // width)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Coord:
    """Mesh coordinate."""

    x: int
    y: int


class Mesh2D:
    """A ``width`` x ``height`` mesh with XY (dimension-ordered) routing.

    Links are unidirectional and identified by ``(src_node, dst_node)``
    for adjacent nodes; XY routing first corrects the X coordinate,
    then the Y coordinate, which is deadlock-free on a mesh.
    """

    def __init__(self, n_nodes: int, width: int | None = None) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if width is None:
            width = int(math.isqrt(n_nodes))
            while n_nodes % width != 0:
                width -= 1
        if width <= 0 or n_nodes % width != 0:
            raise ValueError(f"width {width} does not tile {n_nodes} nodes")
        self.n_nodes = n_nodes
        self.width = width
        self.height = n_nodes // width
        #: memoized routes — routing is a pure function of (src, dst),
        #: and hot protocol paths re-route the same pairs constantly
        self._route_cache: dict[tuple[int, int], list[tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    def coord(self, node: int) -> Coord:
        """Coordinate of ``node`` (row-major numbering)."""
        self._check(node)
        return Coord(node % self.width, node // self.width)

    def node_at(self, coord: Coord) -> int:
        if not (0 <= coord.x < self.width and 0 <= coord.y < self.height):
            raise ValueError(f"coordinate {coord} outside {self.width}x{self.height}")
        return coord.y * self.width + coord.x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        a, b = self.coord(src), self.coord(dst)
        return abs(a.x - b.x) + abs(a.y - b.y)

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """XY route as a list of directed links ``(from, to)``.

        An empty list means ``src == dst`` (local delivery; no links
        traversed). Memoized; callers must not mutate the result.
        """
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        route = self._compute_route(src, dst)
        self._route_cache[(src, dst)] = route
        return route

    def _compute_route(self, src: int, dst: int) -> list[tuple[int, int]]:
        self._check(src)
        self._check(dst)
        links: list[tuple[int, int]] = []
        cur = self.coord(src)
        target = self.coord(dst)
        while cur.x != target.x:
            nxt = Coord(cur.x + (1 if target.x > cur.x else -1), cur.y)
            links.append((self.node_at(cur), self.node_at(nxt)))
            cur = nxt
        while cur.y != target.y:
            nxt = Coord(cur.x, cur.y + (1 if target.y > cur.y else -1))
            links.append((self.node_at(cur), self.node_at(nxt)))
            cur = nxt
        return links

    def neighbors(self, node: int) -> list[int]:
        """Nodes one hop away (2-4 of them depending on position)."""
        c = self.coord(node)
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = c.x + dx, c.y + dy
            if 0 <= nx < self.width and 0 <= ny < self.height:
                out.append(self.node_at(Coord(nx, ny)))
        return out

    def _check(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} outside [0, {self.n_nodes})")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Mesh2D {self.width}x{self.height}>"


class Torus2D(Mesh2D):
    """2-D torus: the mesh with wraparound links in both dimensions.

    Alewife's prototype used a mesh; the torus halves the network
    diameter (each dimension's distance is taken modulo around the
    ring) at the cost of the wrap wiring — a standard what-if for the
    network-sensitivity ablations.
    """

    def hops(self, src: int, dst: int) -> int:
        a, b = self.coord(src), self.coord(dst)
        dx = abs(a.x - b.x)
        dy = abs(a.y - b.y)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def _step_toward(self, cur: int, target: int, size: int) -> int:
        """Next coordinate along the shorter ring direction."""
        fwd = (target - cur) % size
        back = (cur - target) % size
        if fwd <= back:
            return (cur + 1) % size
        return (cur - 1) % size

    def _compute_route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Dimension-ordered routing, taking the shorter way around
        each ring (deadlock-free with the usual virtual-channel
        assumption, which our timing model abstracts)."""
        self._check(src)
        self._check(dst)
        links: list[tuple[int, int]] = []
        cur = self.coord(src)
        target = self.coord(dst)
        while cur.x != target.x:
            nx = self._step_toward(cur.x, target.x, self.width)
            nxt = Coord(nx, cur.y)
            links.append((self.node_at(cur), self.node_at(nxt)))
            cur = nxt
        while cur.y != target.y:
            ny = self._step_toward(cur.y, target.y, self.height)
            nxt = Coord(cur.x, ny)
            links.append((self.node_at(cur), self.node_at(nxt)))
            cur = nxt
        return links

    def neighbors(self, node: int) -> list[int]:
        """Always four neighbours on a torus (with wraparound)."""
        c = self.coord(node)
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx = (c.x + dx) % self.width
            ny = (c.y + dy) % self.height
            n = self.node_at(Coord(nx, ny))
            if n != node:
                out.append(n)
        return sorted(set(out))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Torus2D {self.width}x{self.height}>"
