"""Network packets.

Every inter-node communication — coherence protocol traffic *and*
software messages — travels as a :class:`Packet`. The CMMU message
format (paper Fig. 5) is layered on top of this in ``repro.cmmu``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

_packet_ids = itertools.count()


class PacketKind(enum.Enum):
    """Coarse classification used for routing to the right consumer."""

    # Members are singletons, so identity hashing is equivalent to the
    # default name-based Enum hash — but object.__hash__ is a C slot,
    # and every packet is hashed several times (is_protocol frozenset
    # probe, per-kind stats Counter) on the hot path.
    __hash__ = object.__hash__

    # --- cache-coherence protocol traffic (consumed by CMMU hardware) ---
    COH_READ_REQ = "coh_read_req"
    COH_WRITE_REQ = "coh_write_req"          # read-exclusive
    COH_UPGRADE_REQ = "coh_upgrade_req"      # S -> M, no data needed
    COH_DATA_REPLY = "coh_data_reply"
    COH_ACK_REPLY = "coh_ack_reply"          # upgrade grant, no data
    COH_INVALIDATE = "coh_invalidate"
    COH_INV_ACK = "coh_inv_ack"
    COH_FORWARD = "coh_forward"              # home forwards req to owner
    COH_WRITEBACK = "coh_writeback"
    # --- software messages (delivered via interrupt + receive window) ---
    USER_MESSAGE = "user_message"
    # --- bulk data transfer (DMA at both ends) ---
    DMA_TRANSFER = "dma_transfer"


#: Packet kinds that the CMMU consumes in hardware without
#: interrupting the processor.
PROTOCOL_KINDS = frozenset(
    {
        PacketKind.COH_READ_REQ,
        PacketKind.COH_WRITE_REQ,
        PacketKind.COH_UPGRADE_REQ,
        PacketKind.COH_DATA_REPLY,
        PacketKind.COH_ACK_REPLY,
        PacketKind.COH_INVALIDATE,
        PacketKind.COH_INV_ACK,
        PacketKind.COH_FORWARD,
        PacketKind.COH_WRITEBACK,
    }
)


@dataclass(slots=True)
class Packet:
    """A single network packet (slotted: coherence-heavy runs create
    millions of them).

    ``size_words`` (32-bit words, header included) determines the
    occupancy of each link the packet crosses; ``payload`` carries
    model-level data (protocol transaction references, message
    operands, DMA ranges).
    """

    src: int
    dst: int
    kind: PacketKind
    size_words: int
    payload: Any = None
    #: when set, the packet body streams at this rate instead of the
    #: link bandwidth — used for DMA transfers whose end-to-end rate is
    #: limited by the (slower) memory DMA engines at the endpoints
    cycles_per_word_override: float | None = None
    pid: int = field(default_factory=_packet_ids.__next__)
    launched_at: int = -1
    delivered_at: int = -1

    def __post_init__(self) -> None:
        if self.size_words <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_words}")

    @property
    def is_protocol(self) -> bool:
        return self.kind in PROTOCOL_KINDS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet#{self.pid} {self.kind.value} {self.src}->{self.dst} "
            f"{self.size_words}w>"
        )
