"""Wormhole-routed mesh network timing model.

A packet's head flit advances one hop per ``hop_latency`` cycles; the
body streams behind it at the channel bandwidth, so an uncontended
packet arrives after::

    hops * hop_latency + size_words * cycles_per_word

Contention is modelled per directed link: a link is occupied for the
time the packet body takes to stream across it, and later packets
queue behind (FIFO per link). This is the property that makes
hot-spot effects (e.g. serialization at a combining-tree parent or a
directory home node) visible to the experiments.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.network.packet import Packet
from repro.network.topology import Mesh2D
from repro.sim.engine import Resource, SimulationError, Simulator

DeliverFn = Callable[[Packet], None]


@dataclass(slots=True)
class NetworkStats:
    """Aggregate traffic counters.

    The fault counters are bumped by an attached
    :class:`~repro.faults.FaultInjector`; they stay zero on a healthy
    fabric.
    """

    packets: int = 0
    words: int = 0
    by_kind: Counter = field(default_factory=Counter)
    total_latency: int = 0
    # fault injection (see repro.faults)
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    outage_drops: int = 0
    stalls: int = 0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.packets if self.packets else 0.0

    @property
    def faults_injected(self) -> int:
        """Total injected fault events of every kind."""
        return (
            self.dropped + self.duplicated + self.delayed
            + self.reordered + self.outage_drops + self.stalls
        )

    def reset(self) -> None:
        """Zero every counter (e.g. after warm-up, before the measured
        phase of an experiment)."""
        self.packets = 0
        self.words = 0
        self.by_kind.clear()
        self.total_latency = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.outage_drops = 0
        self.stalls = 0


class Network:
    """The mesh interconnect: injects packets, delivers to node sinks."""

    def __init__(
        self,
        sim: Simulator,
        mesh: Mesh2D,
        hop_latency: int = 2,
        bandwidth_bytes_per_cycle: float = 2.0,
        local_loopback_latency: int = 2,
        injection_latency: int = 1,
    ) -> None:
        if hop_latency < 0 or local_loopback_latency < 0 or injection_latency < 0:
            raise ValueError("latencies must be non-negative")
        if bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.mesh = mesh
        self.hop_latency = hop_latency
        self.cycles_per_word = 4.0 / bandwidth_bytes_per_cycle
        self.local_loopback_latency = local_loopback_latency
        self.injection_latency = injection_latency
        self._links: dict[tuple[int, int], Resource] = {}
        self._sinks: dict[int, DeliverFn] = {}
        #: per-(src, dst) resolved link Resource chains — route lookup
        #: and per-hop dict resolution done once, not per packet
        self._route_links: dict[tuple[int, int], list[Resource]] = {}
        #: size_words -> ceil(words * cycles_per_word): protocol packets
        #: come in a handful of fixed sizes, so the per-packet float
        #: ceil math collapses to a dict probe
        self._body_cache: dict[int, int] = {}
        self.stats = NetworkStats()
        #: set by Machine when this fabric belongs to a partition shard
        #: (see repro.perf.partition.ShardView); None on serial runs
        self.shard = None

    # ------------------------------------------------------------------
    def attach(self, node: int, sink: DeliverFn) -> None:
        """Register the packet consumer for ``node`` (its CMMU)."""
        if node in self._sinks:
            raise SimulationError(f"node {node} already attached")
        self._sinks[node] = sink

    def _link(self, a: int, b: int) -> Resource:
        key = (a, b)
        res = self._links.get(key)
        if res is None:
            res = Resource(self.sim, name=f"link{a}->{b}")
            self._links[key] = res
        return res

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> int:
        """Inject ``packet``; returns the (predicted) delivery cycle.

        Delivery invokes the destination node's sink exactly at the
        returned cycle.
        """
        if packet.dst not in self._sinks:
            raise SimulationError(f"no sink attached at node {packet.dst}")
        now = self.sim.now
        packet.launched_at = now
        if packet.cycles_per_word_override is None:
            body_cycles = self._body_cache.get(packet.size_words)
            if body_cycles is None:
                body_cycles = int(-(-packet.size_words * self.cycles_per_word // 1))
                self._body_cache[packet.size_words] = body_cycles
        else:
            cpw = packet.cycles_per_word_override
            if cpw < self.cycles_per_word:
                cpw = self.cycles_per_word  # links cannot stream faster than wires
            body_cycles = int(-(-packet.size_words * cpw // 1))

        if packet.src == packet.dst:
            arrival = now + self.local_loopback_latency + body_cycles
        else:
            shard = self.shard
            if shard is not None and not shard.owns(packet.dst):
                # Cross-shard: timing-walk the locally-owned links and
                # hand the packet to the window barrier; the owning
                # shard delivers it. Counts stats itself.
                return shard.egress(self, packet, body_cycles)
            links = self._route_links.get((packet.src, packet.dst))
            if links is None:
                links = [
                    self._link(a, b)
                    for a, b in self.mesh.route(packet.src, packet.dst)
                ]
                self._route_links[(packet.src, packet.dst)] = links
            head = now + self.injection_latency
            tail = head
            hop = self.hop_latency
            for link in links:
                start = head + hop
                avail = link.busy_until
                if avail > start:
                    start = avail
                link.busy_until = start + body_cycles
                link.total_busy += body_cycles
                head = start
                tail = start + body_cycles
            arrival = tail

        packet.delivered_at = arrival
        stats = self.stats
        stats.packets += 1
        stats.words += packet.size_words
        stats.by_kind[packet.kind] += 1
        stats.total_latency += arrival - now
        sink = self._sinks[packet.dst]
        self.sim.call_after(arrival - now, lambda: sink(packet))
        return arrival

    def min_cross_latency(self) -> int:
        """Lower bound on send→arrival for any ``src != dst`` packet.

        Every remote packet pays injection plus at least one hop before
        its body (possibly zero words) can finish streaming, so::

            arrival - send >= injection_latency + hop_latency

        This is the conservative lookahead partitioned runs use as
        their bounded-lag window width (repro.perf.partition); the
        body term is deliberately excluded so the bound holds even for
        hypothetical zero-word packets.
        """
        return self.injection_latency + self.hop_latency

    def link_utilization(self) -> dict[tuple[int, int], int]:
        """Total busy cycles per directed link (for diagnostics)."""
        return {k: r.total_busy for k, r in self._links.items()}

    def register_metrics(self, reg, **labels) -> None:
        """Register this fabric's instruments (lazy reads, no hot-path
        cost) into a :class:`~repro.obs.metrics.MetricsRegistry`."""
        s = self.stats
        labels = {"component": "network", **labels}
        reg.counter("net.packets", lambda: s.packets, **labels)
        reg.counter("net.words", lambda: s.words, **labels)
        reg.counter("net.total_latency", lambda: s.total_latency, **labels)
        reg.gauge("net.mean_packet_latency", lambda: s.mean_latency, **labels)
        reg.counter("net.faults_injected", lambda: s.faults_injected, **labels)
        for fault in ("dropped", "duplicated", "delayed", "reordered",
                      "outage_drops", "stalls"):
            reg.counter(f"net.fault.{fault}",
                        lambda f=fault: getattr(s, f), **labels)
        for kind in list(self.stats.by_kind):
            reg.counter("net.packets_by_kind",
                        lambda k=kind: s.by_kind.get(k, 0),
                        kind=kind.value, **labels)
        reg.counter(
            "net.link_busy_cycles",
            lambda: sum(r.total_busy for r in self._links.values()),
            **labels,
        )
        reg.gauge("net.links", lambda: len(self._links), **labels)
