"""Memory-to-memory bulk copy (paper §4.4, Fig. 7).

Three implementations of copying a block from the caller's local
memory to a remote node's memory:

* :func:`copy_no_prefetch` — doubleword load/store loop through the
  shared-memory interface; every destination line costs a blocking
  remote read-exclusive transaction.
* :func:`copy_prefetch` — same loop, prefetching one cache block
  (16 bytes) ahead. Prefetches fetch lines in SHARED state, so each
  destination line now costs *two* home transactions (the prefetch
  plus the store's write transaction) — reproducing the paper's
  observation that the prefetching copy loop is the slowest.
* :class:`BulkTransfer` / :meth:`BulkTransfer.send` — a single message
  with an address-length pair, gathered and scattered by the CMMU's
  DMA engines.
"""

from __future__ import annotations

import itertools
from typing import Generator

from repro.cmmu.message import BlockRef
from repro.machine.machine import Machine
from repro.proc.effects import (
    Compute,
    Load,
    LoadComputeStore,
    Prefetch,
    Send,
    Store,
    Storeback,
)
from repro.runtime.reliable import ReliableLayer
from repro.runtime.sync import Future
from repro.sim.engine import SimulationError

MSG_BULK = "bulk.xfer"
MSG_BULK_ACK = "bulk.ack"

#: per-doubleword loop overhead (index bump + branch) in cycles
LOOP_OVERHEAD = 1

_copy_ids = itertools.count()


def copy_no_prefetch(
    src: int, dst: int, nbytes: int, line_size: int = 16, macro: bool = True
) -> Generator:
    """Simple doubleword copy loop (runs on the calling processor).

    ``macro=True`` (default) issues the loop as one
    :class:`~repro.proc.effects.LoadComputeStore` batch —
    cycle-identical to the element-at-a-time loop (``macro=False``,
    kept for the macro-vs-micro ablation and identity tests)."""
    if nbytes % 8:
        raise ValueError(f"copy length must be a multiple of 8, got {nbytes}")
    if macro:
        yield LoadComputeStore(src, dst, nbytes // 8, compute=LOOP_OVERHEAD)
        return
    for off in range(0, nbytes, 8):
        v = yield Load(src + off)
        yield Store(dst + off, v)
        yield Compute(LOOP_OVERHEAD)


def copy_prefetch(
    src: int, dst: int, nbytes: int, line_size: int = 16, macro: bool = True
) -> Generator:
    """Copy loop prefetching one cache block ahead on both streams."""
    if nbytes % 8:
        raise ValueError(f"copy length must be a multiple of 8, got {nbytes}")
    if macro:
        yield LoadComputeStore(
            src, dst, nbytes // 8, compute=LOOP_OVERHEAD, prefetch_line=line_size
        )
        return
    for off in range(0, nbytes, 8):
        if off % line_size == 0 and off + line_size < nbytes:
            yield Prefetch(src + off + line_size)
            yield Prefetch(dst + off + line_size)
        v = yield Load(src + off)
        yield Store(dst + off, v)
        yield Compute(LOOP_OVERHEAD)


class BulkTransfer:
    """Message-based memory-to-memory copy service.

    Registers a handler on every node; :meth:`send` may be called from
    any thread (or handler) on the source node. The destination
    handler scatters the data with a storeback and optionally acks.

    With ``reliable`` set, both the data message and the completion
    ack travel through the :class:`ReliableLayer` (sequence numbers,
    acks, retransmission), so the copy runs to completion on a lossy
    fabric; :meth:`send` then needs ``src_node`` to bind retransmit
    timers to the sending processor.
    """

    def __init__(
        self,
        machine: Machine,
        send_sw_cost: int = 100,
        recv_sw_cost: int = 100,
        reliable: ReliableLayer | None = None,
    ) -> None:
        self.machine = machine
        #: software library overhead around the raw hardware interface
        #: (argument checking, buffer bookkeeping, completion setup) —
        #: calibrated so the fixed per-copy cost matches Fig. 7's
        #: small-block numbers (~360 cycles + streaming)
        self.send_sw_cost = send_sw_cost
        self.recv_sw_cost = recv_sw_cost
        self.reliable = reliable
        #: sender-side completion futures: copy_id -> Future
        self._acks: dict[int, Future] = {}
        #: receiver-side notification futures: copy_id -> Future
        self._arrivals: dict[int, Future] = {}
        if reliable is not None:
            reliable.register_everywhere(MSG_BULK, self._handle_bulk)
            reliable.register_everywhere(MSG_BULK_ACK, self._handle_ack)
        else:
            for node in range(machine.n_nodes):
                proc = machine.processor(node)
                proc.register_handler(MSG_BULK, self._handle_bulk)
                proc.register_handler(MSG_BULK_ACK, self._handle_ack)

    def _send(
        self, src: int | None, dst: int, mtype: str, operands=(), blocks=None
    ) -> Generator:
        if self.reliable is None:
            yield Send(dst, mtype, operands=operands, blocks=blocks or [])
        else:
            yield from self.reliable.send(src, dst, mtype, operands, blocks)

    # ------------------------------------------------------------------
    def arrival_future(self, copy_id: int) -> Future:
        """Future resolved when the given copy lands at its destination
        (register before or after arrival; both orders work)."""
        return self._arrivals.setdefault(copy_id, Future())

    def new_copy_id(self) -> int:
        return next(_copy_ids)

    def send(
        self,
        dst_node: int,
        src_addr: int,
        dst_addr: int,
        nbytes: int,
        wait_ack: bool = False,
        copy_id: int | None = None,
        src_node: int | None = None,
    ) -> Generator:
        """``yield from bulk.send(...)`` from the source processor.

        Returns the copy id. With ``wait_ack`` the caller blocks until
        the destination acknowledges the storeback. In reliable mode
        ``src_node`` (the node this generator runs on) is required.
        """
        if self.reliable is not None and src_node is None:
            raise SimulationError("reliable bulk transfer needs src_node")
        cid = self.new_copy_id() if copy_id is None else copy_id
        yield Compute(self.send_sw_cost)
        yield from self._send(
            src_node,
            dst_node,
            MSG_BULK,
            operands=(dst_addr, cid, 1 if wait_ack else 0),
            blocks=[BlockRef(src_addr, nbytes)],
        )
        if wait_ack:
            fut = self._acks.setdefault(cid, Future())
            yield from fut.wait()
            del self._acks[cid]
        return cid

    # ------------------------------------------------------------------
    def _handle_bulk(self, msg) -> Generator:
        dst_addr, cid, want_ack = msg.operands
        yield Compute(self.recv_sw_cost)
        yield Storeback(dst_addr)
        if want_ack:
            # the handler runs on the destination node (== msg.dst)
            yield from self._send(msg.dst, msg.src, MSG_BULK_ACK, operands=(cid,))
        fut = self._arrivals.setdefault(cid, Future())
        fut.resolve(None)

    def _handle_ack(self, msg) -> Generator:
        (cid,) = msg.operands
        yield Compute(2)
        fut = self._acks.setdefault(cid, Future())
        fut.resolve(None)
