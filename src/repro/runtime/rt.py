"""The Alewife runtime system.

Layers lazy-task-creation scheduling, futures, and remote thread
invocation on top of the machine. Two interchangeable scheduler
mechanisms implement the paper's §4.5 comparison:

* ``scheduler="sm"`` — every task queue in shared memory, guarded by
  spin locks (the original, shared-memory-only runtime).
* ``scheduler="hybrid"`` — owner-only queues with message-based
  stealing and migration (the integrated runtime).

Typical use::

    m = Machine(MachineConfig(n_nodes=64))
    rt = Runtime(m, scheduler="hybrid")

    def tree(rt, node, depth):
        if depth == 0:
            yield Compute(100)
            return 1
        fut = yield from rt.fork(node, lambda rt, nd: tree(rt, nd, depth - 1))
        right = yield from tree(rt, node, depth - 1)
        left = yield from rt.join(node, fut)
        return left + right

    result, cycles = rt.run_to_completion(0, lambda rt, nd: tree(rt, nd, 10))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.check import hooks
from repro.machine.machine import Machine
from repro.runtime.reliable import ReliableLayer
from repro.runtime.scheduler.base import NodeScheduler
from repro.runtime.scheduler.hybrid import (
    MSG_STEAL_REPLY,
    MSG_STEAL_REQ,
    MSG_TASK,
    HybridScheduler,
)
from repro.runtime.scheduler.shmem import ShmemScheduler
from repro.runtime.task import Task, TaskFactory, TaskState
from repro.runtime.sync import Future
from repro.sim.engine import SimulationError


@dataclass
class RuntimeParams:
    """Software cost constants for the runtime system (cycles)."""

    #: hybrid scheduler: unsynchronized local deque push / pop
    #: (descriptor marshalling; calibrated against Fig. 9 — see
    #: EXPERIMENTS.md)
    local_push_cost: int = 20
    local_pop_cost: int = 14
    #: hybrid handlers: serve a steal request / process its reply
    steal_handler_cost: int = 20
    reply_handler_cost: int = 10
    #: hybrid handler: unpack + enqueue a migrated/invoked task
    enqueue_handler_cost: int = 14
    #: idle-loop backoff after a failed steal (doubles up to the cap)
    steal_backoff: int = 50
    steal_backoff_max: int = 800
    #: local-queue poll cadence inside the backoff loop
    poll_quantum: int = 24
    #: invoking side: marshalling thread arguments into the descriptor
    remote_invoke_marshal: int = 8
    #: capacity of each shared-memory queue (power of two)
    sm_queue_capacity: int = 4096
    #: task-descriptor size in the shared-memory queue (words)
    sm_entry_words: int = 4
    #: tasks taken per successful shared-memory steal (steal-half,
    #: capped) — amortizes the locked queue visit over migrations
    sm_steal_batch: int = 2


class Runtime:
    """Machine-wide runtime: one scheduler per node plus the task table."""

    def __init__(
        self,
        machine: Machine,
        scheduler: str = "hybrid",
        params: RuntimeParams | None = None,
        seed: int = 0,
        reliable: ReliableLayer | None = None,
    ) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.p = params or RuntimeParams()
        self.seed = seed
        self.kind = scheduler
        #: with a ReliableLayer, the hybrid scheduler's messages (steal
        #: request/reply, task migration, remote invocation) survive
        #: packet loss; the shared-memory scheduler needs no such layer
        #: (coherence traffic is hardware-reliable)
        self.reliable = reliable
        self.tasks: dict[int, Task] = {}
        self.done = False
        if machine.shard is not None:
            # partitioned runs: the root shard broadcasts completion at
            # the next window barrier so every shard's idle loops stop
            machine.shard.on_signal("rt.done", self._on_done_signal)
        if scheduler == "hybrid":
            sched_cls: type[NodeScheduler] = HybridScheduler
        elif scheduler == "sm":
            sched_cls = ShmemScheduler
        else:
            raise ValueError(f"unknown scheduler kind {scheduler!r} (use 'hybrid' or 'sm')")
        self.schedulers: list[NodeScheduler] = [
            sched_cls(self, node) for node in range(machine.n_nodes)
        ]
        machine.runtime = self  # let observers reach the schedulers
        for node, sched in enumerate(self.schedulers):
            proc = machine.processor(node)
            proc.idle_hook = sched.idle_step
            if isinstance(sched, HybridScheduler):
                handlers = (
                    (MSG_STEAL_REQ, sched.handle_steal_req),
                    (MSG_STEAL_REPLY, sched.handle_steal_reply),
                    (MSG_TASK, sched.handle_task),
                )
                for mtype, fn in handlers:
                    if reliable is not None:
                        reliable.register_handler(node, mtype, fn)
                    else:
                        proc.register_handler(mtype, fn)
            proc.kick()  # start the idle loop (work stealing) everywhere

    def _on_done_signal(self, value: Any) -> None:
        self.done = True

    # ------------------------------------------------------------------
    # Task creation and joining (call via ``yield from`` inside threads)
    # ------------------------------------------------------------------
    def make_task(
        self, factory: TaskFactory, home: int, label: str = "", pinned: bool = False
    ) -> Task:
        task = Task(factory=factory, home=home, label=label, pinned=pinned)
        self.tasks[task.tid] = task
        if hooks.SINKS:
            # publish the forker's clock; Task.body observes it wherever
            # the task eventually runs (stolen, migrated, or inlined)
            hooks.signal(("task", task.tid))
        return task

    def fork(self, node: int, factory: TaskFactory, label: str = "") -> Generator:
        """Lazily create a task on ``node``'s queue; returns its Future.

        ``fut = yield from rt.fork(node, factory)``
        """
        task = self.make_task(factory, home=node, label=label)
        yield from self.schedulers[node].push(task)
        return task.future

    def join(self, node: int, fut: Future) -> Generator:
        """Help-first join: while the future is unresolved, run tasks
        from the local queue inline (the lazy-task-creation fast path);
        suspend only when the queue is dry (the task was stolen).

        ``value = yield from rt.join(node, fut)``
        """
        while not fut.resolved:
            task = yield from self.schedulers[node].pop_local()
            if task is None:
                break
            yield from task.body(self, node)
        value = yield from fut.wait()
        return value

    def spawn_to(
        self,
        dest: int,
        factory: TaskFactory,
        label: str = "",
        pinned: bool = True,
        src: int | None = None,
    ) -> Generator:
        """Remote thread invocation (§4.3): place a new task on
        ``dest``'s queue using the scheduler's mechanism (shared-memory
        queue writes vs a single message). Returns the task's Future;
        the *invoker* is free as soon as this generator returns. The
        task is pinned to ``dest`` by default (it is an invocation of a
        thread *on that processor*, not load-balancing fodder).

        In reliable mode, ``src`` (the invoking node) is required: the
        retransmit timer of the invocation message must be bound to the
        invoker's processor.
        """
        if self.reliable is not None and src is None:
            raise SimulationError("reliable spawn_to needs src (the invoking node)")
        task = self.make_task(factory, home=dest, label=label, pinned=pinned)
        # The mechanism is uniform across nodes; for "sm" the shared-
        # memory queue operations still execute on the caller's CPU.
        yield from self.schedulers[dest].remote_push(dest, task, src=src)
        return task.future

    # ------------------------------------------------------------------
    # Direct thread execution (bypasses task queues)
    # ------------------------------------------------------------------
    def spawn_root(
        self,
        node: int,
        factory: TaskFactory,
        label: str = "root",
        on_finish: Callable[[Any], None] | None = None,
    ) -> Future:
        """Start a thread immediately on ``node`` (driver-level entry
        point, not a measured runtime operation)."""
        task = self.make_task(factory, home=node, label=label)
        task.claim()
        fut = task.future
        if on_finish is not None:
            fut.add_waiter(on_finish)
        self.machine.processor(node).run_thread(task.body(self, node), label=label)
        return fut

    def start_task(self, node: int, task: Task) -> None:
        """Turn a (claimed or queued) task into a running thread."""
        if task.state is TaskState.QUEUED:
            task.claim()
        sched = self.schedulers[node]
        sched.stats_tasks_run += 1
        self.machine.processor(node).run_thread(
            task.body(self, node), label=task.label or f"task{task.tid}"
        )

    # ------------------------------------------------------------------
    # Whole-program driving
    # ------------------------------------------------------------------
    def run_to_completion(
        self,
        node: int,
        factory: TaskFactory,
        label: str = "root",
        max_events: int | None = 100_000_000,
    ) -> tuple[Any, int]:
        """Run ``factory`` as the root thread; returns (result, cycles).

        Sets ``done`` when the root future resolves so idle processors
        stop probing and the event queue drains.
        """
        t0 = self.sim.now
        box: dict[str, Any] = {}
        shard = self.machine.shard

        def finished(value: Any) -> None:
            box["result"] = value
            box["cycles"] = self.sim.now - t0
            self.done = True
            if shard is not None:
                # other shards learn at the next window barrier; their
                # idle loops wind down within one backoff period, after
                # the cycle count above is already fixed
                shard.post_signal("rt.done", True)

        self.spawn_root(node, factory, label=label, on_finish=finished)
        self.machine.run(max_events=max_events)
        if shard is not None:
            # only the shard owning the root node filled the box; the
            # result must agree everywhere for replicated host code
            boxes = shard.allgather("rt.box", box)
            filled = [b for b in boxes if b]
            if filled:
                box = filled[0]
        if "result" not in box:
            raise SimulationError(
                "root thread never completed (deadlock or starvation?)"
            )
        return box["result"], box["cycles"]

    # ------------------------------------------------------------------
    def total_steals(self) -> tuple[int, int]:
        """(attempted, won) across all nodes."""
        att = sum(s.stats_steals_attempted for s in self.schedulers)
        won = sum(s.stats_steals_won for s in self.schedulers)
        return att, won
