"""The Alewife runtime system: threads, futures, locks, combining-tree
barriers, bulk transfer, and the SM-only vs hybrid task schedulers."""

from repro.runtime.barrier import MPTreeBarrier, SMTreeBarrier
from repro.runtime.bulk import BulkTransfer, copy_no_prefetch, copy_prefetch
from repro.runtime.mcs import MCSLock
from repro.runtime.reduce import MPTreeReduce, SMTreeReduce
from repro.runtime.reliable import ReliableLayer, ReliableParams, ReliableStats
from repro.runtime.rt import Runtime, RuntimeParams
from repro.runtime.sync import Future, SpinLock, fetch_increment
from repro.runtime.task import Task, TaskState

__all__ = [
    "BulkTransfer",
    "Future",
    "MCSLock",
    "MPTreeBarrier",
    "MPTreeReduce",
    "ReliableLayer",
    "ReliableParams",
    "ReliableStats",
    "Runtime",
    "RuntimeParams",
    "SMTreeBarrier",
    "SMTreeReduce",
    "SpinLock",
    "Task",
    "TaskState",
    "copy_no_prefetch",
    "copy_prefetch",
    "fetch_increment",
]
