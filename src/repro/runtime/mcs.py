"""MCS list-based queue lock [Mellor-Crummey & Scott, TOCS '91].

The paper cites MCS for scalable shared-memory synchronization; this
is the lock the barrier paper made famous, on our simulated machine.
Each waiter spins on a flag in its *own* node's memory, so a release
causes exactly one remote invalidation instead of a free-for-all on
the lock word — the contended-lock counterpart of the combining-tree
barrier's local-spin discipline.

Layout:
  tail               one word at the lock's home: 0, or 1+owner node id
  qnode[n].locked    one line homed at node n (n spins here)
  qnode[n].next      one line homed at node n

``acquire``/``release`` must be called with the node id of the
executing processor; a node cannot hold the lock twice (no recursion).
"""

from __future__ import annotations

from typing import Generator

from repro.machine.machine import Machine
from repro.proc.effects import Compute, FetchOp, LoadAcquire, StoreRelease
from repro.sim.engine import SimulationError


class MCSLock:
    """A queue lock usable from every node of a machine."""

    def __init__(self, machine: Machine, home: int = 0, spin_backoff: int = 8) -> None:
        self.machine = machine
        self.spin_backoff = spin_backoff
        self.tail_addr = machine.alloc(home, 8)
        n = machine.n_nodes
        self.locked_addr = [machine.alloc(node, 8) for node in range(n)]
        self.next_addr = [machine.alloc(node, 8) for node in range(n)]
        self._held_by: set[int] = set()  # debug guard, no simulated cost

    # ------------------------------------------------------------------
    def acquire(self, node: int) -> Generator:
        """``yield from lock.acquire(node)``"""
        if node in self._held_by:
            raise SimulationError(f"MCS lock is not recursive (node {node})")
        self._held_by.add(node)
        me = node + 1  # 0 is the null tail
        # prepare my qnode (local stores)
        yield StoreRelease(self.next_addr[node], 0)
        yield StoreRelease(self.locked_addr[node], 1)
        # swap myself in as the tail
        pred = yield FetchOp(self.tail_addr, lambda _v, me=me: me)
        if pred == 0:
            return  # uncontended
        # link behind the predecessor and spin on MY OWN flag
        yield StoreRelease(self.next_addr[pred - 1], me)
        while True:
            v = yield LoadAcquire(self.locked_addr[node])
            if v == 0:
                break
            yield Compute(self.spin_backoff)

    def release(self, node: int) -> Generator:
        """``yield from lock.release(node)``"""
        if node not in self._held_by:
            raise SimulationError(f"node {node} releasing an MCS lock it doesn't hold")
        me = node + 1
        nxt = yield LoadAcquire(self.next_addr[node])
        if nxt == 0:
            # no visible successor: try to swing the tail back to null
            old = yield FetchOp(
                self.tail_addr, lambda v, me=me: 0 if v == me else v
            )
            if old == me:
                self._held_by.discard(node)
                return  # nobody was waiting
            # a successor is mid-linkage; wait for it to appear
            while True:
                nxt = yield LoadAcquire(self.next_addr[node])
                if nxt != 0:
                    break
                yield Compute(self.spin_backoff)
        # hand the lock directly to the successor (one remote write)
        yield StoreRelease(self.locked_addr[nxt - 1], 0)
        self._held_by.discard(node)
