"""Combining-tree barriers (paper §4.2).

Two implementations of the same combining-tree idea:

* :class:`SMTreeBarrier` — an MCS-style tree barrier in shared memory
  (the paper's "best shared-memory barrier", a six-level binary tree
  on 64 processors). Arrivals and wake-ups are signalled through
  memory writes; every signal costs several protocol messages (the
  write invalidates the spinner's copy, the spinner re-fetches the
  dirty line).
* :class:`MPTreeBarrier` — explicit messages achieve the ideal of one
  message per arrival/wake-up event (a two-level eight-ary tree on 64
  processors).

Both are reusable across episodes (sense reversal for SM, episode
numbering for MP).
"""

from __future__ import annotations

from typing import Generator

from repro.check import hooks
from repro.machine.machine import Machine
from repro.proc.effects import (
    Compute,
    LoadAcquire,
    Send,
    SpinUntilGE,
    StoreRelease,
    Suspend,
)
from repro.runtime.reliable import ReliableLayer

MSG_BAR_ARRIVE = "bar.arrive"
MSG_BAR_RELEASE = "bar.release"


class SMTreeBarrier:
    """MCS tree barrier over shared-memory flags.

    Processors form a k-ary heap: processor ``p``'s children are
    ``k*p+1 .. k*p+k``. Arrival flags are homed at the parent (each on
    its own cache line); release flags are homed at each child so the
    child spins on a line it owns until the parent's write invalidates
    it.
    """

    def __init__(
        self,
        machine: Machine,
        arity: int = 2,
        spin_backoff: int = 6,
        macro: bool = True,
    ) -> None:
        if arity < 2:
            raise ValueError(f"arity must be >= 2, got {arity}")
        self.machine = machine
        self.arity = arity
        self.spin_backoff = spin_backoff
        #: batch each flag spin into one SpinUntilGE macro-effect
        #: (cycle-identical; False keeps the per-probe loop)
        self.macro = macro
        n = machine.n_nodes
        self.children: list[list[int]] = [
            [c for c in range(arity * p + 1, arity * p + arity + 1) if c < n]
            for p in range(n)
        ]
        self.parent: list[int | None] = [None] * n
        for p in range(n):
            for c in self.children[p]:
                self.parent[c] = p
        # arrival flag of child c: homed at its parent
        self.arrive_addr: list[int] = [0] * n
        for p in range(n):
            for c in self.children[p]:
                self.arrive_addr[c] = machine.alloc(p, 8)
        # release flag of processor p: homed at p itself
        self.release_addr: list[int] = [machine.alloc(p, 8) for p in range(n)]
        #: sense-reversal: episode counter (flags hold the episode number)
        self._episode: list[int] = [0] * n

    def depth(self) -> int:
        """Tree depth (levels of internal nodes above the leaves)."""
        d, p = 0, self.machine.n_nodes - 1
        while p > 0:
            p = (p - 1) // self.arity
            d += 1
        return d

    def _spin_until(self, addr: int, value: int) -> Generator:
        if self.macro:
            yield SpinUntilGE(addr, value, backoff=self.spin_backoff)
            return
        while True:
            v = yield LoadAcquire(addr)
            if v >= value:
                return
            yield Compute(self.spin_backoff)

    def enter(self, node: int) -> Generator:
        """``yield from barrier.enter(node)`` — returns after release."""
        self._episode[node] += 1
        episode = self._episode[node]
        # wait for all children to arrive (their flags are homed here,
        # but each child's write steals the line, so the re-read pays
        # a full remote transaction — the §4.2 point)
        for c in self.children[node]:
            yield from self._spin_until(self.arrive_addr[c], episode)
        if self.parent[node] is not None:
            yield StoreRelease(self.arrive_addr[node], episode)
            yield from self._spin_until(self.release_addr[node], episode)
        # wake the children (write into lines homed at each child)
        for c in self.children[node]:
            yield StoreRelease(self.release_addr[c], episode)


class MPTreeBarrier:
    """Explicit-message combining tree: one message per event.

    ``group`` internal nodes sit on processors ``0, g, 2g, ...`` where
    ``g = n / fanout``; the root is processor 0. With n=64 and
    fanout=8 this is the paper's two-level eight-ary tree.
    """

    def __init__(
        self,
        rt_machine: Machine,
        fanout: int = 8,
        arrive_cost: int = 16,
        release_cost: int = 10,
        reliable: ReliableLayer | None = None,
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.machine = rt_machine
        self.fanout = fanout
        #: with a ReliableLayer, arrive/release events survive packet
        #: loss (a lost arrival would otherwise hang the whole episode)
        self.reliable = reliable
        #: handler bookkeeping costs (count/check/lookup work a real
        #: barrier handler performs per event)
        self.arrive_cost = arrive_cost
        self.release_cost = release_cost
        n = rt_machine.n_nodes
        self.group_size = max(1, n // fanout) if n > fanout else 1
        # leaders: first node of each group; root is node 0
        self.leaders = sorted({(p // self.group_size) * self.group_size for p in range(n)})
        # per-node barrier state
        self._arrived: list[dict[int, int]] = [dict() for _ in range(n)]
        self._released: list[set[int]] = [set() for _ in range(n)]
        self._waiters: list[dict[int, list]] = [dict() for _ in range(n)]
        self._episode: list[int] = [0] * n
        for p in range(n):
            if reliable is not None:
                reliable.register_handler(p, MSG_BAR_ARRIVE, self._make_arrive_handler(p))
                reliable.register_handler(p, MSG_BAR_RELEASE, self._make_release_handler(p))
            else:
                proc = rt_machine.processor(p)
                proc.register_handler(MSG_BAR_ARRIVE, self._make_arrive_handler(p))
                proc.register_handler(MSG_BAR_RELEASE, self._make_release_handler(p))

    def _send(self, src: int, dst: int, mtype: str, operands) -> Generator:
        if self.reliable is None:
            yield Send(dst, mtype, operands=operands)
        else:
            yield from self.reliable.send(src, dst, mtype, operands)

    # ------------------------------------------------------------------
    def leader_of(self, node: int) -> int:
        return (node // self.group_size) * self.group_size

    def _expected(self, leader: int) -> int:
        """Arrivals leader waits for (its group members, or, at the
        root, the other leaders), excluding itself."""
        n = self.machine.n_nodes
        if leader == 0:
            group = len(range(0, min(self.group_size, n)))
            others = len(self.leaders) - 1
            return (group - 1) + others
        return min(self.group_size, n - leader) - 1

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _make_arrive_handler(self, node: int):
        def handler(msg) -> Generator:
            (episode,) = msg.operands
            yield Compute(self.arrive_cost)
            self._arrived[node][episode] = self._arrived[node].get(episode, 0) + 1
            if hooks.SINKS:
                # the arrival count lives in a Python dict shared by
                # many handler contexts; publish this arriver's clock
                # so the eventual release inherits it
                hooks.signal(("bar-arr", id(self), node, episode))
            yield from self._maybe_advance(node, episode)

        return handler

    def _maybe_advance(self, node: int, episode: int) -> Generator:
        """Leader logic: on full count, signal up (or release down)."""
        if self._arrived[node].get(episode, 0) != self._expected(node):
            return
        if not self._leader_local_arrived(node, episode):
            return
        if hooks.SINKS:
            hooks.observe(("bar-arr", id(self), node, episode))
        self._arrived[node].pop(episode, None)
        if node == 0:
            yield from self._release(0, episode)
        else:
            yield from self._send(node, 0, MSG_BAR_ARRIVE, (episode,))

    def _leader_local_arrived(self, node: int, episode: int) -> bool:
        return self._episode[node] >= episode

    def _release(self, node: int, episode: int) -> Generator:
        """Wake the local waiter and fan the release out."""
        if hooks.SINKS:
            hooks.signal(("bar-rel", id(self), node, episode))
        self._released[node].add(episode)
        resume = self._waiters[node].pop(episode, None)
        if resume is not None:
            resume(None)
        if node == 0:
            for leader in self.leaders:
                if leader != 0:
                    yield from self._send(0, leader, MSG_BAR_RELEASE, (episode,))
            yield from self._fan_release_group(0, episode)
        else:
            yield from self._fan_release_group(node, episode)

    def _fan_release_group(self, leader: int, episode: int) -> Generator:
        n = self.machine.n_nodes
        for member in range(leader + 1, min(leader + self.group_size, n)):
            yield from self._send(leader, member, MSG_BAR_RELEASE, (episode,))

    def _make_release_handler(self, node: int):
        def handler(msg) -> Generator:
            (episode,) = msg.operands
            yield Compute(self.release_cost)
            if node in self.leaders and node != 0:
                yield from self._release(node, episode)
            else:
                if hooks.SINKS:
                    hooks.signal(("bar-rel", id(self), node, episode))
                self._released[node].add(episode)
                resume = self._waiters[node].pop(episode, None)
                if resume is not None:
                    resume(None)

        return handler

    # ------------------------------------------------------------------
    def enter(self, node: int) -> Generator:
        """``yield from barrier.enter(node)``"""
        self._episode[node] += 1
        episode = self._episode[node]
        leader = self.leader_of(node)
        if node == leader:
            # leaders count their own arrival by checking episode state
            yield Compute(self.arrive_cost // 2)
            if hooks.SINKS:
                hooks.signal(("bar-arr", id(self), node, episode))
            yield from self._maybe_advance(node, episode)
        else:
            yield from self._send(node, leader, MSG_BAR_ARRIVE, (episode,))
        if episode in self._released[node]:
            self._released[node].discard(episode)
            if hooks.SINKS:
                hooks.observe(("bar-rel", id(self), node, episode))
            return
        yield Suspend(lambda resume: self._waiters[node].__setitem__(episode, resume))
        self._released[node].discard(episode)
        if hooks.SINKS:
            hooks.observe(("bar-rel", id(self), node, episode))
