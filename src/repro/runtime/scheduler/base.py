"""Scheduler interface and the shared idle/steal driver.

Both scheduler implementations (shared-memory-only and hybrid) share
the same policy: run local work newest-first (good locality for
divide-and-conquer trees), steal oldest-first (steal big subtrees),
pick victims uniformly at random. They differ *only* in the mechanism
used to reach a queue — which is exactly the comparison the paper
makes in §4.5.
"""

from __future__ import annotations

import abc
import random
from typing import TYPE_CHECKING, Generator

from repro.proc.effects import Compute
from repro.runtime.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.rt import Runtime


class NodeScheduler(abc.ABC):
    """Per-node scheduler: a task queue plus work-finding policy."""

    def __init__(self, rt: Runtime, node: int) -> None:
        self.rt = rt
        self.node = node
        self.rng = random.Random((rt.seed << 16) ^ node)
        self.stats_steals_attempted = 0
        self.stats_steals_won = 0
        self.stats_tasks_run = 0
        #: exponential backoff state for failed steals
        self._backoff = rt.p.steal_backoff

    # -- mechanism (implemented per scheduler kind) --------------------
    @abc.abstractmethod
    def push(self, task: Task) -> Generator:
        """Enqueue a locally-forked task (called from a running thread)."""

    @abc.abstractmethod
    def pop_local(self) -> Generator:
        """Pop the newest local task; yields effects, returns Task|None."""

    @abc.abstractmethod
    def steal_from(self, victim: int) -> Generator:
        """Try to steal the oldest task of ``victim``; returns Task|None."""

    @abc.abstractmethod
    def remote_push(self, dest: int, task: Task, src: int | None = None) -> Generator:
        """Remote thread invocation: place ``task`` on ``dest``'s queue
        (the §4.3 primitive). Runs on the *invoking* processor;
        ``src`` names the invoking node (needed in reliable mode)."""

    @abc.abstractmethod
    def queue_length(self) -> int:
        """Instantaneous local queue occupancy (diagnostics only)."""

    @abc.abstractmethod
    def poll_work(self) -> Generator:
        """Cheap check used inside the idle backoff loop; yields
        effects, returns True when local work appeared."""

    def register_metrics(self, reg, **labels) -> None:
        """Register this scheduler's instruments (lazy reads) into a
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        labels = {"component": "scheduler", "kind": self.rt.kind, **labels}
        reg.counter("sched.steals_attempted",
                    lambda: self.stats_steals_attempted, **labels)
        reg.counter("sched.steals_won", lambda: self.stats_steals_won, **labels)
        reg.counter("sched.tasks_run", lambda: self.stats_tasks_run, **labels)
        reg.gauge("sched.queue_depth", self.queue_length, **labels)

    # -- policy (shared) ------------------------------------------------
    def pick_victim(self) -> int | None:
        shard = self.rt.machine.shard
        if shard is None:
            lo, n = 0, self.rt.machine.n_nodes
        else:
            # Partitioned runs steal shard-locally: victims' queues live
            # in the owning worker's process, so cross-shard stealing
            # has no serializable mechanism — and clustered steal
            # domains are themselves a faithful model of a partitioned
            # machine. Same randrange call shape over the local index
            # space, so a 1-shard run draws exactly the serial stream.
            lo, hi = shard.lo, shard.hi
            n = hi - lo
        if n <= 1:
            return None
        me = self.node - lo
        v = self.rng.randrange(n - 1)
        return lo + (v if v < me else v + 1)

    def idle_step(self) -> Generator | None:
        """Installed as the processor's idle hook: one attempt to find
        work. Returns None (sleep) once the runtime is done."""
        if self.rt.done:
            return None
        return self._idle_gen()

    def _idle_gen(self) -> Generator:
        task = yield from self.pop_local()
        if task is not None:
            self._backoff = self.rt.p.steal_backoff
            self.rt.start_task(self.node, task)
            return
        victim = self.pick_victim()
        if victim is not None:
            self.stats_steals_attempted += 1
            task = yield from self.steal_from(victim)
            if task is not None:
                self.stats_steals_won += 1
                self._backoff = self.rt.p.steal_backoff
                self.rt.start_task(self.node, task)
                return
        # failed probe: back off exponentially (capped) so idle
        # processors do not saturate victims' queues or the network —
        # but keep polling the local queue so an invoked/migrated task
        # is dispatched promptly (§4.3's Tinvokee depends on this)
        waited = 0
        while waited < self._backoff:
            yield Compute(self.rt.p.poll_quantum)
            waited += self.rt.p.poll_quantum
            if (yield from self.poll_work()):
                break
        self._backoff = min(self._backoff * 2, self.rt.p.steal_backoff_max)
