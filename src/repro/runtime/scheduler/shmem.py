"""Shared-memory-only scheduler (the paper's original runtime).

Every task queue lives in shared memory and is protected by a
spin lock, because any processor may push to, pop from, or steal from
any queue using ordinary loads and stores. This is the §4.5 baseline:
even purely local pushes and pops pay lock and coherence traffic, and
once a thief has probed a queue its cache lines have migrated away,
so the owner's next operation takes remote misses to get them back.

Queue memory layout (all homed at the owning node; the lock on its
own cache line, head and tail packed together on another — both are
written only under the lock):

    lock        -- test-and-set word
    head, tail  -- steal end / push-pop end indices (one line)
    entries[i]  -- multi-word task descriptors (``entry_words`` each)
"""

from __future__ import annotations

from typing import Generator

from repro.proc.effects import Load, LoadAcquire, Store, StoreRelease
from repro.runtime.scheduler.base import NodeScheduler
from repro.runtime.sync import SpinLock
from repro.runtime.task import Task


class SMQueue:
    """The shared-memory deque of one node.

    Queue entries are multi-word task descriptors (code pointer,
    argument words, future pointer — ``entry_words`` of them), so a
    push writes and a pop reads several shared-memory words beyond the
    control words. This is what makes the shared-memory remote thread
    invocation cost its several-hundred cycles in §4.3.
    """

    def __init__(
        self, machine, node: int, capacity: int = 4096, entry_words: int = 4
    ) -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two, got {capacity}")
        if entry_words < 1:
            raise ValueError(f"entry_words must be >= 1, got {entry_words}")
        self.node = node
        self.capacity = capacity
        self.entry_words = entry_words
        self.lock = SpinLock(machine.alloc(node, 8))
        # head and tail share one cache line (they are only written
        # under the lock, so packing them halves the control-word
        # misses after the line migrates to a thief)
        control = machine.alloc(node, 16)
        self.head_addr = control
        self.tail_addr = control + 8
        self.entries = machine.alloc(node, 8 * entry_words * capacity)

    def entry_addr(self, idx: int, word: int = 0) -> int:
        return self.entries + ((idx & (self.capacity - 1)) * self.entry_words + word) * 8

    # All operations hold the lock; every access below is a simulated
    # shared-memory reference paying full coherence costs.
    def push(self, tid: int) -> Generator:
        yield from self.lock.acquire()
        tail = yield LoadAcquire(self.tail_addr)
        yield Store(self.entry_addr(tail, 0), tid)
        for w in range(1, self.entry_words):
            yield Store(self.entry_addr(tail, w), 0)  # args/future words
        yield StoreRelease(self.tail_addr, tail + 1)
        yield from self.lock.release()

    def _read_entry(self, idx: int) -> Generator:
        tid = yield Load(self.entry_addr(idx, 0))
        for w in range(1, self.entry_words):
            yield Load(self.entry_addr(idx, w))
        return tid

    def pop_newest(self) -> Generator:
        # unlocked emptiness probe (idle loops poll their own queue
        # constantly; don't take the lock just to find it empty)
        head = yield LoadAcquire(self.head_addr)
        tail = yield LoadAcquire(self.tail_addr)
        if head == tail:
            return 0
        yield from self.lock.acquire()
        head = yield LoadAcquire(self.head_addr)
        tail = yield LoadAcquire(self.tail_addr)
        if head == tail:
            yield from self.lock.release()
            return 0
        tid = yield from self._read_entry(tail - 1)
        yield StoreRelease(self.tail_addr, tail - 1)
        yield from self.lock.release()
        return tid

    def steal_oldest(self, stealable=None, max_batch: int = 2) -> Generator:
        """Steal up to ``max_batch`` tasks from the FIFO end; returns a
        list of tids. ``stealable(tid)`` lets the caller reject pinned
        tasks: a pinned entry stops the batch (a real implementation
        may only take the exposed queue end).

        Probes emptiness *without* the lock first (plain reads of the
        control words) so that the common failed-steal case does not
        bounce the victim's lock line — the standard tuning for
        shared-memory work stealing.
        """
        head = yield LoadAcquire(self.head_addr)
        tail = yield LoadAcquire(self.tail_addr)
        if head == tail:
            return []
        got = yield from self.lock.acquire_bounded(max_attempts=3)
        if not got:
            return []
        head = yield LoadAcquire(self.head_addr)
        tail = yield LoadAcquire(self.tail_addr)
        taken: list[int] = []
        # steal up to half the queue, capped at max_batch — one locked
        # visit amortizes across several migrated tasks, which keeps
        # the inevitable hot queue (all early tasks start on one node)
        # from serializing every thief behind one-entry steals
        want = min(max_batch, max(1, (tail - head) // 2))
        while head != tail and len(taken) < want:
            tid = yield from self._read_entry(head)
            if stealable is not None and not stealable(tid):
                break
            taken.append(tid)
            head += 1
        if taken:
            yield StoreRelease(self.head_addr, head)
        yield from self.lock.release()
        return taken


class ShmemScheduler(NodeScheduler):
    """Scheduler whose queues are reached exclusively via shared memory."""

    def __init__(self, rt, node: int) -> None:
        super().__init__(rt, node)
        self.queue = SMQueue(
            rt.machine,
            node,
            capacity=rt.p.sm_queue_capacity,
            entry_words=rt.p.sm_entry_words,
        )

    # ------------------------------------------------------------------
    def push(self, task: Task) -> Generator:
        yield from self.queue.push(task.tid)

    def pop_local(self) -> Generator:
        tid = yield from self.queue.pop_newest()
        return self._claim(tid)

    def steal_from(self, victim: int) -> Generator:
        vq = self.rt.schedulers[victim].queue
        tids = yield from vq.steal_oldest(
            stealable=lambda t: not self.rt.tasks[t].pinned,
            max_batch=self.rt.p.sm_steal_batch,
        )
        if not tids:
            return None
        first = self._claim(tids[0])
        # surplus of the batch goes onto our own queue (cheap: the
        # lines are local and unshared until somebody probes us)
        for tid in tids[1:]:
            yield from self.queue.push(tid)
        return first

    def remote_push(self, dest: int, task: Task, src: int | None = None) -> Generator:
        """§4.3's shared-memory remote thread invocation: lock the
        remote queue, write the entry, unlock — every step a remote
        memory transaction. (``src`` is unused: coherence traffic is
        hardware-reliable.)"""
        dq = self.rt.schedulers[dest].queue
        yield from dq.push(task.tid)

    def queue_length(self) -> int:
        store = self.rt.machine.store
        head = store.read(self.queue.head_addr)
        tail = store.read(self.queue.tail_addr)
        return tail - head

    def poll_work(self) -> Generator:
        """Unlocked emptiness probe (two shared-memory reads; a remote
        pusher's store invalidates our cached copy, so the next poll
        takes a miss and sees the new tail — self-synchronizing)."""
        head = yield LoadAcquire(self.queue.head_addr)
        tail = yield LoadAcquire(self.queue.tail_addr)
        return head != tail

    # ------------------------------------------------------------------
    def _claim(self, tid: int) -> Task | None:
        if tid == 0:
            return None
        task = self.rt.tasks[tid]
        if not task.claim():  # pragma: no cover - queue discipline prevents it
            return None
        return task
