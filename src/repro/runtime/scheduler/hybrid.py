"""Hybrid (shared-memory + message-passing) scheduler.

The paper's key runtime improvement (§4.5): local task-queue
operations need no synchronization at all because *only the owning
processor ever touches its queue* — all remote access (work stealing,
thread migration, remote invocation) arrives as messages whose
handlers the owner executes itself. A steal is one request message
and one reply message carrying the migrated task; remote thread
invocation is a single message that the receiving handler enqueues
atomically (synchronization and data bundled, §2.2).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Generator

from repro.proc.effects import Compute, Send, Yield as YieldEffect
from repro.runtime.scheduler.base import NodeScheduler
from repro.runtime.task import Task, TaskState

#: message type tags
MSG_STEAL_REQ = "rt.steal_req"
MSG_STEAL_REPLY = "rt.steal_reply"
MSG_TASK = "rt.task"

_req_ids = itertools.count()


class HybridScheduler(NodeScheduler):
    """Owner-only local deque + message-based stealing."""

    def __init__(self, rt, node: int) -> None:
        super().__init__(rt, node)
        self._deque: deque[Task] = deque()
        #: outstanding steal requests: req_id -> reply box (the thief
        #: spins on the box so it never has two steals in flight)
        self._pending_steals: dict[int, dict] = {}

    def _send(self, src: int, dst: int, mtype: str, operands) -> Generator:
        """One scheduler message: raw, or via the runtime's
        ReliableLayer when one is installed (a lost steal reply would
        otherwise spin the thief forever)."""
        if self.rt.reliable is None:
            yield Send(dst, mtype, operands=operands)
        else:
            yield from self.rt.reliable.send(src, dst, mtype, operands)

    # ------------------------------------------------------------------
    # Queue mechanism: plain local operations, no locks
    # ------------------------------------------------------------------
    def push(self, task: Task) -> Generator:
        yield Compute(self.rt.p.local_push_cost)
        self._deque.append(task)

    def pop_local(self) -> Generator:
        yield Compute(self.rt.p.local_pop_cost)
        while self._deque:
            task = self._deque.pop()  # newest
            if task.claim():
                return task
        return None

    def pop_oldest_nowait(self) -> Task | None:
        """Handler-side pop for serving a steal request (skips pinned
        tasks: invoked-to-this-node threads may not migrate away)."""
        for task in self._deque:
            if not task.pinned and task.state is TaskState.QUEUED and task.claim():
                self._deque.remove(task)
                return task
        return None

    def queue_length(self) -> int:
        return sum(1 for t in self._deque if t.state is TaskState.QUEUED)

    # ------------------------------------------------------------------
    # Stealing: request/reply message exchange
    # ------------------------------------------------------------------
    def steal_from(self, victim: int) -> Generator:
        """One request/reply exchange. The thief busy-waits for the
        reply (it has nothing else to run — and this bounds each node
        to a single outstanding steal, so idle processors cannot flood
        busy ones with request interrupts)."""
        req_id = next(_req_ids)
        box: dict[str, int] = {}
        self._pending_steals[req_id] = box
        yield from self._send(self.node, victim, MSG_STEAL_REQ, (self.node, req_id))
        while "tid" not in box:
            yield Compute(4)  # poll; the reply handler interrupts us
            if self.rt.reliable is not None:
                # in reliable mode the pipeline must rotate: a dropped
                # request is re-sent by a retransmit *thread* on this
                # very node, and an unbroken spin would starve it
                yield YieldEffect()
        del self._pending_steals[req_id]
        tid = box["tid"]
        if tid == 0:
            return None
        task = self.rt.tasks[tid]
        # the task itself migrated inside the reply message; it is
        # already RUNNING-claimed by the victim's handler
        return task

    def remote_push(self, dest: int, task: Task, src: int | None = None) -> Generator:
        """One message bundles synchronization and data (§2.2/§4.3):
        thread pointer and arguments marshalled into the descriptor's
        operand words, unpacked and enqueued atomically by the
        receiver's handler."""
        yield Compute(self.rt.p.remote_invoke_marshal)
        yield from self._send(src, dest, MSG_TASK, (task.tid, 0, 0, 0))

    def poll_work(self) -> Generator:
        if False:  # pragma: no cover - makes this a generator
            yield
        return bool(self._deque)

    # ------------------------------------------------------------------
    # Handlers (registered by the Runtime on this scheduler's node)
    # ------------------------------------------------------------------
    def handle_steal_req(self, msg) -> Generator:
        thief, req_id = msg.operands
        if not self._deque:
            # fast path: empty queue, cheap negative reply
            yield Compute(2)
            yield from self._send(self.node, thief, MSG_STEAL_REPLY, (req_id, 0))
            return
        yield Compute(self.rt.p.steal_handler_cost)
        task = self.pop_oldest_nowait()
        tid = task.tid if task is not None else 0
        yield from self._send(self.node, thief, MSG_STEAL_REPLY, (req_id, tid))

    def handle_steal_reply(self, msg) -> Generator:
        req_id, tid = msg.operands
        yield Compute(self.rt.p.reply_handler_cost)
        self._pending_steals[req_id]["tid"] = tid

    def handle_task(self, msg) -> Generator:
        """Remote thread invocation arrival: unpack and enqueue
        atomically (we are the only toucher of our queue)."""
        tid = msg.operands[0]
        yield Compute(self.rt.p.enqueue_handler_cost)
        task = self.rt.tasks[tid]
        self._deque.append(task)
        self.rt.machine.processor(self.node).kick()
