"""Task schedulers: the §4.5 comparison pair.

* :class:`~repro.runtime.scheduler.shmem.ShmemScheduler` — all queues
  in shared memory behind spin locks (the original runtime).
* :class:`~repro.runtime.scheduler.hybrid.HybridScheduler` — owner-only
  queues with message-based stealing and migration (the integrated
  runtime).
"""

from repro.runtime.scheduler.base import NodeScheduler
from repro.runtime.scheduler.hybrid import HybridScheduler
from repro.runtime.scheduler.shmem import ShmemScheduler, SMQueue

__all__ = ["HybridScheduler", "NodeScheduler", "SMQueue", "ShmemScheduler"]
