"""Reliable message delivery on top of the raw CMMU send path.

The paper's message interface is deliberately raw: software launches a
packet and the hardware makes *no* delivery promise beyond what the
fabric happens to do. On a healthy fabric that is free performance; on
a faulty one (``repro.faults``) it is the software runtime's job to
build reliability. This module is that layer:

* every reliable message carries a per-flow **sequence number** in its
  first operand word,
* the receiver **acks** each sequence number (acks are themselves
  plain messages and may be lost),
* the sender keeps unacked messages pending and **retransmits** on an
  exponential-backoff timeout — each retransmission is a real
  describe/launch executed by the source processor through the effect
  model, so retries cost simulated cycles and compete for the pipeline
  like any other software,
* the receiver **de-duplicates** by sequence number, so drops,
  duplicate faults, lost acks, and crossed retransmissions all
  collapse to exactly-once *dispatch* of the application handler.

Delivery is reliable but not ordered: a delayed packet may dispatch
after a younger one. The primitives layered on top (bulk transfer,
combining-tree barrier, remote thread invocation) are all
commutative per message, so they only need exactly-once.

Usage::

    layer = ReliableLayer(machine)
    layer.register_everywhere("app.msg", handler_fn)
    # inside a thread running on node `src`:
    yield from layer.send(src, dst, "app.msg", operands=(1, 2))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.cmmu.message import BlockRef, Message
from repro.machine.machine import Machine
from repro.proc.effects import Compute, Send
from repro.proc.processor import HandlerFn
from repro.runtime.sync import Future
from repro.sim.engine import EventHandle, SimulationError

#: wire message types of the reliability protocol
REL_DATA = "rel.data"
REL_ACK = "rel.ack"


@dataclass
class ReliableParams:
    """Software cost and timer constants (cycles)."""

    #: sender bookkeeping per send (sequence assignment, pending entry)
    send_sw_cost: int = 6
    #: receiver header processing per arrival (seq check, ack setup)
    recv_sw_cost: int = 8
    #: processing an ack at the sender
    ack_sw_cost: int = 4
    #: retransmission path setup (timer pop, descriptor rebuild)
    retx_sw_cost: int = 24
    #: first retransmit timeout: base + per_data_word * payload words.
    #: The per-word term keeps the timer above the DMA streaming time
    #: of large bulk transfers (2 cycles/word at the default rate).
    ack_timeout_base: int = 400
    ack_timeout_per_word: int = 4
    #: exponential backoff factor and cap for successive retries
    backoff_factor: float = 2.0
    timeout_cap: int = 20_000
    #: give up (SimulationError) after this many retransmissions of
    #: one message — a permanently dead link is a fatal fault
    max_retries: int = 12

    def initial_timeout(self, data_words: int) -> int:
        return self.ack_timeout_base + self.ack_timeout_per_word * data_words


@dataclass
class ReliableStats:
    data_sent: int = 0          # first transmissions
    retransmits: int = 0
    acks_received: int = 0
    stale_acks: int = 0         # acks for already-acked seqs (dup acks)
    delivered: int = 0          # exactly-once handler dispatches
    duplicates_dropped: int = 0  # arrivals suppressed by seq dedup


@dataclass
class _Pending:
    """Sender-side state of one unacked message."""

    seq: int
    src: int
    dst: int
    mtype: str
    operands: tuple[Any, ...]
    blocks: list[BlockRef]
    timeout: int
    retries: int = 0
    timer: EventHandle | None = None
    future: Future = field(default_factory=Future)


class ReliableLayer:
    """Machine-wide reliable delivery service.

    Registers the protocol's ``rel.data`` / ``rel.ack`` handlers on
    every processor at construction; application message types are
    then registered *with the layer* (per node or everywhere) instead
    of with the processors directly.
    """

    def __init__(self, machine: Machine, params: ReliableParams | None = None) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.p = params or ReliableParams()
        self.stats = ReliableStats()
        #: application dispatch tables, one per node
        self._handlers: list[dict[str, HandlerFn]] = [
            {} for _ in range(machine.n_nodes)
        ]
        #: sender side: (src, dst, seq) -> pending entry
        self._pending: dict[tuple[int, int, int], _Pending] = {}
        #: sender side: next sequence number per (src, dst) flow
        self._next_seq: dict[tuple[int, int], int] = {}
        #: receiver side: (src, dst) -> [high_water, out_of_order_set]
        self._recv: dict[tuple[int, int], list] = {}
        for node in range(machine.n_nodes):
            proc = machine.processor(node)
            proc.register_handler(REL_DATA, self._make_data_handler(node))
            proc.register_handler(REL_ACK, self._make_ack_handler(node))

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_handler(self, node: int, mtype: str, fn: HandlerFn) -> None:
        if mtype in self._handlers[node]:
            raise SimulationError(
                f"reliable handler {mtype!r} already registered on node {node}"
            )
        self._handlers[node][mtype] = fn

    def register_everywhere(self, mtype: str, fn: HandlerFn) -> None:
        for node in range(self.machine.n_nodes):
            self.register_handler(node, mtype, fn)

    # ------------------------------------------------------------------
    # Send path (yield from inside a thread or handler on ``src``)
    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        mtype: str,
        operands: tuple[Any, ...] = (),
        blocks: list[BlockRef] | None = None,
        wait_ack: bool = False,
    ) -> Generator:
        """Reliably send one message from ``src`` to ``dst``.

        Returns after the local describe/launch (plus bookkeeping);
        delivery is asynchronous with background retransmission. With
        ``wait_ack`` the caller suspends until the receiver's ack —
        legal only in threads (handlers must not suspend).
        """
        blocks = list(blocks) if blocks else []
        flow = (src, dst)
        seq = self._next_seq.get(flow, 1)
        self._next_seq[flow] = seq + 1
        data_words = sum((b.nbytes + 3) // 4 for b in blocks)
        entry = _Pending(
            seq=seq, src=src, dst=dst, mtype=mtype,
            operands=tuple(operands), blocks=blocks,
            timeout=self.p.initial_timeout(data_words),
        )
        key = (src, dst, seq)
        self._pending[key] = entry
        yield Compute(self.p.send_sw_cost)
        yield Send(dst, REL_DATA, operands=(seq, mtype) + entry.operands, blocks=blocks)
        self.stats.data_sent += 1
        self._arm(key, entry)
        if wait_ack:
            yield from entry.future.wait()

    def pending_count(self) -> int:
        """Messages currently awaiting an ack (diagnostics)."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Timers and retransmission
    # ------------------------------------------------------------------
    def _arm(self, key: tuple[int, int, int], entry: _Pending) -> None:
        if key not in self._pending:
            return  # ack raced ahead of the (re)send completing
        entry.timer = self.sim.schedule(entry.timeout, lambda: self._on_timeout(key))

    def _on_timeout(self, key: tuple[int, int, int]) -> None:
        entry = self._pending.get(key)
        if entry is None:
            return  # acked meanwhile
        entry.retries += 1
        if entry.retries > self.p.max_retries:
            raise SimulationError(
                f"reliable delivery n{entry.src}->n{entry.dst} "
                f"{entry.mtype!r} seq={entry.seq} gave up after "
                f"{self.p.max_retries} retransmissions (dead link?)"
            )
        entry.timeout = min(
            int(entry.timeout * self.p.backoff_factor), self.p.timeout_cap
        )

        def retransmit() -> Generator:
            if key not in self._pending:
                return  # acked while we waited for the pipeline
            yield Compute(self.p.retx_sw_cost)
            yield Send(
                entry.dst, REL_DATA,
                operands=(entry.seq, entry.mtype) + entry.operands,
                blocks=entry.blocks,
            )
            self.stats.retransmits += 1
            self._arm(key, entry)

        self.machine.processor(entry.src).run_thread(
            retransmit(), label=f"retx:{entry.mtype}->{entry.dst}"
        )

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _mark_delivered(self, flow: tuple[int, int], seq: int) -> bool:
        """True the first time ``seq`` is seen on ``flow``; the
        contiguous prefix collapses to a high-water mark so state stays
        bounded under in-order delivery."""
        state = self._recv.setdefault(flow, [0, set()])
        hw, extra = state
        if seq <= hw or seq in extra:
            return False
        extra.add(seq)
        while hw + 1 in extra:
            hw += 1
            extra.discard(hw)
        state[0] = hw
        return True

    def _make_data_handler(self, node: int) -> HandlerFn:
        def handle_data(msg: Message) -> Generator:
            seq, mtype = msg.operands[0], msg.operands[1]
            inner_operands = tuple(msg.operands[2:])
            yield Compute(self.p.recv_sw_cost)
            fresh = self._mark_delivered((msg.src, node), seq)
            # always ack — the previous ack may itself have been lost
            yield Send(msg.src, REL_ACK, operands=(seq,))
            if not fresh:
                self.stats.duplicates_dropped += 1
                return
            fn = self._handlers[node].get(mtype)
            if fn is None:
                raise SimulationError(
                    f"node {node}: no reliable handler for {mtype!r}"
                )
            self.stats.delivered += 1
            inner = Message(
                src=msg.src,
                dst=msg.dst,
                mtype=mtype,
                operands=inner_operands,
                data_bytes=msg.data_bytes,
                data_snapshot=msg.data_snapshot,
            )
            yield from fn(inner)

        return handle_data

    def _make_ack_handler(self, node: int) -> HandlerFn:
        def handle_ack(msg: Message) -> Generator:
            (seq,) = msg.operands
            yield Compute(self.p.ack_sw_cost)
            entry = self._pending.pop((node, msg.src, seq), None)
            if entry is None:
                self.stats.stale_acks += 1
                return
            if entry.timer is not None:
                entry.timer.cancel()
            self.stats.acks_received += 1
            entry.future.resolve(None)

        return handle_ack
