"""Combining-tree reductions (all-reduce): the barrier with data.

A global reduction (e.g. the residual norm in an iterative solver)
combines one value per processor and broadcasts the result — a
barrier whose arrival signals carry payloads. Like the §4.2 barrier,
both mechanisms are provided:

* :class:`SMTreeReduce` — contribution words in shared memory next to
  the arrival flags of an MCS-style tree; parents read the children's
  values after seeing their flags.
* :class:`MPTreeReduce` — the arrival message carries the partial
  value; handlers fold it into the leader's accumulator (paper §2.2:
  bundling synchronization with data pays off even more when data is
  attached to every signal).

Reduction operators must be associative and commutative; values are
Python numbers (transported intact through the simulated memory /
message machinery).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.check import hooks
from repro.machine.machine import Machine
from repro.proc.effects import (
    Compute,
    Load,
    LoadAcquire,
    Send,
    Store,
    StoreRelease,
    Suspend,
)

MSG_RED_UP = "red.up"
MSG_RED_DOWN = "red.down"

ReduceOp = Callable[[Any, Any], Any]


class SMTreeReduce:
    """Shared-memory combining-tree all-reduce (binary by default)."""

    def __init__(self, machine: Machine, arity: int = 2, spin_backoff: int = 6) -> None:
        if arity < 2:
            raise ValueError(f"arity must be >= 2, got {arity}")
        self.machine = machine
        self.arity = arity
        self.spin_backoff = spin_backoff
        n = machine.n_nodes
        self.children = [
            [c for c in range(arity * p + 1, arity * p + arity + 1) if c < n]
            for p in range(n)
        ]
        self.parent: list[int | None] = [None] * n
        for p in range(n):
            for c in self.children[p]:
                self.parent[c] = p
        # per-child: arrival flag + value word, homed at the parent
        self.flag_addr = [0] * n
        self.value_addr = [0] * n
        for p in range(n):
            for c in self.children[p]:
                self.flag_addr[c] = machine.alloc(p, 8)
                self.value_addr[c] = machine.alloc(p, 8)
        # result broadcast: flag + value homed at each node
        self.res_flag = [machine.alloc(p, 8) for p in range(n)]
        self.res_value = [machine.alloc(p, 8) for p in range(n)]
        self._episode = [0] * n

    def _spin(self, addr: int, episode: int) -> Generator:
        while True:
            v = yield LoadAcquire(addr)
            if v >= episode:
                return
            yield Compute(self.spin_backoff)

    def reduce(self, node: int, value: Any, op: ReduceOp) -> Generator:
        """``total = yield from red.reduce(node, my_value, operator.add)``"""
        self._episode[node] += 1
        episode = self._episode[node]
        acc = value
        # combine the children's contributions
        for c in self.children[node]:
            yield from self._spin(self.flag_addr[c], episode)
            child_val = yield Load(self.value_addr[c])
            acc = op(acc, child_val)
            yield Compute(2)  # the combine arithmetic
        if self.parent[node] is not None:
            yield Store(self.value_addr[node], acc)
            yield StoreRelease(self.flag_addr[node], episode)  # flag after data
            yield from self._spin(self.res_flag[node], episode)
            result = yield Load(self.res_value[node])
        else:
            result = acc
        for c in self.children[node]:
            yield Store(self.res_value[c], result)
            yield StoreRelease(self.res_flag[c], episode)
        return result


class MPTreeReduce:
    """Message combining-tree all-reduce: one message per edge, data
    bundled with the arrival signal."""

    def __init__(
        self, machine: Machine, op: ReduceOp, fanout: int = 8,
        arrive_cost: int = 18, release_cost: int = 10,
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.machine = machine
        self.op = op
        self.fanout = fanout
        self.arrive_cost = arrive_cost
        self.release_cost = release_cost
        n = machine.n_nodes
        self.group_size = max(1, n // fanout) if n > fanout else 1
        self.leaders = sorted({(p // self.group_size) * self.group_size for p in range(n)})
        self._acc: list[dict[int, Any]] = [dict() for _ in range(n)]
        self._count: list[dict[int, int]] = [dict() for _ in range(n)]
        self._own: list[dict[int, Any]] = [dict() for _ in range(n)]
        self._result: list[dict[int, Any]] = [dict() for _ in range(n)]
        self._waiters: list[dict[int, Any]] = [dict() for _ in range(n)]
        self._episode = [0] * n
        for p in range(n):
            proc = machine.processor(p)
            proc.register_handler(MSG_RED_UP, self._make_up_handler(p))
            proc.register_handler(MSG_RED_DOWN, self._make_down_handler(p))

    # ------------------------------------------------------------------
    def leader_of(self, node: int) -> int:
        return (node // self.group_size) * self.group_size

    def _expected(self, leader: int) -> int:
        n = self.machine.n_nodes
        if leader == 0:
            group = min(self.group_size, n)
            return (group - 1) + (len(self.leaders) - 1)
        return min(self.group_size, n - leader) - 1

    # ------------------------------------------------------------------
    def _make_up_handler(self, node: int):
        def handler(msg) -> Generator:
            episode, value = msg.operands
            yield Compute(self.arrive_cost)
            self._fold(node, episode, value)
            if hooks.SINKS:
                # accumulator crosses handler contexts via Python dicts
                hooks.signal(("red-arr", id(self), node, episode))
            yield from self._maybe_up(node, episode)

        return handler

    def _fold(self, node: int, episode: int, value: Any) -> None:
        op = self.op
        if episode in self._acc[node]:
            self._acc[node][episode] = op(self._acc[node][episode], value)
        else:
            self._acc[node][episode] = value
        self._count[node][episode] = self._count[node].get(episode, 0) + 1

    def _maybe_up(self, node: int, episode: int) -> Generator:
        if self._count[node].get(episode, 0) != self._expected(node):
            return
        if episode not in self._own[node]:
            return  # leader hasn't contributed yet
        if hooks.SINKS:
            hooks.observe(("red-arr", id(self), node, episode))
        own = self._own[node][episode]
        if episode in self._acc[node]:
            total = self.op(self._acc[node].pop(episode), own)
        else:
            total = own  # leader with no group members (tiny machines)
        self._count[node].pop(episode, None)
        if node == 0:
            yield from self._broadcast(episode, total)
        else:
            yield Send(0, MSG_RED_UP, operands=(episode, total))

    def _broadcast(self, episode: int, total: Any) -> Generator:
        for leader in self.leaders:
            if leader != 0:
                yield Send(leader, MSG_RED_DOWN, operands=(episode, total))
        yield from self._fan_group(0, episode, total)
        self._deliver(0, episode, total)

    def _fan_group(self, leader: int, episode: int, total: Any) -> Generator:
        n = self.machine.n_nodes
        for member in range(leader + 1, min(leader + self.group_size, n)):
            yield Send(member, MSG_RED_DOWN, operands=(episode, total))

    def _make_down_handler(self, node: int):
        def handler(msg) -> Generator:
            episode, total = msg.operands
            yield Compute(self.release_cost)
            if node in self.leaders and node != 0:
                yield from self._fan_group(node, episode, total)
            self._deliver(node, episode, total)

        return handler

    def _deliver(self, node: int, episode: int, total: Any) -> None:
        if hooks.SINKS:
            hooks.signal(("red-res", id(self), node, episode))
        self._result[node][episode] = total
        resume = self._waiters[node].pop(episode, None)
        if resume is not None:
            resume(total)

    # ------------------------------------------------------------------
    def reduce(self, node: int, value: Any, op: ReduceOp | None = None) -> Generator:
        """``total = yield from red.reduce(node, my_value)`` — the
        operator is fixed at construction (handlers fold with it even
        before this node's own contribution arrives); a per-call ``op``
        must match it and exists only for API symmetry with the SM
        variant."""
        if op is not None and op is not self.op:
            raise ValueError("MPTreeReduce operator is fixed at construction")
        self._episode[node] += 1
        episode = self._episode[node]
        leader = self.leader_of(node)
        if node == leader:
            self._own[node][episode] = value
            yield Compute(self.arrive_cost // 2)
            yield from self._maybe_up(node, episode)
        else:
            yield Send(leader, MSG_RED_UP, operands=(episode, value))
        if episode in self._result[node]:
            total = self._result[node].pop(episode)
            self._own[node].pop(episode, None)
            if hooks.SINKS:
                hooks.observe(("red-res", id(self), node, episode))
            return total
        total = yield Suspend(
            lambda resume: self._waiters[node].__setitem__(episode, resume)
        )
        self._result[node].pop(episode, None)
        self._own[node].pop(episode, None)
        if hooks.SINKS:
            hooks.observe(("red-res", id(self), node, episode))
        return total
