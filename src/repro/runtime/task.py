"""Tasks: the unit of lazily-created parallelism.

Following lazy task creation [Mohr, Kranz & Halstead '91], a ``fork``
pushes a cheap task descriptor onto the forking node's queue. If
nobody steals it, the parent later *inlines* it at (or before) the
join — never paying thread-creation cost. If an idle processor steals
it, the task becomes a real thread there and the parent blocks on its
future at the join.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.check import hooks
from repro.runtime.sync import Future

_task_ids = itertools.count(1)  # 0 is reserved as "no task" in queue words

TaskFactory = Callable[["object", int], Generator]
"""Called as ``factory(rt, node)`` where ``node`` is wherever the task
actually runs."""


class TaskState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"


@dataclass
class Task:
    factory: TaskFactory
    home: int
    label: str = ""
    tid: int = field(default_factory=lambda: next(_task_ids))
    future: Future = field(default_factory=Future)
    state: TaskState = TaskState.QUEUED
    ran_on: int | None = None
    #: pinned tasks may not be stolen — remote thread invocation (§4.3)
    #: targets a specific processor
    pinned: bool = False

    def claim(self) -> bool:
        """Transition QUEUED -> RUNNING; False if someone else won."""
        if self.state is not TaskState.QUEUED:
            return False
        self.state = TaskState.RUNNING
        return True

    def body(self, rt, node: int) -> Generator:
        """The task's execution wrapper: run and resolve the future."""
        if hooks.SINKS:
            # a stolen descriptor travels through Python-level queue
            # state; inherit the forker's clock published at make_task
            hooks.observe(("task", self.tid))
        self.ran_on = node
        result = yield from self.factory(rt, node)
        self.state = TaskState.DONE
        self.future.resolve(result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task#{self.tid} {self.label!r} {self.state.value} home={self.home}>"
