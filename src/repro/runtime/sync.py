"""Synchronization primitives for simulated threads.

* :class:`Future` — runtime-level completion object used by the lazy
  task creation scheduler and for general signalling. Metadata lives
  at the Python level; waiting/waking goes through the processor's
  Suspend machinery so blocked threads genuinely leave the CPU.
* :class:`SpinLock` — a test-and-test-and-set lock on a shared-memory
  word. All of its cost is *simulated*: the FetchOp pays the coherence
  protocol's write-ownership transaction, contended spinning bounces
  the lock's cache line exactly as on the real machine.

The acquire/release-annotated effects (:class:`LoadAcquire`,
:class:`StoreRelease`) and the :mod:`repro.check.hooks` calls are for
the dynamic checkers only — they execute and cost exactly like their
plain counterparts.
"""

from __future__ import annotations

import itertools
import sys
from typing import Any, Callable, Generator

from repro.check import hooks
from repro.proc.effects import (
    Compute,
    FetchOp,
    Load,
    LoadAcquire,
    StoreRelease,
    Suspend,
)
from repro.sim.engine import SimulationError

_future_ids = itertools.count()


def _caller_site(depth: int = 2) -> str:
    """``file.py:lineno`` of the caller ``depth`` frames up."""
    frame = sys._getframe(depth)
    fname = frame.f_code.co_filename.rsplit("/", 1)[-1]
    return f"{fname}:{frame.f_lineno}"


class Future:
    """A write-once value with suspend-until-resolved semantics."""

    __slots__ = ("fid", "resolved", "value", "_waiters", "_resolve_site")

    def __init__(self) -> None:
        self.fid = next(_future_ids)
        self.resolved = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []
        self._resolve_site: str | None = None

    def resolve(self, value: Any = None) -> None:
        """Resolve and wake every waiter (each re-enters its
        processor's ready queue)."""
        site = _caller_site()
        if self.resolved:
            raise SimulationError(
                f"future #{self.fid} resolved twice: first at "
                f"{self._resolve_site}, again at {site} "
                f"(first value {self.value!r}, second {value!r})"
            )
        self.resolved = True
        self.value = value
        self._resolve_site = site
        if hooks.SINKS:
            hooks.signal(("future", self.fid))
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(value)

    def wait(self) -> Generator:
        """Effect-generator: block the calling thread until resolved.

        ``value = yield from fut.wait()``
        """
        if self.resolved:
            if hooks.SINKS:
                hooks.observe(("future", self.fid))
            return self.value
        value = yield Suspend(self._waiters.append)
        if hooks.SINKS:
            hooks.observe(("future", self.fid))
        return value

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        """Register a raw resume callback (used by scheduler internals)."""
        if self.resolved:
            if hooks.SINKS:
                hooks.observe(("future", self.fid))
            resume(self.value)
        else:
            self._waiters.append(resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"={self.value!r}" if self.resolved else " pending"
        return f"<Future#{self.fid}{state}>"


class SpinLock:
    """Test-and-test-and-set lock with exponential backoff.

    The lock word must be allocated by the caller (one per cache line
    to avoid false sharing): ``lock = SpinLock(machine.alloc(node, 8))``.

    Backoff matters enormously here: an eager spinner's re-read pulls
    the line out of the holder's cache (a three-party forward), and
    the holder's release then pays invalidations to every spinner — a
    classic convoy. Exponential backoff [Mellor-Crummey & Scott '91,
    which the paper cites] keeps contended critical sections short.
    """

    def __init__(
        self, addr: int, spin_backoff: int = 16, spin_backoff_max: int = 512
    ) -> None:
        self.addr = addr
        self.spin_backoff = spin_backoff
        self.spin_backoff_max = spin_backoff_max

    def acquire(self) -> Generator:
        """``yield from lock.acquire()``"""
        backoff = self.spin_backoff
        while True:
            old = yield FetchOp(self.addr, lambda _v: 1)
            if old == 0:
                return
            # spin on a (cached) read until the holder releases, then
            # race for the test-and-set again
            while True:
                yield Compute(backoff)
                backoff = min(backoff * 2, self.spin_backoff_max)
                v = yield LoadAcquire(self.addr)
                if v == 0:
                    break

    def try_acquire(self) -> Generator:
        """Single test-and-set attempt; returns True on success.

        Tests with a read first so a failed attempt does not yank
        write ownership away from the lock holder.
        """
        v = yield LoadAcquire(self.addr)
        if v:
            return False
        old = yield FetchOp(self.addr, lambda _v: 1)
        return old == 0

    def acquire_bounded(self, max_attempts: int = 2) -> Generator:
        """Acquire with a bounded number of *plain* test-and-set
        rounds; returns True on success, False after giving up.

        Used by work stealing. Unlike the test-and-test-and-set fast
        path, a raw FetchOp queues the read-modify-write at the line's
        home, where transactions are served FIFO — so a remote thief
        competes fairly with a local owner that releases and instantly
        re-acquires. (With read-first spinning the remote thief never
        wins that race: its re-read alone costs a three-party miss.)
        A failed steal must also be cheap, because at fine grain most
        steals fail — hence the bound.
        """
        backoff = self.spin_backoff
        for attempt in range(max_attempts):
            old = yield FetchOp(self.addr, lambda _v: 1)
            if old == 0:
                return True
            if attempt + 1 < max_attempts:
                yield Compute(backoff)
                backoff = min(backoff * 2, self.spin_backoff_max)
        return False

    def release(self) -> Generator:
        """``yield from lock.release()``"""
        yield StoreRelease(self.addr, 0)


def fetch_increment(addr: int) -> FetchOp:
    """Atomic counter bump; resumes with the pre-increment value."""
    return FetchOp(addr, lambda v: v + 1)
