"""Global (shared) address space.

Alewife distributes physical memory across the nodes; a global address
names ``(home node, offset)``. We encode the home node in the high
bits of a plain ``int`` so addresses stay cheap to pass around:

    address = (node << NODE_SHIFT) | offset

The *home* of an address is the node whose memory backs it and whose
directory tracks cached copies. This module is pure address
arithmetic; no timing.
"""

from __future__ import annotations

#: Bits of per-node offset (4 GiB per node — effectively unbounded
#: for our workloads).
NODE_SHIFT = 32
OFFSET_MASK = (1 << NODE_SHIFT) - 1

#: Cache line size in bytes (paper: prefetching operates on 16-byte
#: cache blocks).
LINE_SIZE = 16

#: Doubleword size; the paper's copy loops use 8-byte loads/stores.
DOUBLEWORD = 8
WORD = 4


def make_addr(node: int, offset: int) -> int:
    """Build the global address for ``offset`` within ``node``'s memory."""
    if node < 0:
        raise ValueError(f"negative node {node}")
    if not (0 <= offset <= OFFSET_MASK):
        raise ValueError(f"offset {offset:#x} outside 32-bit range")
    return (node << NODE_SHIFT) | offset


def home_of(addr: int) -> int:
    """Node whose local memory backs ``addr``."""
    return addr >> NODE_SHIFT


def offset_of(addr: int) -> int:
    """Offset of ``addr`` within its home node's memory."""
    return addr & OFFSET_MASK


def line_of(addr: int, line_size: int = LINE_SIZE) -> int:
    """Align ``addr`` down to its cache-line base address."""
    return addr & ~(line_size - 1)


def line_range(addr: int, nbytes: int, line_size: int = LINE_SIZE) -> range:
    """Iterate the line base addresses covering ``[addr, addr+nbytes)``."""
    if nbytes <= 0:
        return range(0)
    first = line_of(addr, line_size)
    last = line_of(addr + nbytes - 1, line_size)
    return range(first, last + line_size, line_size)
