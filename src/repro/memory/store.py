"""Backing value store.

Timing and values are deliberately split in this simulator (see
DESIGN.md): the coherence machinery computes *when* an access
completes, while the authoritative word values live here and are
updated at store-completion time. The home directory serializes
transactions per line, so deterministic programs observe
sequentially-consistent values.

Values may be any Python object (ints for synchronization words,
floats for numeric kernels); an address with no prior store reads 0.
"""

from __future__ import annotations

from typing import Any, Iterator


class BackingStore:
    """Machine-wide word-value storage, keyed by global address."""

    def __init__(self) -> None:
        self._mem: dict[int, Any] = {}
        self.reads = 0
        self.writes = 0

    def read(self, addr: int) -> Any:
        """Value at ``addr`` (0 if never written)."""
        self.reads += 1
        return self._mem.get(addr, 0)

    def write(self, addr: int, value: Any) -> None:
        self.writes += 1
        self._mem[addr] = value

    def read_range(self, addr: int, count: int, stride: int) -> list[Any]:
        """Read ``count`` values starting at ``addr``, ``stride`` bytes apart."""
        return [self.read(addr + i * stride) for i in range(count)]

    def copy_range(
        self, src: int, dst: int, nbytes: int, granule: int = 4
    ) -> None:
        """Copy ``nbytes`` of values from ``src`` to ``dst``.

        Used by the DMA engine at message delivery. Copies every
        stored key in the source range at its natural granularity as
        well as ``granule``-aligned defaults, so sparse and dense
        writes both survive the transfer.
        """
        if nbytes < 0:
            raise ValueError(f"negative copy length {nbytes}")
        # Copy any value actually stored in the source window,
        # preserving its offset. Keys not present read as 0 at the
        # destination too only if the destination had no prior value,
        # so clear the destination window first.
        for off in range(0, nbytes, granule):
            key = src + off
            if key in self._mem:
                self._mem[dst + off] = self._mem[key]
            else:
                self._mem.pop(dst + off, None)
        self.writes += nbytes // granule if granule else 0

    def snapshot_range(
        self, addr: int, nbytes: int, granule: int = 4
    ) -> list[tuple[int, Any]]:
        """Capture ``(offset, value)`` pairs present in a window.

        Used by the DMA engine: data is captured at message-launch
        time, matching hardware where the source memory is read as the
        packet streams out.
        """
        if nbytes < 0:
            raise ValueError(f"negative snapshot length {nbytes}")
        out = []
        for off in range(0, nbytes, granule):
            key = addr + off
            if key in self._mem:
                out.append((off, self._mem[key]))
        return out

    def write_snapshot(
        self, addr: int, nbytes: int, snapshot: list[tuple[int, Any]], granule: int = 4
    ) -> None:
        """Deposit a snapshot at ``addr``, clearing the rest of the window."""
        if nbytes < 0:
            raise ValueError(f"negative snapshot length {nbytes}")
        for off in range(0, nbytes, granule):
            self._mem.pop(addr + off, None)
        for off, value in snapshot:
            if not (0 <= off < nbytes):
                raise ValueError(f"snapshot offset {off} outside window of {nbytes}")
            self._mem[addr + off] = value
        self.writes += len(snapshot)

    def atomically(self, addr: int, fn) -> tuple[Any, Any]:
        """Read-modify-write: ``new = fn(old)``; returns ``(old, new)``."""
        old = self._mem.get(addr, 0)
        new = fn(old)
        self._mem[addr] = new
        self.reads += 1
        self.writes += 1
        return old, new

    def __len__(self) -> int:
        return len(self._mem)

    def keys(self) -> Iterator[int]:
        return iter(self._mem)
