"""Memory system: global addresses, backing store, caches, LimitLESS
directory, and the coherence transaction engine."""

from repro.memory.address import (
    DOUBLEWORD,
    LINE_SIZE,
    WORD,
    home_of,
    line_of,
    line_range,
    make_addr,
    offset_of,
)
from repro.memory.cache import Cache, CacheStats, LineState
from repro.memory.coherence import AccessKind, CoherenceEngine, CoherenceParams
from repro.memory.directory import Directory, DirEntry, DirState
from repro.memory.store import BackingStore

__all__ = [
    "AccessKind",
    "BackingStore",
    "Cache",
    "CacheStats",
    "CoherenceEngine",
    "CoherenceParams",
    "DOUBLEWORD",
    "DirEntry",
    "DirState",
    "Directory",
    "LINE_SIZE",
    "LineState",
    "WORD",
    "home_of",
    "line_of",
    "line_range",
    "make_addr",
    "offset_of",
]
