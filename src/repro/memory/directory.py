"""LimitLESS-style cache-coherence directory (one per home node).

Each home node tracks, per cache line, which nodes hold copies. Real
Alewife keeps a small number of hardware pointers per entry
(LimitLESS [Chaiken et al., ASPLOS'91]); when more sharers exist the
CMMU traps to software which maintains the full sharer list. We keep
the full set in Python and charge a software-extension penalty
whenever an operation touches an entry whose sharer count exceeds the
hardware pointer limit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DirState(enum.Enum):
    UNOWNED = "unowned"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass(slots=True)
class DirEntry:
    state: DirState = DirState.UNOWNED
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None

    def check(self) -> None:
        """Internal-consistency assertion, used by tests."""
        if self.state is DirState.UNOWNED:
            assert not self.sharers and self.owner is None
        elif self.state is DirState.SHARED:
            assert self.sharers and self.owner is None
        else:
            assert self.owner is not None and not self.sharers


@dataclass(slots=True)
class DirectoryStats:
    lookups: int = 0
    software_traps: int = 0  # LimitLESS pointer-overflow handler entries
    invalidations_sent: int = 0
    forwards: int = 0


class Directory:
    """Directory for all lines homed at ``node``."""

    def __init__(self, node: int, hw_pointers: int = 5) -> None:
        if hw_pointers < 1:
            raise ValueError(f"need at least one hardware pointer, got {hw_pointers}")
        self.node = node
        self.hw_pointers = hw_pointers
        self._entries: dict[int, DirEntry] = {}
        self.stats = DirectoryStats()

    def entry(self, line: int) -> DirEntry:
        self.stats.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = DirEntry()
            self._entries[line] = e
        return e

    def peek(self, line: int) -> DirEntry | None:
        """Entry without creating or counting a lookup (tests/diagnostics)."""
        return self._entries.get(line)

    # ------------------------------------------------------------------
    # State transitions. These mutate bookkeeping only; the coherence
    # engine decides what messages to send and charges the timing.
    # ------------------------------------------------------------------
    def overflowed(self, entry: DirEntry) -> bool:
        """True when the sharer set no longer fits the hardware pointers."""
        return len(entry.sharers) > self.hw_pointers

    def note_software_trap(self) -> None:
        self.stats.software_traps += 1

    # The mutators below inline ``entry()`` (including its
    # ``stats.lookups`` bump, so counts are unchanged) — they run once
    # or more per protocol transaction and the extra call showed up in
    # profiles.

    def add_sharer(self, line: int, node: int) -> bool:
        """Record a read copy at ``node``; True if this overflows hardware.

        Must not be called while the entry is EXCLUSIVE — the engine
        resolves exclusivity (writeback) first.
        """
        self.stats.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = self._entries[line] = DirEntry()
        if e.state is DirState.EXCLUSIVE:
            raise ValueError(f"line {line:#x} is EXCLUSIVE; resolve ownership first")
        e.sharers.add(node)
        e.state = DirState.SHARED
        e.owner = None
        if len(e.sharers) > self.hw_pointers:
            self.stats.software_traps += 1
            return True
        return False

    def set_exclusive(self, line: int, node: int) -> None:
        self.stats.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = self._entries[line] = DirEntry()
        e.state = DirState.EXCLUSIVE
        e.owner = node
        e.sharers.clear()

    def clear(self, line: int) -> None:
        """Return the line to UNOWNED (after writeback/invalidation)."""
        self.stats.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = self._entries[line] = DirEntry()
        e.state = DirState.UNOWNED
        e.owner = None
        e.sharers.clear()

    def drop_sharer(self, line: int, node: int) -> None:
        self.stats.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = self._entries[line] = DirEntry()
        e.sharers.discard(node)
        if not e.sharers and e.state is DirState.SHARED:
            e.state = DirState.UNOWNED

    def sharers_to_invalidate(self, line: int, excluding: int) -> list[int]:
        """Sharer list minus ``excluding``, in deterministic order."""
        e = self.entry(line)
        return sorted(n for n in e.sharers if n != excluding)

    def __len__(self) -> int:
        return len(self._entries)

    def register_metrics(self, reg, **labels) -> None:
        """Register this directory's instruments (lazy reads) into a
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        s = self.stats
        labels = {"component": "directory", **labels}
        for name in ("lookups", "software_traps", "invalidations_sent", "forwards"):
            reg.counter(f"dir.{name}", lambda n=name: getattr(s, n), **labels)
        reg.gauge("dir.entries", lambda: len(self._entries), **labels)
