"""Directory-based cache-coherence transaction engine.

This is the timing engine for all shared-memory traffic. Every
load/store/prefetch that misses (or needs an ownership change) becomes
a *transaction*:

  requester --request--> home --[invalidate/forward legs]--> home
            <--data/ack reply--

Key modelling decisions (see DESIGN.md for rationale):

* **Per-line serialization at the home.** The home directory processes
  one transaction per line at a time; later requests queue FIFO. This
  makes races structurally impossible while preserving the hot-line
  contention behaviour the paper's barrier experiment depends on.
* **Home port occupancy.** Alewife keeps directory entries in DRAM, so
  every protocol transaction occupies the home node's memory port.
  This shared-resource cost is what makes a prefetch+store pair (two
  transactions per line) slower than a single blocking read-exclusive
  miss in the Fig. 7 copy loop.
* **Timing only.** Word values live in the backing store; the engine
  moves no data.
* **No upgrade optimization by default.** A store that hits a SHARED
  line issues a full read-exclusive request (matching the behaviour
  needed to reproduce Fig. 7); set
  ``CoherenceParams.upgrade_optimization`` to model an
  upgrade-without-data protocol instead.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.memory.address import NODE_SHIFT, home_of
from repro.memory.cache import Cache, LineState
from repro.memory.directory import Directory, DirState
from repro.network.fabric import Network
from repro.network.packet import Packet, PacketKind
from repro.sim.engine import Resource, SimulationError, Simulator

OnDone = Callable[[], None]

# prebound PacketKind members: handle_packet runs once per protocol
# packet, and enum attribute access there is measurable
def _noop() -> None:
    """Placeholder callback for events that exist purely as simulated
    time (e.g. a fill-release with no waiters)."""


_PK_READ_REQ = PacketKind.COH_READ_REQ
_PK_WRITE_REQ = PacketKind.COH_WRITE_REQ
_PK_UPGRADE_REQ = PacketKind.COH_UPGRADE_REQ
_PK_DATA_REPLY = PacketKind.COH_DATA_REPLY
_PK_ACK_REPLY = PacketKind.COH_ACK_REPLY
_PK_INV_ACK = PacketKind.COH_INV_ACK
_PK_INVALIDATE = PacketKind.COH_INVALIDATE
_PK_FORWARD = PacketKind.COH_FORWARD
_PK_WRITEBACK = PacketKind.COH_WRITEBACK


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    PREFETCH = "prefetch"  # read-shared, non-binding, non-blocking


@dataclass
class CoherenceParams:
    """All timing knobs for the shared-memory system (cycles)."""

    load_hit: int = 2
    store_hit: int = 2
    #: directory logic + directory-entry DRAM access at the home
    home_ctrl_occupancy: int = 8
    #: additional occupancy when the transaction moves line data
    home_data_occupancy: int = 6
    #: LimitLESS software-extension trap when sharers overflow hardware
    trap_cycles: int = 40
    #: requester-side latency to get a request out / into the cache
    request_issue: int = 2
    #: requester-side line fill after the reply arrives
    fill_cycles: int = 2
    #: processor-visible cost of issuing a (non-blocking) prefetch
    prefetch_issue: int = 2
    #: maximum outstanding prefetches per node (extra ones are dropped)
    prefetch_slots: int = 4
    #: per-invalidation issue occupancy at the home
    inv_issue: int = 2
    #: store-to-SHARED issues an upgrade (no data) instead of a full miss
    upgrade_optimization: bool = False
    #: occupancy multiplier when the requester IS the home node — the
    #: local fast path skips the network-side protocol machinery
    #: (Alewife's local miss is ~11 cycles vs ~38 remote)
    local_home_discount: float = 0.5
    #: MESI: a read miss on an UNOWNED line fills EXCLUSIVE-clean, so a
    #: later store by the same node upgrades silently (no second
    #: transaction). Alewife's protocol was MSI-like; this knob exists
    #: for the protocol ablation.
    mesi: bool = False
    #: LimitLESS fidelity: in the real machine the pointer-overflow
    #: software handler runs ON the home node's processor, stealing
    #: CPU time from whatever thread runs there (not just memory-port
    #: time). Enable to charge the trap to the home CPU as well.
    limitless_trap_on_cpu: bool = False
    # packet sizes in 32-bit words
    req_words: int = 3
    ack_words: int = 2
    inv_words: int = 2
    header_words: int = 2  # header on data-bearing packets

    def data_reply_words(self, line_size: int) -> int:
        return self.header_words + line_size // 4


class _Txn:
    """Requester-side outstanding transaction (MSHR entry).

    Plain slotted class, not a dataclass: one is allocated per
    coherence miss, which makes construction cost and per-instance
    memory part of the simulator's hot path.
    """

    __slots__ = ("node", "line", "kind", "is_prefetch", "waiters",
                 "post_fill", "reply_in_flight")

    def __init__(
        self, node: int, line: int, kind: AccessKind, is_prefetch: bool = False
    ) -> None:
        self.node = node
        self.line = line
        self.kind = kind
        self.is_prefetch = is_prefetch
        #: (kind, on_done) pairs released when the fill lands
        self.waiters: list[tuple[AccessKind, OnDone]] = []
        #: protocol actions (invalidations/forwards) that raced ahead of
        #: our data reply; applied immediately after the fill (the real
        #: hardware NACKs or defers in a transient state)
        self.post_fill: list[Callable[[], None]] = []
        #: set once the home has dispatched our reply. Only then may
        #: protocol actions be deferred onto this transaction: deferring
        #: while our request is still queued at the home would deadlock
        #: (the incoming action belongs to the very transaction our
        #: request is queued behind).
        self.reply_in_flight = False


class _HomeReq:
    """A transaction as seen by the home directory (slotted; one per
    request reaching a home node)."""

    __slots__ = ("kind", "node", "line", "was_modified")

    def __init__(
        self,
        kind: "AccessKind | str",  # AccessKind, "upgrade", or "writeback"
        node: int,
        line: int,
        was_modified: bool = False,  # writebacks: evictor held it MODIFIED
    ) -> None:
        self.kind = kind
        self.node = node
        self.line = line
        self.was_modified = was_modified


class _Fill:
    """Payload of a remote data/ack reply: applies the fill at the
    requester.

    Behaves exactly like the ``lambda: coh._fill(node, line, state)``
    it replaces on the remote-reply path, but carries its arguments in
    slots so a partition barrier (repro.perf.partition) can encode it
    structurally when the reply crosses a shard boundary. The
    local-reply path keeps the bare lambda — it never crosses anything.
    """

    __slots__ = ("coh", "node", "line", "state")

    def __init__(self, coh: "CoherenceEngine", node: int, line: int,
                 state: LineState) -> None:
        self.coh = coh
        self.node = node
        self.line = line
        self.state = state

    def __call__(self) -> None:
        self.coh._fill(self.node, self.line, self.state)


@dataclass(slots=True)
class CoherenceStats:
    transactions: int = 0
    read_misses: int = 0
    write_misses: int = 0
    upgrades: int = 0
    prefetches_issued: int = 0
    prefetches_dropped: int = 0
    forwards: int = 0
    invalidations: int = 0
    writebacks: int = 0
    local_transactions: int = 0


class CoherenceEngine:
    """Machine-wide coherence protocol engine (logically centralized,
    physically distributed timing)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        line_size: int = 16,
        params: CoherenceParams | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.line_size = line_size
        self._line_mask = ~(line_size - 1)  # inline line_of on the hot path
        self.p = params or CoherenceParams()
        self.caches: dict[int, Cache] = {}
        self.dirs: dict[int, Directory] = {}
        self.ports: dict[int, Resource] = {}
        self._mshr: dict[int, dict[int, _Txn]] = {}
        self._prefetch_count: dict[int, int] = {}
        # home-side per-line serialization
        self._line_busy: set[tuple[int, int]] = set()
        self._line_q: dict[tuple[int, int], deque[_HomeReq]] = {}
        #: set by the Machine when limitless_trap_on_cpu is enabled:
        #: called as fn(home_node, cycles) on each software trap
        self.on_software_trap = None
        #: set by Machine on partitioned runs (repro.perf.partition);
        #: None on serial runs
        self.shard = None
        self.stats = CoherenceStats()

    # ------------------------------------------------------------------
    def add_node(
        self, node: int, cache: Cache, directory: Directory, port: Resource
    ) -> None:
        if node in self.caches:
            raise SimulationError(f"node {node} already registered")
        self.caches[node] = cache
        self.dirs[node] = directory
        self.ports[node] = port
        self._mshr[node] = {}
        self._prefetch_count[node] = 0

    def register_metrics(self, reg, **labels) -> None:
        """Register protocol-engine instruments (lazy reads) into a
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        s = self.stats
        labels = {"component": "coherence", **labels}
        for name in ("transactions", "read_misses", "write_misses", "upgrades",
                     "prefetches_issued", "prefetches_dropped", "forwards",
                     "invalidations", "writebacks", "local_transactions"):
            reg.counter(f"coh.{name}", lambda n=name: getattr(s, n), **labels)
        reg.counter(
            "coh.mem_port_busy_cycles",
            lambda: sum(p.total_busy for p in self.ports.values()),
            **labels,
        )

    # ------------------------------------------------------------------
    # Requester side
    # ------------------------------------------------------------------
    def access(self, node: int, addr: int, kind: AccessKind, on_done: OnDone) -> bool:
        """Perform one shared-memory access; ``on_done`` fires when it
        retires (for PREFETCH: when the issue slot is released, the fill
        continues in the background).

        Returns True on a cache hit (the access retires in a cycle or
        two) and False on a miss — synchronously, the way the real
        cache controller tells Sparcle whether to stall or
        context-switch.

        Hit fast path: a local cache hit completes through the
        engine's handle-free due lane (``Simulator.call_after``) — no
        transaction state, no event record, no heap round-trip — while
        retiring at exactly the same simulated cycle as before.
        """
        line = addr & self._line_mask
        cache = self.caches[node]

        if kind is AccessKind.PREFETCH:
            self.sim.call_after(self.p.prefetch_issue, on_done)
            if cache.state(line) is not LineState.INVALID:
                return True
            if line in self._mshr[node]:
                return True
            if self._prefetch_count[node] >= self.p.prefetch_slots:
                self.stats.prefetches_dropped += 1
                return True
            self._prefetch_count[node] += 1
            self.stats.prefetches_issued += 1
            self._start_txn(node, line, AccessKind.READ, is_prefetch=True)
            return True  # prefetches never stall the issuing context

        if kind is AccessKind.READ:
            if cache.lookup(line, for_write=False):
                self.sim.call_after(self.p.load_hit, on_done)
                return True
        elif kind is AccessKind.WRITE:
            if cache.lookup(line, for_write=True):
                self.sim.call_after(self.p.store_hit, on_done)
                return True
        else:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unknown access kind {kind!r}")

        pending = self._mshr[node].get(line)
        if pending is not None:
            pending.waiters.append((kind, on_done))
            return False

        txn = self._start_txn(node, line, kind)
        txn.waiters.append((kind, on_done))
        return False

    def _start_txn(
        self, node: int, line: int, kind: AccessKind, is_prefetch: bool = False
    ) -> _Txn:
        txn = _Txn(node, line, kind, is_prefetch)
        self._mshr[node][line] = txn
        self.stats.transactions += 1
        upgrade = (
            kind is AccessKind.WRITE
            and self.p.upgrade_optimization
            and self.caches[node].state(line) is LineState.SHARED
        )
        if kind is AccessKind.READ:
            self.stats.read_misses += 1
        elif upgrade:
            self.stats.upgrades += 1
        else:
            self.stats.write_misses += 1
        home = line >> NODE_SHIFT  # home_of, inlined
        req = _HomeReq("upgrade" if upgrade else kind, node, line)
        if home == node:
            self.stats.local_transactions += 1
            self.sim.call_after(
                self.p.request_issue, lambda: self._home_enqueue(home, req)
            )
        else:
            if upgrade:
                pk = PacketKind.COH_UPGRADE_REQ
            elif kind is AccessKind.READ:
                pk = PacketKind.COH_READ_REQ
            else:
                pk = PacketKind.COH_WRITE_REQ
            self._send(node, home, pk, self.p.req_words, req)
        return txn

    # ------------------------------------------------------------------
    # Network plumbing
    # ------------------------------------------------------------------
    def _send(self, src: int, dst: int, kind: PacketKind, words: int, payload) -> None:
        self.network.send(Packet(src, dst, kind, words, payload))

    def handle_packet(self, packet: Packet) -> None:
        """Entry point for protocol packets delivered by the network
        (called from the node's CMMU sink). Dispatch is identity tests
        against prebound members, most-frequent kinds first (replies
        and requests dominate protocol traffic)."""
        kind = packet.kind
        if kind is _PK_DATA_REPLY or kind is _PK_ACK_REPLY or kind is _PK_INV_ACK:
            # continuation-style payloads: a callable to invoke on arrival
            packet.payload()
        elif kind is _PK_READ_REQ or kind is _PK_WRITE_REQ or kind is _PK_UPGRADE_REQ:
            self._home_enqueue(packet.dst, packet.payload)
        elif kind is _PK_WRITEBACK:
            self._home_enqueue(packet.dst, packet.payload)
        elif kind is _PK_INVALIDATE:
            self._on_invalidate(packet)
        elif kind is _PK_FORWARD:
            self._on_forward(packet)
        else:  # pragma: no cover
            raise SimulationError(f"coherence engine got {packet!r}")

    # ------------------------------------------------------------------
    # Home side
    # ------------------------------------------------------------------
    def _home_enqueue(self, home: int, req: _HomeReq) -> None:
        key = (home, req.line)
        if key in self._line_busy:
            self._line_q.setdefault(key, deque()).append(req)
        else:
            self._line_busy.add(key)
            self._process(home, req)

    def _line_release(self, home: int, line: int) -> None:
        key = (home, line)
        q = self._line_q.get(key)
        if q:
            nxt = q.popleft()
            if not q:
                del self._line_q[key]
            self._process(home, nxt)
        else:
            self._line_busy.discard(key)

    def _process(self, home: int, req: _HomeReq) -> None:
        kind = req.kind
        if kind is AccessKind.READ:
            self._process_read(home, req)
        elif kind is AccessKind.WRITE:
            self._process_write(home, req)
        elif kind == "writeback":
            self._process_writeback(home, req)
        elif kind == "upgrade":
            self._process_upgrade(home, req)
        else:  # pragma: no cover
            raise SimulationError(f"bad home request {req!r}")

    def _process_upgrade(self, home: int, req: _HomeReq) -> None:
        """Ownership upgrade without data (only with the optimization on).

        If the requester lost its SHARED copy in the meantime (an
        earlier-queued writer invalidated it), fall back to a full
        write transaction.
        """
        line, requester = req.line, req.node
        d = self.dirs[home]
        entry = d.entry(line)
        if entry.state is not DirState.SHARED or requester not in entry.sharers:
            self._process_write(home, _HomeReq(AccessKind.WRITE, requester, line))
            return
        ready = self._occupy(home, len(entry.sharers) > d.hw_pointers, with_data=False, requester=requester)
        invs = d.sharers_to_invalidate(line, excluding=requester)
        if not invs:
            d.set_exclusive(line, requester)
            self._schedule_reply(
                home, requester, line, LineState.MODIFIED, at=ready, with_data=False
            )
            return
        self.stats.invalidations += len(invs)
        d.stats.invalidations_sent += len(invs)
        remaining = len(invs)

        def on_ack() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                t2 = self.ports[home].acquire(self.p.home_ctrl_occupancy)
                d.set_exclusive(line, requester)
                self._schedule_reply(
                    home, requester, line, LineState.MODIFIED, at=t2, with_data=False
                )

        send_at = ready
        for sharer in invs:
            send_at = self.ports[home].acquire(self.p.inv_issue, earliest=send_at)
            if sharer == home:
                def local_inv(s: int = sharer) -> None:
                    def do() -> None:
                        self.caches[s].invalidate(line)
                        on_ack()

                    self._apply_or_defer(s, line, do)

                self.sim.call_at(send_at, local_inv)
            else:
                self.sim.call_at(
                    send_at,
                    lambda s=sharer: self._send(
                        home, s, PacketKind.COH_INVALIDATE,
                        self.p.inv_words, (line, home, on_ack),
                    ),
                )

    def _occupy(
        self, home: int, entry_overflowed: bool, with_data: bool, requester: int = -1
    ) -> int:
        occ = self.p.home_ctrl_occupancy
        if with_data:
            occ += self.p.home_data_occupancy
        if requester == home:
            occ = int(occ * self.p.local_home_discount)
        if entry_overflowed:
            occ += self.p.trap_cycles
            self.dirs[home].note_software_trap()
            if self.on_software_trap is not None:
                self.on_software_trap(home, self.p.trap_cycles)
        return self.ports[home].acquire(occ)

    def _process_read(self, home: int, req: _HomeReq) -> None:
        line, requester = req.line, req.node
        d = self.dirs[home]
        entry = d.entry(line)
        ready = self._occupy(home, len(entry.sharers) > d.hw_pointers, with_data=True, requester=requester)

        if entry.state is DirState.EXCLUSIVE and entry.owner == requester:
            # Stale ownership (eviction writeback in flight); the data
            # is safe in the backing store. Fall through as UNOWNED.
            d.clear(line)
            entry = d.entry(line)

        if entry.state is DirState.EXCLUSIVE:
            owner = entry.owner
            assert owner is not None
            self.stats.forwards += 1
            d.stats.forwards += 1
            if owner == home:
                # dirty in the home's own cache: flush locally, reply
                def downgrade_own() -> None:
                    if self.caches[home].state(line) is not LineState.INVALID:
                        self.caches[home].set_state(line, LineState.SHARED)

                self._apply_or_defer(home, line, downgrade_own)
                extra = self.ports[home].acquire(self.p.home_data_occupancy, earliest=ready)
                d.clear(line)
                d.add_sharer(line, home)
                d.add_sharer(line, requester)
                self._schedule_reply(home, requester, line, LineState.SHARED, at=extra)
            else:
                def after_writeback() -> None:
                    t2 = self.ports[home].acquire(self.p.home_data_occupancy)
                    d.clear(line)
                    d.add_sharer(line, owner)
                    d.add_sharer(line, requester)
                    self._schedule_reply(home, requester, line, LineState.SHARED, at=t2)

                self.sim.call_at(
                    ready,
                    lambda: self._send(
                        home,
                        owner,
                        PacketKind.COH_FORWARD,
                        self.p.inv_words,
                        ("read", line, home, after_writeback),
                    ),
                )
            return

        if self.p.mesi and entry.state is DirState.UNOWNED:
            # sole reader: grant exclusive-clean
            d.set_exclusive(line, requester)
            self._schedule_reply(home, requester, line, LineState.EXCLUSIVE, at=ready)
            return
        d.add_sharer(line, requester)
        self._schedule_reply(home, requester, line, LineState.SHARED, at=ready)

    def _process_write(self, home: int, req: _HomeReq) -> None:
        line, requester = req.line, req.node
        d = self.dirs[home]
        entry = d.entry(line)
        ready = self._occupy(home, len(entry.sharers) > d.hw_pointers, with_data=True, requester=requester)

        if entry.state is DirState.EXCLUSIVE and entry.owner == requester:
            d.clear(line)
            entry = d.entry(line)

        if entry.state is DirState.EXCLUSIVE:
            owner = entry.owner
            assert owner is not None
            self.stats.forwards += 1
            d.stats.forwards += 1
            if owner == home:
                self._apply_or_defer(home, line, lambda: self.caches[home].invalidate(line))
                extra = self.ports[home].acquire(self.p.home_data_occupancy, earliest=ready)
                d.set_exclusive(line, requester)
                self._schedule_reply(home, requester, line, LineState.MODIFIED, at=extra)
            else:
                def after_writeback() -> None:
                    t2 = self.ports[home].acquire(self.p.home_data_occupancy)
                    d.set_exclusive(line, requester)
                    self._schedule_reply(home, requester, line, LineState.MODIFIED, at=t2)

                self.sim.call_at(
                    ready,
                    lambda: self._send(
                        home,
                        owner,
                        PacketKind.COH_FORWARD,
                        self.p.inv_words,
                        ("write", line, home, after_writeback),
                    ),
                )
            return

        invs = d.sharers_to_invalidate(line, excluding=requester)
        if not invs:
            d.set_exclusive(line, requester)
            self._schedule_reply(home, requester, line, LineState.MODIFIED, at=ready)
            return

        # Invalidate every other sharer, collect acks at the home, then
        # grant exclusivity.
        self.stats.invalidations += len(invs)
        d.stats.invalidations_sent += len(invs)
        remaining = len(invs)

        def on_ack() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                t2 = self.ports[home].acquire(self.p.home_ctrl_occupancy)
                d.set_exclusive(line, requester)
                self._schedule_reply(home, requester, line, LineState.MODIFIED, at=t2)

        send_at = ready
        for sharer in invs:
            send_at = self.ports[home].acquire(self.p.inv_issue, earliest=send_at)
            if sharer == home:
                # invalidate the home's own cached copy, no network
                def local_inv(s: int = sharer) -> None:
                    def do() -> None:
                        self.caches[s].invalidate(line)
                        on_ack()

                    self._apply_or_defer(s, line, do)

                self.sim.call_at(send_at, local_inv)
            else:
                self.sim.call_at(
                    send_at,
                    lambda s=sharer: self._send(
                        home, s, PacketKind.COH_INVALIDATE,
                        self.p.inv_words, (line, home, on_ack),
                    ),
                )

    def _process_writeback(self, home: int, req: _HomeReq) -> None:
        line = req.line
        d = self.dirs[home]
        self.stats.writebacks += 1
        self._occupy(home, False, with_data=req.was_modified)
        entry = d.entry(line)
        if entry.state is DirState.EXCLUSIVE and entry.owner == req.node:
            d.clear(line)
        else:
            d.drop_sharer(line, req.node)
        self._line_release(home, line)

    # ------------------------------------------------------------------
    # Remote-side handlers (sharer / owner nodes)
    # ------------------------------------------------------------------
    def _apply_or_defer(self, node: int, line: int, action: Callable[[], None]) -> None:
        """Run a protocol action at ``node`` now — or, if that node has
        a *reply* in flight for ``line`` (our action overtook its data
        reply in the network), defer it until just after the fill.

        Actions aimed at a node whose request is still queued at the
        home apply immediately: that node's cached state (e.g. a
        SHARED copy awaiting a write upgrade) is current, and the
        reply it is waiting for is the one *behind* this action's
        transaction — deferring would deadlock.
        """
        txn = self._mshr[node].get(line)
        if txn is not None and txn.reply_in_flight:
            txn.post_fill.append(action)
        else:
            action()

    def _on_invalidate(self, packet: Packet) -> None:
        line, home, on_ack = packet.payload
        dst = packet.dst

        def do_inv() -> None:
            self.caches[dst].invalidate(line)
            self._send(dst, home, PacketKind.COH_INV_ACK, self.p.ack_words, on_ack)

        self._apply_or_defer(dst, line, do_inv)

    def _on_forward(self, packet: Packet) -> None:
        mode, line, home, continuation = packet.payload
        owner = packet.dst

        def do_forward() -> None:
            cache = self.caches[owner]
            if cache.state(line) is not LineState.INVALID:
                if mode == "read":
                    cache.set_state(line, LineState.SHARED)
                else:
                    cache.invalidate(line)
            # Data-bearing writeback to the home (stale-safe: sent even
            # if the line was already evicted — values live in the
            # store). The ACK_REPLY kind routes the continuation back
            # into the pending transaction rather than opening a new one.
            words = self.p.data_reply_words(self.line_size)
            self._send(owner, home, PacketKind.COH_ACK_REPLY, words, continuation)

        self._apply_or_defer(owner, line, do_forward)

    # ------------------------------------------------------------------
    # Reply / fill
    # ------------------------------------------------------------------
    def _schedule_reply(
        self,
        home: int,
        requester: int,
        line: int,
        state: LineState,
        at: int,
        with_data: bool = True,
    ) -> None:
        words = (
            self.p.data_reply_words(self.line_size) if with_data else self.p.ack_words
        )
        pk = PacketKind.COH_DATA_REPLY if with_data else PacketKind.COH_ACK_REPLY
        txn = self._mshr[requester].get(line)
        if txn is not None:
            # from here on, invalidations/forwards for this line may
            # legally overtake the reply and must be deferred
            txn.reply_in_flight = True

        # the home==requester decision is known now; build the cheaper
        # of the two deliver closures instead of branching at fire time
        if home == requester:
            fill = lambda: self._fill(requester, line, state)
            issue = self.p.request_issue
            call_after = self.sim.call_after

            def deliver() -> None:
                call_after(issue, fill)
        else:
            # slotted payload so partition barriers can encode it if
            # this reply crosses a shard boundary; calls identically
            fill = _Fill(self, requester, line, state)

            def deliver() -> None:
                self._send(home, requester, pk, words, fill)

        self.sim.call_at(at, deliver)
        # The home's part is done once the reply leaves; free the line
        # for the next queued transaction. A later transaction's
        # invalidate/forward can therefore overtake this data reply in
        # the network — the receiver defers such actions until its
        # fill lands (see _apply_or_defer), mirroring the transient
        # states real protocols keep for exactly this race.
        self.sim.call_at(at, lambda: self._line_release(home, line))

    def _fill(self, node: int, line: int, state: LineState) -> None:
        cache = self.caches[node]
        victim = cache.fill(line, state)
        if victim is not None:
            self._evict_writeback(node, victim)
        txn = self._mshr[node].pop(line, None)
        if txn is None:  # pragma: no cover - protocol invariant
            raise SimulationError(f"fill without MSHR entry: node {node} line {line:#x}")
        if txn.is_prefetch:
            self._prefetch_count[node] -= 1
        # deferred invalidations/forwards that overtook our reply
        for action in txn.post_fill:
            action()
        waiters = txn.waiters
        if not waiters:
            # the release event must still exist (it is simulated time
            # the requester observes), but it has nothing to do — skip
            # the closure allocation for this common case
            self.sim.call_after(self.p.fill_cycles, _noop)
            return

        def release() -> None:
            for kind, cb in waiters:
                if self._satisfied(kind, state):
                    cb()
                else:
                    # e.g. a WRITE waiter behind a READ fill: redo as
                    # its own transaction (an upgrade/write miss).
                    self.access(node, line, kind, cb)

        self.sim.call_after(self.p.fill_cycles, release)

    @staticmethod
    def _satisfied(kind: AccessKind, state: LineState) -> bool:
        if kind is AccessKind.WRITE:
            return state is LineState.MODIFIED
        return True

    def _evict_writeback(self, node: int, line: int) -> None:
        home = home_of(line)
        req = _HomeReq(kind="writeback", node=node, line=line, was_modified=True)
        words = self.p.data_reply_words(self.line_size)
        if home == node:
            self._home_enqueue(home, req)
        else:
            self._send(node, home, PacketKind.COH_WRITEBACK, words, req)

    # ------------------------------------------------------------------
    # DMA bookkeeping (zero-message directory fixup; see DESIGN.md)
    # ------------------------------------------------------------------
    def dma_flush(self, node: int, addr: int, nbytes: int) -> int:
        """Make ``node``'s cache consistent with its local memory over
        ``[addr, addr+nbytes)``. Returns the number of dirty lines
        flushed (the DMA engine charges time for them)."""
        dropped = self.caches[node].flush_range(addr, nbytes)
        dirty = 0
        for line, prior in dropped:
            home = home_of(line)
            d = self.dirs.get(home)
            # On partitioned runs the fixup may only touch directories
            # this shard is authoritative for; a stale sharer bit at a
            # foreign home is protocol-safe (the invalidate path is
            # already stale-tolerant) and DMA of remote-homed data is
            # not exercised by the experiments.
            if self.shard is not None and not self.shard.owns(home):
                d = None
            if d is not None:
                entry = d.entry(line)
                if entry.state is DirState.EXCLUSIVE and entry.owner == node:
                    d.clear(line)
                else:
                    d.drop_sharer(line, node)
            if prior is LineState.MODIFIED:
                dirty += 1
        return dirty
