"""Per-node coherent data cache (timing model).

A fully-associative, LRU cache of 16-byte lines holding one of the
MSI states. Only *presence and state* are tracked — line data lives
in the machine-wide :class:`~repro.memory.store.BackingStore`.

Alewife's real cache is 64 KB direct-mapped; full associativity is a
conservative simplification (fewer conflict misses) that does not
affect any experiment because the working sets either fit trivially
or are streamed once.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass


class LineState(enum.Enum):
    INVALID = "I"
    SHARED = "S"
    #: exclusive-clean (MESI only): sole copy, memory up to date; a
    #: store promotes to MODIFIED silently
    EXCLUSIVE = "E"
    MODIFIED = "M"


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations_received: int = 0
    upgrades: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """LRU cache over line base addresses."""

    def __init__(self, node: int, capacity_lines: int, line_size: int = 16) -> None:
        if capacity_lines <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_lines}")
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        self.node = node
        self.capacity_lines = capacity_lines
        self.line_size = line_size
        # line base address -> state; OrderedDict gives us LRU order.
        self._lines: OrderedDict[int, LineState] = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def state(self, line: int) -> LineState:
        """Current state of ``line`` (INVALID when absent)."""
        return self._lines.get(line, LineState.INVALID)

    def touch(self, line: int) -> None:
        """Refresh LRU position of a present line."""
        if line in self._lines:
            self._lines.move_to_end(line)

    def lookup(self, line: int, for_write: bool) -> bool:
        """Hit test with stats accounting; refreshes LRU on hit.

        A write to an EXCLUSIVE (clean) line promotes it to MODIFIED
        silently — the MESI payoff."""
        st = self._lines.get(line)
        if st is None or st is LineState.INVALID:
            self.stats.misses += 1
            return False
        if for_write:
            if st is LineState.EXCLUSIVE:
                self._lines[line] = LineState.MODIFIED
                self.stats.upgrades += 1
            elif st is not LineState.MODIFIED:
                self.stats.misses += 1  # upgrade needed: counts as a miss
                return False
        self._lines.move_to_end(line)
        self.stats.hits += 1
        return True

    def fill(self, line: int, state: LineState) -> int | None:
        """Install ``line`` in ``state``; returns an evicted dirty line.

        If installing overflows capacity, the LRU line is evicted. The
        return value is the evicted line's base address when that line
        was MODIFIED (caller must issue a writeback), else None.
        """
        if state is LineState.INVALID:
            raise ValueError("cannot fill a line INVALID")
        victim_dirty: int | None = None
        if line not in self._lines and len(self._lines) >= self.capacity_lines:
            victim, vstate = self._lines.popitem(last=False)
            self.stats.evictions += 1
            if vstate is LineState.MODIFIED:
                self.stats.writebacks += 1
                victim_dirty = victim
        self._lines[line] = state
        self._lines.move_to_end(line)
        return victim_dirty

    def set_state(self, line: int, state: LineState) -> None:
        """Change the state of a present line (e.g. M->S on remote read)."""
        if state is LineState.INVALID:
            self._lines.pop(line, None)
        elif line in self._lines:
            self._lines[line] = state
        else:
            raise KeyError(f"line {line:#x} not present in cache of node {self.node}")

    def invalidate(self, line: int) -> LineState:
        """Drop ``line``; returns its prior state (protocol inv or DMA flush)."""
        prior = self._lines.pop(line, LineState.INVALID)
        if prior is not LineState.INVALID:
            self.stats.invalidations_received += 1
        return prior

    def flush_range(self, addr: int, nbytes: int) -> list[tuple[int, LineState]]:
        """Invalidate every line overlapping ``[addr, addr+nbytes)``.

        Used by the DMA engine to keep the *local* cache consistent
        with local memory around a bulk transfer. Returns the
        ``(line, prior_state)`` pairs dropped.
        """
        from repro.memory.address import line_range

        dropped = []
        for line in line_range(addr, nbytes, self.line_size):
            prior = self._lines.pop(line, LineState.INVALID)
            if prior is not LineState.INVALID:
                dropped.append((line, prior))
        return dropped

    def resident_lines(self) -> list[int]:
        return list(self._lines)

    def register_metrics(self, reg, **labels) -> None:
        """Register this cache's instruments (lazy reads) into a
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        s = self.stats
        labels = {"component": "cache", **labels}
        for name in ("hits", "misses", "evictions", "writebacks",
                     "invalidations_received", "upgrades"):
            reg.counter(f"cache.{name}", lambda n=name: getattr(s, n), **labels)
        reg.gauge("cache.hit_rate", lambda: s.hit_rate, **labels)
        reg.gauge("cache.resident_lines", lambda: len(self._lines), **labels)

    def __len__(self) -> int:
        return len(self._lines)
