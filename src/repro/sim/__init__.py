"""Discrete-event simulation core."""

from repro.sim.engine import EventHandle, Resource, SimulationError, Simulator

__all__ = ["EventHandle", "Resource", "SimulationError", "Simulator"]
