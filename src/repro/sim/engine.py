"""Discrete-event simulation engine.

The engine is the beating heart of the Alewife model: every
architectural component (network links, directory controllers, DMA
engines, processors) schedules callbacks on a single global event
queue keyed by the simulated cycle count.

Events scheduled for the same cycle fire in FIFO order of scheduling,
which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


class SimulationError(RuntimeError):
    """Raised for fatal inconsistencies inside the simulator."""


@dataclass(order=True)
class _Event:
    time: int
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True

    @property
    def time(self) -> int:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """Priority-queue discrete-event simulator with an integer clock.

    The clock unit is one processor cycle (33 MHz in the default
    Alewife configuration, i.e. ~30.3 ns per cycle).
    """

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = 0
        self.now: int = 0
        self._running = False
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; fractional delays are rounded
        up (timing models sometimes produce fractions from bandwidth
        division and the hardware would round to whole cycles).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        when = self.now + int(-(-delay // 1))  # ceil for fractional delays
        ev = _Event(when, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return EventHandle(ev)

    def schedule_at(self, when: int, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` at absolute cycle ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self.now}"
            )
        return self.schedule(when - self.now, fn)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run a single event. Returns False when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if ev.time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = ev.time
            self.events_processed += 1
            ev.fn()
            return True
        return False

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the clock would pass this cycle (events at exactly
            ``until`` still run).
        max_events:
            Safety valve against runaway simulations.
        stop_when:
            Checked after every event; when it returns True the run
            stops early.

        Returns the simulated time at exit.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        stopped_early = False
        try:
            while self._queue:
                nxt = self._queue[0]
                if nxt.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and nxt.time > until:
                    break
                if not self.step():
                    break
                processed += 1
                if stop_when is not None and stop_when():
                    stopped_early = True
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
        finally:
            self._running = False
        if until is not None and not stopped_early:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self.pending}>"


class Resource:
    """A serially-reusable resource (memory port, DMA engine, link).

    Models occupancy: each acquisition holds the resource for a given
    number of cycles; requests that arrive while it is busy queue up
    FIFO. ``acquire`` returns the cycle at which the requested usage
    *completes* and immediately reserves the slot.
    """

    __slots__ = ("sim", "busy_until", "name", "total_busy")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.busy_until: int = 0
        self.name = name
        self.total_busy: int = 0  # cycles of occupancy, for utilization stats

    def acquire(self, occupancy: int, earliest: int | None = None) -> int:
        """Reserve the resource for ``occupancy`` cycles.

        ``earliest`` is the first cycle the work could start (defaults
        to now; values in the past clamp to now — a resource cannot
        retroactively have been busy). Returns the completion cycle.
        """
        if occupancy < 0:
            raise SimulationError(f"negative occupancy {occupancy!r}")
        start = max(
            self.busy_until,
            self.sim.now,
            self.sim.now if earliest is None else earliest,
        )
        self.busy_until = start + occupancy
        self.total_busy += occupancy
        return self.busy_until

    def available_at(self) -> int:
        """Cycle at which the resource next becomes free."""
        return max(self.busy_until, self.sim.now)
