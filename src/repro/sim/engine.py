"""Discrete-event simulation engine.

The engine is the beating heart of the Alewife model: every
architectural component (network links, directory controllers, DMA
engines, processors) schedules callbacks on a single global event
queue keyed by the simulated cycle count.

Events scheduled for the same cycle fire in FIFO order of scheduling,
which keeps runs fully deterministic.

Hot-path design
---------------
Millions of events per run make the per-event constant factor the
simulator's wall-clock bottleneck, so the queue is a *time-bucketed
calendar*: a dict mapping each pending cycle to a FIFO deque of
items, plus a small binary heap holding each distinct pending cycle
exactly once. Scheduling an event is a dict lookup and a deque
append; the heap is touched only when a cycle gains its first event.
Model events cluster heavily on a few near-future cycles (every
processor's cache-hit completions and spin backoffs land on the same
handful of latencies), so heap traffic collapses from one push+pop
per *event* to one per *distinct cycle* — and no ``(time, seq,
item)`` tuple is allocated at all: append order within a bucket *is*
the global FIFO order for that cycle, which keeps runs exactly as
deterministic as the old sequence-numbered heap.

A bucket item is either a bare callable (the handle-free
:meth:`Simulator.call_after` fast path — nothing to allocate, nothing
to cancel) or a ``_Event`` record when the caller needs an
:class:`EventHandle`. Host speed changes, simulated timing does not.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from typing import Callable


class SimulationError(RuntimeError):
    """Raised for fatal inconsistencies inside the simulator."""


class _Event:
    """Cancellable queue entry (only allocated when a handle is taken)."""

    __slots__ = ("time", "fn", "cancelled", "fired")

    def __init__(self, time: int, fn: Callable[[], None]) -> None:
        self.time = time
        self.fn = fn
        self.cancelled = False
        self.fired = False


class _Daemon:
    """Queue entry for a daemon (observer) event.

    Callable so :meth:`Simulator.step` runs it through the same bare
    ``item()`` path as handle-free events; the only extra work is
    keeping the simulator's daemon count current.
    """

    __slots__ = ("_sim", "fn")

    def __init__(self, sim: "Simulator", fn: Callable[[], None]) -> None:
        self._sim = sim
        self.fn = fn

    def __call__(self) -> None:
        self._sim._daemons -= 1
        self.fn()


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent).

        Cancelling an event that has already *fired* is a documented
        no-op: the callback ran, and the handle's ``fired`` property
        stays True (``cancelled`` stays False) so callers can observe
        which race they lost.
        """
        ev = self._event
        if ev.fired or ev.cancelled:
            return
        ev.cancelled = True
        self._sim._live -= 1

    @property
    def time(self) -> int:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        return self._event.fired


class Simulator:
    """Priority-queue discrete-event simulator with an integer clock.

    The clock unit is one processor cycle (33 MHz in the default
    Alewife configuration, i.e. ~30.3 ns per cycle).
    """

    __slots__ = (
        "_buckets", "_times", "_live", "_daemons",
        "now", "_running", "events_processed",
    )

    def __init__(self) -> None:
        #: cycle -> FIFO of items due that cycle (append order == fire order)
        self._buckets: dict[int, deque] = {}
        #: min-heap of the distinct cycles present in ``_buckets``
        self._times: list[int] = []
        self._live = 0  # not-cancelled, not-yet-fired events (O(1) pending)
        self._daemons = 0  # live daemon (observer) events; never keep a run alive
        self.now: int = 0
        self._running = False
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _when(self, delay) -> int:
        if type(delay) is int:  # common case: integer cycles, no ceil math
            if delay < 0:
                raise SimulationError(f"negative delay {delay!r}")
            return self.now + delay
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        # ceil for fractional delays (bandwidth division can produce
        # fractions; the hardware rounds to whole cycles)
        return self.now + int(-(-delay // 1))

    def schedule(self, delay, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; fractional delays are rounded
        up. Returns a handle that can cancel the event. Hot paths that
        never cancel should prefer :meth:`call_after`.
        """
        when = self._when(delay)
        ev = _Event(when, fn)
        self._live += 1
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = bucket = deque()
            heapq.heappush(self._times, when)
        bucket.append(ev)
        return EventHandle(ev, self)

    def call_after(self, delay, fn: Callable[[], None]) -> None:
        """Handle-free fast-path scheduling for hot loops.

        Fires ``fn`` exactly as :meth:`schedule` would (same global
        FIFO ordering for same-cycle events) but allocates no event
        record and no handle — one dict probe and a deque append, with
        a heap push only when ``now + delay`` is a brand-new cycle.
        """
        if type(delay) is int:  # inline the _when fast path: this is
            if delay < 0:      # the hottest scheduling call in the model
                raise SimulationError(f"negative delay {delay!r}")
            when = self.now + delay
        else:
            when = self._when(delay)
        self._live += 1
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = bucket = deque()
            heapq.heappush(self._times, when)
        bucket.append(fn)

    def call_daemon(self, delay, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` as a *daemon* (observer) event.

        Daemon events fire like :meth:`call_after` events while model
        work remains, but they never keep the simulation alive:
        :meth:`run` returns — without firing them — once only daemon
        events are left in the queue, so a self-rescheduling sampler
        cannot spin the run forever or push ``now`` past the last
        model event. Daemon callbacks must not mutate model state.
        """
        when = self._when(delay)
        self._live += 1
        self._daemons += 1
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = bucket = deque()
            heapq.heappush(self._times, when)
        bucket.append(_Daemon(self, fn))

    def schedule_at(self, when: int, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` at absolute cycle ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self.now}"
            )
        return self.schedule(when - self.now, fn)

    def call_at(self, when: int, fn: Callable[[], None]) -> None:
        """Handle-free :meth:`schedule_at` (see :meth:`call_after`)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self.now}"
            )
        if when.__class__ is not int:
            when = self.now + int(-(-(when - self.now) // 1))
        self._live += 1
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = bucket = deque()
            heapq.heappush(self._times, when)
        bucket.append(fn)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_next(self):
        """Pop the globally next live ``(when, item)``, or None.
        Skips cancelled events; retires drained time buckets."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            while bucket:
                item = bucket.popleft()
                if item.__class__ is _Event and item.cancelled:
                    continue
                return t, item
            # bucket drained with nothing live at t: retire it. A
            # same-cycle reschedule can only happen *while* an event at
            # t is running, so nothing can repopulate t after this.
            heapq.heappop(times)
            del buckets[t]
        return None

    def _next_time(self):
        """Time of the next live event without popping it, or None."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            while bucket and bucket[0].__class__ is _Event and bucket[0].cancelled:
                bucket.popleft()
            if bucket:
                return t
            heapq.heappop(times)
            del buckets[t]
        return None

    def step(self) -> bool:
        """Run a single event. Returns False when the queue is empty."""
        nxt = self._pop_next()
        if nxt is None:
            return False
        when, item = nxt
        if when < self.now:
            raise SimulationError("event queue time went backwards")
        self.now = when
        self._live -= 1
        self.events_processed += 1
        if item.__class__ is _Event:
            item.fired = True
            item.fn()
        else:
            item()
        return True

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the clock would pass this cycle (events at exactly
            ``until`` still run).
        max_events:
            Safety valve against runaway simulations.
        stop_when:
            Checked after every event; when it returns True the run
            stops early.

        Returns the simulated time at exit.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        stopped_early = False
        try:
            if until is None and max_events is None and stop_when is None:
                if self._daemons:
                    # stop once only daemon (observer) events remain;
                    # they never extend the run on their own
                    while self._live > self._daemons and self.step():
                        pass
                else:
                    # Unconditioned drain: the tight loop the
                    # experiments use. Pop/dispatch inlined (no
                    # step()/_pop_next() call per event), buckets and
                    # heappop bound to locals, events_processed and
                    # _live accumulated locally and flushed in
                    # ``finally`` (nothing can observe them mid-run
                    # without daemons). Within a bucket, callbacks may
                    # append to the deque being drained (same-cycle
                    # chains), and the inner ``while bucket`` picks
                    # those up in FIFO order. The bucket invariant gives
                    # non-decreasing times, so the backwards-clock
                    # check lives only in the conditioned paths.
                    # The drain allocates heavily (closures, packets,
                    # events) but nearly everything dies young and is
                    # freed by refcounting; cyclic-GC passes mid-drain
                    # are pure overhead. Pause collection for the
                    # drain, restoring the caller's setting after.
                    gc_was_enabled = gc.isenabled()
                    if gc_was_enabled:
                        gc.disable()
                    times = self._times
                    buckets = self._buckets
                    heappop = heapq.heappop
                    n = 0
                    try:
                        while times:
                            t = times[0]
                            bucket = buckets[t]
                            while bucket:
                                item = bucket.popleft()
                                if item.__class__ is _Event:
                                    # cancelled events never advance now
                                    if item.cancelled:
                                        continue
                                    self.now = t
                                    n += 1
                                    item.fired = True
                                    item.fn()
                                else:
                                    self.now = t
                                    n += 1
                                    item()
                            heappop(times)
                            del buckets[t]
                    finally:
                        self._live -= n
                        self.events_processed += n
                        if gc_was_enabled:
                            gc.enable()
            else:
                while True:
                    if self._live <= self._daemons:
                        break
                    nxt = self._next_time()
                    if nxt is None:
                        break
                    if until is not None and nxt > until:
                        break
                    if not self.step():
                        break
                    processed += 1
                    if stop_when is not None and stop_when():
                        stopped_early = True
                        break
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} (runaway simulation?)"
                        )
        finally:
            self._running = False
        if until is not None and not stopped_early:
            self.now = max(self.now, until)
        return self.now

    def run_window(self, until: int) -> int:
        """Drain every event with ``time <= until`` and return.

        The bounded-lag primitive for partitioned runs (see
        :mod:`repro.perf.partition`): same inlined dispatch as the
        unconditioned drain in :meth:`run`, stopping at the window
        edge. Unlike ``run(until=...)`` the clock is *not* bumped to
        ``until`` — it stays at the last fired event, so the global
        maximum over shards equals the serial engine's final ``now``.
        Daemon events inside the window fire (the window bound already
        caps how far they can self-reschedule); callers who need
        serial daemon semantics must not partition observed runs.
        Cyclic GC is left alone — the partition worker disables it
        once around the whole session instead of toggling per window.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        n = 0
        try:
            while times and times[0] <= until:
                t = times[0]
                bucket = buckets[t]
                while bucket:
                    item = bucket.popleft()
                    if item.__class__ is _Event:
                        if item.cancelled:
                            continue
                        self.now = t
                        n += 1
                        item.fired = True
                        item.fn()
                    else:
                        self.now = t
                        n += 1
                        item()
                heappop(times)
                del buckets[t]
        finally:
            self._live -= n
            self.events_processed += n
            self._running = False
        return self.now

    def next_model_time(self):
        """Time of the next live *model* event, or None when the queue
        holds nothing but daemon (observer) events — which must not
        keep a partitioned run alive, exactly as they cannot keep
        :meth:`run` alive. (The returned time may itself belong to a
        daemon event when model work remains elsewhere; that is a
        conservative — never late — window start.)"""
        if self._live <= self._daemons:
            return None
        return self._next_time()

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self.pending}>"


class Resource:
    """A serially-reusable resource (memory port, DMA engine, link).

    Models occupancy: each acquisition holds the resource for a given
    number of cycles; requests that arrive while it is busy queue up
    FIFO. ``acquire`` returns the cycle at which the requested usage
    *completes* and immediately reserves the slot.
    """

    __slots__ = ("sim", "busy_until", "name", "total_busy")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.busy_until: int = 0
        self.name = name
        self.total_busy: int = 0  # cycles of occupancy, for utilization stats

    def acquire(self, occupancy: int, earliest: int | None = None) -> int:
        """Reserve the resource for ``occupancy`` cycles.

        ``earliest`` is the first cycle the work could start (defaults
        to now; values in the past clamp to now — a resource cannot
        retroactively have been busy). Returns the completion cycle.
        """
        if occupancy < 0:
            raise SimulationError(f"negative occupancy {occupancy!r}")
        start = self.busy_until
        now = self.sim.now
        if start < now:
            start = now
        if earliest is not None and start < earliest:
            start = earliest
        self.busy_until = start + occupancy
        self.total_busy += occupancy
        return self.busy_until

    def available_at(self) -> int:
        """Cycle at which the resource next becomes free."""
        return max(self.busy_until, self.sim.now)
