"""Discrete-event simulation engine.

The engine is the beating heart of the Alewife model: every
architectural component (network links, directory controllers, DMA
engines, processors) schedules callbacks on a single global event
queue keyed by the simulated cycle count.

Events scheduled for the same cycle fire in FIFO order of scheduling,
which keeps runs fully deterministic.

Hot-path design
---------------
Millions of events per run make the per-event constant factor the
simulator's wall-clock bottleneck, so the queue is built from two
lanes that together fire in exact ``(time, seq)`` order:

* a binary heap whose entries are plain ``(time, seq, item)`` tuples
  (tuple comparison short-circuits on the leading ints — no per-event
  ``__lt__`` method dispatch), and
* a FIFO "due lane" (deque) taking any event whose time is >= the
  lane's current tail. Delays in the model are overwhelmingly issued
  in non-decreasing time order, so most events enter and leave the
  queue in O(1) without touching the heap at all.

``item`` is either a bare callable (the handle-free
:meth:`Simulator.call_after` fast path — nothing to allocate, nothing
to cancel) or a ``_Event`` record when the caller needs an
:class:`EventHandle`. Both lanes share one sequence counter, so the
merge order is identical to a single heap: host speed changes,
simulated timing does not.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable


class SimulationError(RuntimeError):
    """Raised for fatal inconsistencies inside the simulator."""


class _Event:
    """Cancellable queue entry (only allocated when a handle is taken)."""

    __slots__ = ("time", "fn", "cancelled", "fired")

    def __init__(self, time: int, fn: Callable[[], None]) -> None:
        self.time = time
        self.fn = fn
        self.cancelled = False
        self.fired = False


class _Daemon:
    """Queue entry for a daemon (observer) event.

    Callable so :meth:`Simulator.step` runs it through the same bare
    ``item()`` path as handle-free events; the only extra work is
    keeping the simulator's daemon count current.
    """

    __slots__ = ("_sim", "fn")

    def __init__(self, sim: "Simulator", fn: Callable[[], None]) -> None:
        self._sim = sim
        self.fn = fn

    def __call__(self) -> None:
        self._sim._daemons -= 1
        self.fn()


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent).

        Cancelling an event that has already *fired* is a documented
        no-op: the callback ran, and the handle's ``fired`` property
        stays True (``cancelled`` stays False) so callers can observe
        which race they lost.
        """
        ev = self._event
        if ev.fired or ev.cancelled:
            return
        ev.cancelled = True
        self._sim._live -= 1

    @property
    def time(self) -> int:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        return self._event.fired


class Simulator:
    """Priority-queue discrete-event simulator with an integer clock.

    The clock unit is one processor cycle (33 MHz in the default
    Alewife configuration, i.e. ~30.3 ns per cycle).
    """

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, object]] = []
        self._due: deque[tuple[int, int, object]] = deque()
        self._seq = 0
        self._live = 0  # not-cancelled, not-yet-fired events (O(1) pending)
        self._daemons = 0  # live daemon (observer) events; never keep a run alive
        self.now: int = 0
        self._running = False
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _when(self, delay) -> int:
        if type(delay) is int:  # common case: integer cycles, no ceil math
            if delay < 0:
                raise SimulationError(f"negative delay {delay!r}")
            return self.now + delay
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        # ceil for fractional delays (bandwidth division can produce
        # fractions; the hardware rounds to whole cycles)
        return self.now + int(-(-delay // 1))

    def schedule(self, delay, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; fractional delays are rounded
        up. Returns a handle that can cancel the event. Hot paths that
        never cancel should prefer :meth:`call_after`.
        """
        when = self._when(delay)
        ev = _Event(when, fn)
        entry = (when, self._seq, ev)
        self._seq += 1
        self._live += 1
        due = self._due
        if not due or when >= due[-1][0]:
            due.append(entry)
        else:
            heapq.heappush(self._queue, entry)
        return EventHandle(ev, self)

    def call_after(self, delay, fn: Callable[[], None]) -> None:
        """Handle-free fast-path scheduling for hot loops.

        Fires ``fn`` exactly as :meth:`schedule` would (same global
        FIFO ordering for same-cycle events) but allocates no event
        record and no handle, and — for the overwhelmingly common case
        of non-decreasing issue times — bypasses the heap entirely via
        the O(1) due lane.
        """
        when = self._when(delay)
        entry = (when, self._seq, fn)
        self._seq += 1
        self._live += 1
        due = self._due
        if not due or when >= due[-1][0]:
            due.append(entry)
        else:
            heapq.heappush(self._queue, entry)

    def call_daemon(self, delay, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` as a *daemon* (observer) event.

        Daemon events fire like :meth:`call_after` events while model
        work remains, but they never keep the simulation alive:
        :meth:`run` returns — without firing them — once only daemon
        events are left in the queue, so a self-rescheduling sampler
        cannot spin the run forever or push ``now`` past the last
        model event. Daemon callbacks must not mutate model state.
        """
        when = self._when(delay)
        entry = (when, self._seq, _Daemon(self, fn))
        self._seq += 1
        self._live += 1
        self._daemons += 1
        due = self._due
        if not due or when >= due[-1][0]:
            due.append(entry)
        else:
            heapq.heappush(self._queue, entry)

    def schedule_at(self, when: int, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` at absolute cycle ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self.now}"
            )
        return self.schedule(when - self.now, fn)

    def call_at(self, when: int, fn: Callable[[], None]) -> None:
        """Handle-free :meth:`schedule_at` (see :meth:`call_after`)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self.now}"
            )
        self.call_after(when - self.now, fn)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_next(self):
        """Pop the globally next live entry, or None. Skips cancelled."""
        due = self._due
        queue = self._queue
        while True:
            if due:
                # seqs are unique, so tuple comparison never reaches
                # the (uncomparable) third element
                if queue and queue[0] < due[0]:
                    entry = heapq.heappop(queue)
                else:
                    entry = due.popleft()
            elif queue:
                entry = heapq.heappop(queue)
            else:
                return None
            item = entry[2]
            if item.__class__ is _Event and item.cancelled:
                continue
            return entry

    def _next_time(self):
        """Time of the next live event without popping it, or None."""
        due = self._due
        queue = self._queue
        while due and due[0][2].__class__ is _Event and due[0][2].cancelled:
            due.popleft()
        while queue and queue[0][2].__class__ is _Event and queue[0][2].cancelled:
            heapq.heappop(queue)
        if due:
            if queue and queue[0][0] < due[0][0]:
                return queue[0][0]
            return due[0][0]
        if queue:
            return queue[0][0]
        return None

    def step(self) -> bool:
        """Run a single event. Returns False when the queue is empty."""
        entry = self._pop_next()
        if entry is None:
            return False
        when = entry[0]
        if when < self.now:
            raise SimulationError("event queue time went backwards")
        item = entry[2]
        self.now = when
        self._live -= 1
        self.events_processed += 1
        if item.__class__ is _Event:
            item.fired = True
            item.fn()
        else:
            item()
        return True

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the clock would pass this cycle (events at exactly
            ``until`` still run).
        max_events:
            Safety valve against runaway simulations.
        stop_when:
            Checked after every event; when it returns True the run
            stops early.

        Returns the simulated time at exit.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        stopped_early = False
        try:
            if until is None and max_events is None and stop_when is None:
                if self._daemons:
                    # stop once only daemon (observer) events remain;
                    # they never extend the run on their own
                    while self._live > self._daemons and self.step():
                        pass
                else:
                    # unconditioned drain: the tight loop the experiments use
                    while self.step():
                        pass
            else:
                while True:
                    if self._live <= self._daemons:
                        break
                    nxt = self._next_time()
                    if nxt is None:
                        break
                    if until is not None and nxt > until:
                        break
                    if not self.step():
                        break
                    processed += 1
                    if stop_when is not None and stop_when():
                        stopped_early = True
                        break
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} (runaway simulation?)"
                        )
        finally:
            self._running = False
        if until is not None and not stopped_early:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self.pending}>"


class Resource:
    """A serially-reusable resource (memory port, DMA engine, link).

    Models occupancy: each acquisition holds the resource for a given
    number of cycles; requests that arrive while it is busy queue up
    FIFO. ``acquire`` returns the cycle at which the requested usage
    *completes* and immediately reserves the slot.
    """

    __slots__ = ("sim", "busy_until", "name", "total_busy")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.busy_until: int = 0
        self.name = name
        self.total_busy: int = 0  # cycles of occupancy, for utilization stats

    def acquire(self, occupancy: int, earliest: int | None = None) -> int:
        """Reserve the resource for ``occupancy`` cycles.

        ``earliest`` is the first cycle the work could start (defaults
        to now; values in the past clamp to now — a resource cannot
        retroactively have been busy). Returns the completion cycle.
        """
        if occupancy < 0:
            raise SimulationError(f"negative occupancy {occupancy!r}")
        start = max(
            self.busy_until,
            self.sim.now,
            self.sim.now if earliest is None else earliest,
        )
        self.busy_until = start + occupancy
        self.total_busy += occupancy
        return self.busy_until

    def available_at(self) -> int:
        """Cycle at which the resource next becomes free."""
        return max(self.busy_until, self.sim.now)
