"""Process-wide observation session.

Ties the four pillars together behind one switch: open a session
(:func:`session`), and every machine built through
``experiments.common.make_machine`` while it is active gets the
configured observers attached at construction time — no experiment
needs observability plumbing of its own. When an experiment fans its
sweep points out over worker processes, each worker opens its own
session (:func:`_obs_run_point`), ships the collected observation
data back as plain picklable dicts, and the parent merges them in
input order, so observed parallel runs stay deterministic.

    cfg = ObsConfig(sample_interval=1000, trace=True)
    with session(cfg) as s:
        run_experiment(...)
    data = s.data()   # records + merged metrics + cycle attribution
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.obs.metrics import MetricsSnapshot, collect_machine
from repro.obs.profiler import CycleProfiler, merge_attribution
from repro.obs.sampler import TimeSampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.check import CheckReport
    from repro.machine.machine import Machine
    from repro.perf.sweep import SweepPoint


@dataclass(frozen=True)
class ObsConfig:
    """What to attach to each machine. Frozen + plain data so it
    pickles into sweep workers unchanged."""

    #: cycles between time-series samples; 0 disables the sampler
    sample_interval: int = 0
    #: record a trace (kinds below) for Perfetto export
    trace: bool = False
    #: trace kinds to capture; the default set is what the exporter
    #: renders as tracks ("effect"/"txn" traces are huge — opt in)
    trace_kinds: tuple[str, ...] = ("packet", "handler", "context")
    #: collect a MetricsSnapshot per machine
    metrics: bool = True
    #: attach the cycle-attribution profiler
    profile: bool = True
    #: dynamic checkers to attach ("race", "coherence", "deadlock");
    #: empty tuple disables checking entirely
    check: tuple[str, ...] = ()
    max_trace_events: int = 200_000
    max_samples: int = 100_000
    max_findings: int = 1000

    @property
    def enabled(self) -> bool:
        return bool(
            self.sample_interval
            or self.trace
            or self.metrics
            or self.profile
            or self.check
        )


class ObsSession:
    """Accumulates observations from every machine built while active.

    Live observers stay attached until :meth:`data` (or the machine is
    garbage-collected); collected results are plain data — a list of
    per-machine records plus a merged metrics snapshot and merged
    cycle attribution.
    """

    def __init__(self, cfg: ObsConfig) -> None:
        self.cfg = cfg
        self._observed: list[tuple[Any, ...]] = []
        self.records: list[dict] = []
        self.metrics: MetricsSnapshot | None = None
        self.attribution: dict | None = None
        self.check: "CheckReport | None" = None
        self.cache_stats: dict[str, int] | None = None
        self._cache_rows_added = False

    def note_cache(self, stats: dict[str, int]) -> None:
        """Fold one sweep's run-cache counter movement (hits, misses,
        invalidations, ...) into the session (called by SweepRunner)."""
        if self.cache_stats is None:
            self.cache_stats = dict(stats)
            return
        for key, value in stats.items():
            self.cache_stats[key] = self.cache_stats.get(key, 0) + value

    # ------------------------------------------------------------------
    def observe(self, machine: "Machine", label: str = "") -> None:
        """Attach the configured observers to a freshly-built machine."""
        cfg = self.cfg
        if not cfg.enabled:
            return
        profiler = CycleProfiler(machine) if cfg.profile else None
        sampler = (
            TimeSampler(machine, cfg.sample_interval, cfg.max_samples)
            if cfg.sample_interval
            else None
        )
        tracer = None
        if cfg.trace:
            from repro.trace.tracer import Tracer

            tracer = Tracer(
                machine, kinds=cfg.trace_kinds, max_events=cfg.max_trace_events
            )
        checkers = None
        if cfg.check:
            from repro.check import CheckerSet

            # attach last (detach first): the checkers wrap some of the
            # same processor methods the tracer/profiler wrap
            on_finding = None
            if tracer is not None:
                def on_finding(f, tracer=tracer):
                    tracer.record(f.node, "check", f.kind, f.message)
            checkers = CheckerSet(
                machine,
                checks=cfg.check,
                max_findings=cfg.max_findings,
                on_finding=on_finding,
            )
        if label == "":
            label = f"m{len(self._observed) + len(self.records)}"
        self._observed.append((machine, label, tracer, profiler, sampler, checkers))

    def _finalize(self, rec: tuple[Any, ...]) -> None:
        machine, label, tracer, profiler, sampler, checkers = rec
        out: dict[str, Any] = {
            "label": label,
            "n_nodes": machine.n_nodes,
            "cycles": machine.sim.now,
        }
        if checkers is not None:
            report = checkers.finalize()  # detaches before the tracer
            out["check"] = report.as_dict()
            if self.check is None:
                from repro.check import CheckReport

                self.check = CheckReport(max_findings=self.cfg.max_findings)
            self.check.merge(report)
        if tracer is not None:
            out["trace"] = [
                (e.time, e.node, e.kind, e.what, e.detail) for e in tracer.events
            ]
            out["trace_dropped"] = tracer.dropped
            tracer.detach()
        if sampler is not None:
            out["samples"] = sampler.as_dict()
            sampler.detach()
        if profiler is not None:
            prof = profiler.as_dict()
            out["profile"] = prof
            profiler.detach()
            if self.attribution is None:
                # deep-ish copy: merge_attribution mutates its target
                self.attribution = {
                    "machines": 0,
                    "total_cycles": 0,
                    "per_node": {},
                }
            merge_attribution(self.attribution, prof)
        if self.cfg.metrics:
            snap = collect_machine(
                machine, extra=sampler.histograms if sampler else ()
            )
            if self.metrics is None:
                self.metrics = snap
            else:
                self.metrics.merge(snap)
        self.records.append(out)

    # ------------------------------------------------------------------
    def absorb(self, data: dict) -> None:
        """Fold a worker's :meth:`data` payload into this session
        (called in input order by SweepRunner → deterministic)."""
        self.records.extend(data["records"])
        if data.get("metrics") is not None:
            snap = MetricsSnapshot.from_dict(data["metrics"])
            if self.metrics is None:
                self.metrics = snap
            else:
                self.metrics.merge(snap)
        if data.get("cycle_attribution") is not None:
            if self.attribution is None:
                self.attribution = {
                    "machines": 0,
                    "total_cycles": 0,
                    "per_node": {},
                }
            merge_attribution(self.attribution, data["cycle_attribution"])
        if data.get("check") is not None:
            from repro.check import CheckReport

            report = CheckReport.from_dict(data["check"])
            if self.check is None:
                self.check = CheckReport(max_findings=self.cfg.max_findings)
            self.check.merge(report)
        if data.get("cache") is not None:
            self.note_cache(data["cache"])

    def data(self) -> dict:
        """Finalize any still-live observers and return everything as
        plain (picklable, JSON-able) data. Idempotent."""
        pending, self._observed = self._observed, []
        for rec in pending:
            self._finalize(rec)
        if (
            self.cache_stats is not None
            and self.metrics is not None
            and not self._cache_rows_added
        ):
            # surface run-cache counters in the metrics snapshot, so
            # run.json carries them alongside the component metrics
            self._cache_rows_added = True
            self.metrics.rows.extend(
                {"name": f"sweep.cache.{key}", "kind": "counter",
                 "labels": {}, "value": value}
                for key, value in sorted(self.cache_stats.items())
            )
        if self.check is not None and self.metrics is not None:
            # surface per-checker finding counts as metrics rows so
            # run.json and /metrics carry them, not just the findings
            # list. Replace, don't append: worker payloads already
            # carry their own check.findings rows (their data() added
            # them), and the merged CheckReport is the authority —
            # summing both would double-count every worker finding.
            self.metrics.rows = [
                r for r in self.metrics.rows if r["name"] != "check.findings"
            ]
            self.metrics.rows.extend(
                {"name": "check.findings", "kind": "counter",
                 "labels": {"checker": checker}, "value": count}
                for checker, count in sorted(self.check.counts.items())
            )
        return {
            "records": self.records,
            "metrics": self.metrics.as_dict() if self.metrics else None,
            "cycle_attribution": self.attribution,
            "check": self.check.as_dict() if self.check else None,
            "cache": dict(self.cache_stats) if self.cache_stats else None,
        }


# ----------------------------------------------------------------------
# The active session. Thread-local so concurrent repro.serve job
# workers can each run an observed experiment on their own thread —
# every machine built by a thread attaches to that thread's session,
# never to a neighbouring job's.
# ----------------------------------------------------------------------
_TLS = threading.local()


def current() -> ObsSession | None:
    """The active session, if any (checked by ``make_machine``)."""
    return getattr(_TLS, "session", None)


@contextmanager
def session(cfg: ObsConfig) -> Iterator[ObsSession]:
    """Open an observation session on the calling thread for the
    duration of the block."""
    prev = getattr(_TLS, "session", None)
    s = ObsSession(cfg)
    _TLS.session = s
    try:
        yield s
    finally:
        _TLS.session = prev


def _obs_run_point(arg: tuple[ObsConfig, "SweepPoint"]) -> tuple[Any, dict]:
    """Worker-side sweep entry: run one point under a fresh session
    (regardless of any session object inherited across ``fork``) and
    return (result, observation data) for the parent to absorb."""
    from repro.perf.sweep import run_point

    cfg, point = arg
    with session(cfg) as s:
        result = run_point(point)
        return result, s.data()
