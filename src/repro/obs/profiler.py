"""Cycle-attribution profiler: where did every simulated cycle go?

The paper's argument is a mechanism-cost story — per-transaction
coherence overhead vs per-message fixed cost vs DMA streaming. This
profiler *measures* it: every simulated cycle of every node is
attributed to exactly one bucket, so per node the buckets sum to the
total simulated cycles (a property the tests and the ``run.json``
validator both enforce).

Mechanism: a per-node state machine driven from the processor's
dict-dispatch hot path. The profiler wraps three methods of each
node's processor via :class:`~repro.trace.patch.PatchSet` — exactly
like the tracer, so an unprofiled machine runs the pristine code:

* ``_execute`` — effect dispatch: each effect moves the node into the
  bucket for that effect class (``Load``/``Store``/``FetchOp`` resolve
  to ``cache_hit`` or ``miss_stall`` from the post-dispatch
  ``ctx.miss_pending`` flag; effects inside a message handler charge
  the ``handler`` bucket).
* ``_enter_handler`` — interrupt entry: moves into ``handler``.
* ``_dispatch`` — when the dispatcher finds nothing to run, moves into
  ``idle``.

On every transition the interval since the previous transition is
charged to the outgoing bucket (and, in parallel, to the outgoing
effect class), so coverage is exact by construction: overlapped work
(a handler borrowing the pipeline during a remote-miss stall, a
Sparcle context switch running other work during a miss) charges the
cycles to whatever the pipeline was *actually doing*, which is the
latency-tolerance story Figs. 9-11 tell.

Buckets:

========== =====================================================
compute     ``Compute`` effects (application work)
cache_hit   loads/stores/atomics satisfied locally (incl. the
            store buffer and prefetch issue slots)
miss_stall  cycles the pipeline sat in a remote/local cache miss
handler     message-handler execution + interrupt entry/exit
msg_send    describe/launch cycles of the ``Send`` effect
dma         ``Storeback`` (destination DMA scatter) cycles
runtime     fences, interrupt masking, yields, suspends
idle        nothing to run
========== =====================================================

Network link and DMA-engine *occupancy* are deliberately not buckets
(they overlap processor time on other nodes); they are reported
separately by the metrics registry (``net.link_busy_cycles``,
``cmmu.dma_busy_cycles``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.proc import effects as fx
from repro.trace.patch import PatchSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

#: every bucket a cycle can land in, in report order
BUCKETS = (
    "compute",
    "cache_hit",
    "miss_stall",
    "handler",
    "msg_send",
    "dma",
    "runtime",
    "idle",
)

#: effect class -> bucket; None means "resolve hit/miss after dispatch"
_EFFECT_BUCKET = {
    fx.Compute: "compute",
    fx.Load: None,
    fx.Store: None,
    fx.LoadAcquire: None,
    fx.StoreRelease: None,
    fx.FetchOp: None,
    fx.Prefetch: "cache_hit",
    fx.Send: "msg_send",
    fx.Storeback: "dma",
    fx.Fence: "runtime",
    fx.SetIMask: "runtime",
    fx.Suspend: "runtime",
    fx.Yield: "runtime",
}


class _NodeAccount:
    """Charge-on-transition accountant for one node's pipeline."""

    __slots__ = ("sim", "buckets", "by_effect", "state", "effect", "last")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.buckets = dict.fromkeys(BUCKETS, 0)
        self.by_effect: dict[str, int] = {}
        self.state = "idle"
        self.effect = ""
        self.last = sim.now

    def transition(self, bucket: str, effect: str = "") -> None:
        now = self.sim.now
        elapsed = now - self.last
        if elapsed:
            self.buckets[self.state] += elapsed
            if self.effect:
                self.by_effect[self.effect] = (
                    self.by_effect.get(self.effect, 0) + elapsed
                )
            self.last = now
        self.state = bucket
        self.effect = effect

    def settle(self) -> None:
        """Charge the open interval through ``sim.now`` (idempotent)."""
        self.transition(self.state, self.effect)


class CycleProfiler:
    """Attributes every simulated cycle of a machine to a bucket.

    Attach at machine construction time (before any cycles elapse) so
    the per-node invariant ``sum(buckets) == sim.now`` holds exactly::

        prof = CycleProfiler(machine)
        ... run ...
        print(prof.format_table())

    Detachable and re-entrant like the tracer; ``with`` detaches.
    """

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.accounts = [_NodeAccount(machine.sim) for _ in machine.nodes]
        self._patches = PatchSet()
        self.attach()

    @property
    def attached(self) -> bool:
        return self._patches.active

    def attach(self) -> None:
        if self.attached:
            raise RuntimeError("profiler is already attached")
        for node_obj in self.machine.nodes:
            proc = node_obj.processor
            acct = self.accounts[node_obj.node_id]

            def make_execute(orig, acct=acct):
                def profiled_execute(ctx, eff):
                    orig(ctx, eff)
                    if ctx.is_handler:
                        acct.transition("handler", type(eff).__name__)
                        return
                    bucket = _EFFECT_BUCKET.get(eff.__class__)
                    if bucket is None:
                        bucket = "miss_stall" if ctx.miss_pending else "cache_hit"
                    acct.transition(bucket, type(eff).__name__)

                return profiled_execute

            def make_enter_handler(orig, acct=acct):
                def profiled_enter():
                    acct.transition("handler", "interrupt_entry")
                    return orig()

                return profiled_enter

            def make_dispatch(orig, proc=proc, acct=acct):
                def profiled_dispatch():
                    orig()
                    if proc.current is None and not proc.in_handler:
                        acct.transition("idle")

                return profiled_dispatch

            self._patches.patch(proc, "_execute", make_execute)
            self._patches.patch(proc, "_enter_handler", make_enter_handler)
            self._patches.patch(proc, "_dispatch", make_dispatch)

    def detach(self) -> None:
        """Remove the wrappers and settle open intervals. Idempotent."""
        for acct in self.accounts:
            acct.settle()
        self._patches.restore()

    def __enter__(self) -> "CycleProfiler":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def per_node(self) -> dict[int, dict]:
        """``{node: {"total", "buckets", "by_effect"}}`` — buckets sum
        to the node's total simulated cycles."""
        out = {}
        for node, acct in enumerate(self.accounts):
            acct.settle()
            out[node] = {
                "total": sum(acct.buckets.values()),
                "buckets": dict(acct.buckets),
                "by_effect": dict(sorted(acct.by_effect.items())),
            }
        return out

    def totals(self) -> dict[str, int]:
        """Machine-wide cycles per bucket (summed over nodes)."""
        out = dict.fromkeys(BUCKETS, 0)
        for acct in self.accounts:
            acct.settle()
            for bucket, cycles in acct.buckets.items():
                out[bucket] += cycles
        return out

    def format_table(self) -> str:
        """The "where did the cycles go" table, one row per node."""
        from repro.analysis.tables import format_table

        rows = []
        for node, rec in self.per_node().items():
            row = {"node": node, "total": rec["total"]}
            total = rec["total"] or 1
            for bucket in BUCKETS:
                row[bucket] = f"{100.0 * rec['buckets'][bucket] / total:.1f}%"
            rows.append(row)
        return format_table(
            "cycle attribution (% of node cycles)",
            ["node", "total", *BUCKETS],
            rows,
        )

    def as_dict(self) -> dict:
        """Plain data for ``run.json`` (picklable, mergeable)."""
        per_node = self.per_node()
        return {
            "machines": 1,
            "per_node": {
                str(node): {
                    "total": rec["total"],
                    "buckets": rec["buckets"],
                    "by_effect": rec["by_effect"],
                }
                for node, rec in per_node.items()
            },
            "total_cycles": sum(rec["total"] for rec in per_node.values()),
        }


def merge_attribution(into: dict, other: dict) -> dict:
    """Merge two :meth:`CycleProfiler.as_dict` payloads (summing
    buckets per node id) — used when folding SweepRunner workers'
    observations together. Node ids align across machines of the same
    sweep; totals stay the sum of the merged buckets."""
    into["machines"] += other["machines"]
    into["total_cycles"] += other["total_cycles"]
    per_node = into["per_node"]
    for node, rec in other["per_node"].items():
        mine = per_node.get(node)
        if mine is None:
            per_node[node] = {
                "total": rec["total"],
                "buckets": dict(rec["buckets"]),
                "by_effect": dict(rec["by_effect"]),
            }
            continue
        mine["total"] += rec["total"]
        for bucket, cycles in rec["buckets"].items():
            mine["buckets"][bucket] = mine["buckets"].get(bucket, 0) + cycles
        for eff, cycles in rec["by_effect"].items():
            mine["by_effect"][eff] = mine["by_effect"].get(eff, 0) + cycles
    return into
