"""Periodic time-series sampler (simulator-scheduled).

Records machine state every ``interval`` simulated cycles so
phase behaviour — barrier convergence, traffic bursts, queue
build-up — is visible over time instead of being averaged away in
end-of-run counters.

The tick is a *daemon event* (:meth:`Simulator.call_daemon`): daemon
events fire while model work remains but never keep the run alive and
never advance ``sim.now`` past the last model event, so a sampled
machine reports exactly the same cycle counts as an unsampled one
(the observed-vs-unobserved guard in ``tests/test_cycle_identity.py``
pins this). Samples read existing counters only; the single wrapped
method (``network.send``, to track in-flight packets) records into a
local heap and calls straight through.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.obs.metrics import Histogram
from repro.trace.patch import PatchSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

#: sample columns, in row order
SAMPLE_FIELDS = (
    "time",
    "in_flight_packets",
    "packets_delta",
    "link_busy_frac",
    "cache_hit_rate",
    "sched_queue_depth",
)


class TimeSampler:
    """Samples a machine every ``interval`` cycles.

    ``samples`` is a list of dicts (one per tick, ``SAMPLE_FIELDS``
    keys). ``max_samples`` caps memory on very long runs; once full,
    further ticks stop rescheduling and ``dropped`` counts them.
    """

    def __init__(
        self, machine: "Machine", interval: int, max_samples: int = 100_000
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.machine = machine
        self.interval = interval
        self.max_samples = max_samples
        self.samples: list[dict] = []
        self.dropped = 0
        self._arrivals: list[int] = []  # min-heap of in-flight delivery times
        self._last = {"packets": 0, "link_busy": 0, "hits": 0, "misses": 0}
        self._patches = PatchSet()
        #: histograms fed per tick; adopted into the metrics snapshot
        self.histograms = (
            Histogram("sample.in_flight_packets",
                      (0, 1, 2, 4, 8, 16, 32, 64, 128), {"component": "sampler"}),
            Histogram("sample.link_busy_frac",
                      (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9), {"component": "sampler"}),
            Histogram("sample.sched_queue_depth",
                      (0, 1, 2, 4, 8, 16, 32), {"component": "sampler"}),
        )
        self.attach()

    @property
    def attached(self) -> bool:
        return self._patches.active

    def attach(self) -> None:
        if self.attached:
            raise RuntimeError("sampler is already attached")
        arrivals = self._arrivals

        def make_tracked_send(orig_send):
            def tracked_send(packet):
                arrival = orig_send(packet)
                heapq.heappush(arrivals, arrival)
                return arrival

            return tracked_send

        self._patches.patch(self.machine.network, "send", make_tracked_send)
        self.machine.sim.call_daemon(self.interval, self._tick)

    def detach(self) -> None:
        """Stop tracking sends; any still-queued tick becomes a no-op
        at fire time (it never fires after the run anyway). Idempotent."""
        self._patches.restore()

    def __enter__(self) -> "TimeSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self.attached:
            return
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return  # stop rescheduling: the series is full
        self.samples.append(self._sample())
        sim = self.machine.sim
        # reschedule only while model (non-daemon) events remain — the
        # engine enforces this too; the check keeps us safe even under
        # a caller that drives step() directly
        if sim._live > sim._daemons:
            sim.call_daemon(self.interval, self._tick)

    def _sample(self) -> dict:
        m = self.machine
        now = m.sim.now
        arrivals = self._arrivals
        while arrivals and arrivals[0] <= now:
            heapq.heappop(arrivals)
        in_flight = len(arrivals)

        net = m.network.stats
        last = self._last
        packets_delta = net.packets - last["packets"]
        link_busy = sum(r.total_busy for r in m.network._links.values())
        busy_delta = link_busy - last["link_busy"]
        n_links = max(1, len(m.network._links))
        link_busy_frac = min(1.0, busy_delta / (self.interval * n_links))

        hits = sum(n.cache.stats.hits for n in m.nodes)
        misses = sum(n.cache.stats.misses for n in m.nodes)
        dh, dm = hits - last["hits"], misses - last["misses"]
        hit_rate = dh / (dh + dm) if (dh + dm) else 1.0

        rt = m.runtime
        depth = (
            sum(s.queue_length() for s in rt.schedulers) if rt is not None else 0
        )

        self._last = {
            "packets": net.packets, "link_busy": link_busy,
            "hits": hits, "misses": misses,
        }
        h_inflight, h_busy, h_depth = self.histograms
        h_inflight.observe(in_flight)
        h_busy.observe(link_busy_frac)
        h_depth.observe(depth)
        return {
            "time": now,
            "in_flight_packets": in_flight,
            "packets_delta": packets_delta,
            "link_busy_frac": round(link_busy_frac, 4),
            "cache_hit_rate": round(hit_rate, 4),
            "sched_queue_depth": depth,
        }

    # ------------------------------------------------------------------
    def format_table(self, limit: int = 30) -> str:
        from repro.analysis.tables import format_table

        rows = self.samples[:limit]
        title = f"time series (every {self.interval} cycles"
        if len(self.samples) > limit:
            title += f", first {limit} of {len(self.samples)}"
        return format_table(title + ")", list(SAMPLE_FIELDS), rows)

    def as_dict(self) -> dict:
        return {
            "interval": self.interval,
            "fields": list(SAMPLE_FIELDS),
            "dropped": self.dropped,
            "samples": list(self.samples),
        }
