"""Prometheus text-exposition rendering of a MetricsSnapshot.

One renderer covers both observability surfaces: the service daemon's
``GET /metrics`` endpoint (orchestrator, store, and run-cache series)
and any saved ``run.json`` manifest (``python -m repro.obs.promexport
run.json`` renders the simulator's own metrics snapshot), so a
Prometheus scraper and the simulation's machine metrics speak the
same format.

Mapping (Prometheus exposition format version 0.0.4):

* metric names: dots become underscores, every other illegal
  character becomes ``_`` (``serve.queue_depth`` →
  ``serve_queue_depth``);
* labels: values escaped per the exposition spec (backslash, double
  quote, newline);
* counters/gauges: one sample per row, ``# TYPE`` emitted once per
  metric name;
* histograms: cumulative ``_bucket`` rows with an ``le`` label (the
  final bucket is ``le="+Inf"``), plus ``_sum`` and ``_count`` —
  exactly the shape ``histogram_quantile()`` expects.

Rendering is pure (snapshot in, text out): the HTTP layer decides
when to collect, this module only formats.
"""

from __future__ import annotations

import re
from typing import Any

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_DIGIT = re.compile(r"^[0-9]")


def metric_name(name: str) -> str:
    """A snapshot row name as a legal Prometheus metric name."""
    out = _NAME_ILLEGAL.sub("_", name.replace(".", "_"))
    if _LEADING_DIGIT.match(out):
        out = "_" + out
    return out


def escape_label_value(value: Any) -> str:
    """Escape one label value per the exposition format: backslash,
    double quote, and newline."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _labels(labels: dict[str, Any], extra: dict[str, Any] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{metric_name(str(k))}="{escape_label_value(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _bound_label(bound: float) -> str:
    """An ``le`` bound rendered the way Prometheus expects (integral
    bounds without a trailing .0)."""
    if isinstance(bound, (int, float)) and float(bound) == int(bound):
        return str(int(bound))
    return repr(bound)


def render_prometheus(snapshot: Any) -> str:
    """Render a :class:`~repro.obs.metrics.MetricsSnapshot` (or its
    ``as_dict()`` form) as Prometheus exposition text."""
    rows = snapshot["rows"] if isinstance(snapshot, dict) else snapshot.rows
    lines: list[str] = []
    typed: dict[str, str] = {}

    def declare(name: str, kind: str) -> None:
        seen = typed.get(name)
        if seen is None:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        elif seen != kind:
            raise ValueError(
                f"metric {name!r} rendered as both {seen} and {kind}"
            )

    for row in rows:
        name = metric_name(row["name"])
        kind = row["kind"]
        labels = row.get("labels") or {}
        value = row["value"]
        if kind in ("counter", "gauge"):
            declare(name, kind)
            lines.append(f"{name}{_labels(labels)} {_format_value(value)}")
        elif kind == "histogram":
            declare(name, "histogram")
            bounds = value["bounds"]
            counts = value["counts"]
            cumulative = 0
            for bound, count in zip(bounds, counts):
                cumulative += count
                lines.append(
                    f"{name}_bucket"
                    f"{_labels(labels, {'le': _bound_label(bound)})}"
                    f" {cumulative}"
                )
            cumulative += counts[len(bounds)] if len(counts) > len(bounds) else 0
            lines.append(
                f"{name}_bucket{_labels(labels, {'le': '+Inf'})} {cumulative}"
            )
            lines.append(
                f"{name}_sum{_labels(labels)} {_format_value(value['sum'])}"
            )
            lines.append(
                f"{name}_count{_labels(labels)} {value['count']}"
            )
        else:
            raise ValueError(f"unknown instrument kind {kind!r} for {name}")
    return "\n".join(lines) + ("\n" if lines else "")


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.promexport run.json`` — render the
    metrics snapshot inside a run manifest as exposition text."""
    import json
    import sys

    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(
            "usage: python -m repro.obs.promexport RUN_JSON",
            file=sys.stderr,
        )
        return 2
    with open(argv[0]) as fh:
        manifest = json.load(fh)
    metrics = manifest.get("metrics") if "metrics" in manifest else manifest
    if not metrics or "rows" not in metrics:
        print(f"{argv[0]}: no metrics snapshot found", file=sys.stderr)
        return 1
    sys.stdout.write(render_prometheus(metrics))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
