"""CI gate: ``python -m repro.obs.validate run.json [trace.json]``.

Exits non-zero (listing the problems) if the run manifest is missing
required keys, the cycle-attribution buckets do not sum to the node
totals, or the optional trace file's events lack the Chrome
trace-event schema keys (``ph``, ``ts``, ``pid``, ``tid``, ``name``).
"""

from __future__ import annotations

import json
import sys

from repro.obs.export import validate_run_manifest

TRACE_EVENT_REQUIRED = ("ph", "ts", "pid", "tid", "name")


def validate_trace_file(path: str) -> list[str]:
    with open(path) as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if events is None:
        return [f"{path}: no traceEvents array"]
    errors = []
    for i, ev in enumerate(events):
        missing = [k for k in TRACE_EVENT_REQUIRED if k not in ev]
        if missing:
            errors.append(f"{path}: event {i} missing {missing}: {ev}")
            if len(errors) >= 10:
                errors.append(f"{path}: ... (stopping after 10)")
                break
    if not events:
        errors.append(f"{path}: traceEvents is empty")
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate RUN_JSON [TRACE_JSON]",
              file=sys.stderr)
        return 2
    errors = []
    with open(argv[0]) as fh:
        manifest = json.load(fh)
    errors += [f"{argv[0]}: {e}" for e in validate_run_manifest(manifest)]
    for path in argv[1:]:
        errors += validate_trace_file(path)
    if errors:
        for e in errors:
            print(f"INVALID: {e}", file=sys.stderr)
        return 1
    print(f"OK: {', '.join(argv)} valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
