"""Machine-wide observability: metrics, profiling, sampling, export.

The four pillars (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — typed Counter/Gauge/Histogram instruments
  with per-node and per-component labels, collected into a
  :class:`~repro.obs.metrics.MetricsSnapshot` from the counters every
  component already keeps (zero hot-path cost).
* :mod:`repro.obs.profiler` — cycle-attribution profiler: every
  simulated cycle of every node lands in exactly one bucket (compute,
  cache-hit, remote-miss stall, handler, message send, DMA, runtime,
  idle), so the buckets sum to the node's total simulated cycles.
* :mod:`repro.obs.sampler` — periodic time-series sampler built on the
  engine's daemon events (in-flight packets, link busy fraction, cache
  hit rate, scheduler queue depth).
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON export
  and the machine-readable ``run.json`` manifest.

Everything is pay-for-what-you-use: an unobserved machine runs the
exact original code (the profiler and tracer wrap methods of one
machine's instances via :class:`~repro.trace.patch.PatchSet`), and
attaching observers never changes simulated cycle counts.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    collect_machine,
)
from repro.obs.profiler import BUCKETS, CycleProfiler
from repro.obs.sampler import TimeSampler
from repro.obs.session import ObsConfig, ObsSession, current, session

__all__ = [
    "BUCKETS",
    "Counter",
    "CycleProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsConfig",
    "ObsSession",
    "TimeSampler",
    "collect_machine",
    "current",
    "session",
]
