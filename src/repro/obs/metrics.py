"""Typed metrics instruments and the machine-wide registry.

Design: the simulator's components already keep cheap dataclass
counters on their hot paths (``CacheStats``, ``NetworkStats``, ...).
Instruments therefore *read* those counters lazily instead of being
incremented inline — registering a machine costs nothing during the
run, and an unobserved machine pays nothing at all. Each component
exposes ``register_metrics(registry, **labels)``; collection walks
the machine once and freezes every instrument into a
:class:`MetricsSnapshot` of plain data (picklable, mergeable across
:class:`~repro.perf.sweep.SweepRunner` workers).

Instrument types:

* :class:`Counter` — monotonically increasing count (merge: sum).
* :class:`Gauge` — point-in-time value (merge: count-weighted mean).
* :class:`Histogram` — bucketed distribution with explicit bounds,
  observed into directly (the sampler feeds these); merge: per-bucket
  sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine


def _label_key(labels: dict[str, Any]) -> tuple:
    return tuple(sorted(labels.items()))


@dataclass
class Counter:
    """A monotonically-increasing count, read lazily from its source."""

    name: str
    labels: dict[str, Any]
    read: Callable[[], int | float]
    kind = "counter"


@dataclass
class Gauge:
    """A point-in-time value (utilization, rate, occupancy)."""

    name: str
    labels: dict[str, Any]
    read: Callable[[], int | float]
    kind = "gauge"


class Histogram:
    """A bucketed distribution with explicit upper bounds.

    ``observe(v)`` is O(#bounds); the final bucket is +inf. Unlike
    Counter/Gauge this instrument holds its own state — it exists for
    observers (e.g. the time-series sampler) that see a stream of
    values rather than a component counter.
    """

    kind = "histogram"

    def __init__(self, name: str, bounds: tuple[float, ...], labels: dict[str, Any]):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        i = 0
        for bound in self.bounds:
            if value <= bound:
                break
            i += 1
        self.counts[i] += 1
        self.total += value
        self.count += 1

    def read(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Holds every instrument registered for one machine."""

    def __init__(self) -> None:
        self._instruments: list[Any] = []
        self._seen: set[tuple[str, tuple]] = set()

    def _add(self, inst: Any) -> Any:
        key = (inst.name, _label_key(inst.labels))
        if key in self._seen:
            raise ValueError(f"duplicate instrument {inst.name} {inst.labels}")
        self._seen.add(key)
        self._instruments.append(inst)
        return inst

    def counter(self, name: str, read: Callable[[], int | float], **labels: Any) -> Counter:
        return self._add(Counter(name, labels, read))

    def gauge(self, name: str, read: Callable[[], int | float], **labels: Any) -> Gauge:
        return self._add(Gauge(name, labels, read))

    def histogram(self, name: str, bounds: tuple[float, ...], **labels: Any) -> Histogram:
        return self._add(Histogram(name, bounds, labels))

    def attach(self, inst: Histogram) -> Histogram:
        """Adopt an externally-created instrument (e.g. the sampler's
        histograms) so it appears in the snapshot."""
        return self._add(inst)

    def __len__(self) -> int:
        return len(self._instruments)

    def collect(self) -> "MetricsSnapshot":
        """Freeze every instrument's current value into plain data."""
        rows = [
            {
                "name": inst.name,
                "kind": inst.kind,
                "labels": dict(inst.labels),
                "value": inst.read(),
            }
            for inst in self._instruments
        ]
        return MetricsSnapshot(rows)


@dataclass
class MetricsSnapshot:
    """Frozen metric values: plain data, queryable and mergeable."""

    rows: list[dict[str, Any]] = field(default_factory=list)
    #: how many snapshots were merged into this one (gauge weighting)
    merged_from: int = 1

    # -- queries -------------------------------------------------------
    def value(self, name: str, **labels: Any) -> Any:
        """The value of the single instrument matching name + labels."""
        matches = [
            r["value"]
            for r in self.rows
            if r["name"] == name and all(r["labels"].get(k) == v for k, v in labels.items())
        ]
        if not matches:
            raise KeyError(f"no metric {name!r} with labels {labels}")
        if len(matches) > 1:
            raise KeyError(f"metric {name!r} with labels {labels} is ambiguous "
                           f"({len(matches)} matches); add labels or use total()")
        return matches[0]

    def total(self, name: str, **labels: Any) -> float:
        """Sum of every counter/gauge matching name + label subset."""
        return sum(
            r["value"]
            for r in self.rows
            if r["name"] == name and all(r["labels"].get(k) == v for k, v in labels.items())
        )

    def names(self) -> list[str]:
        return sorted({r["name"] for r in self.rows})

    # -- merge ---------------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> None:
        """Fold ``other`` into self: counters and histogram buckets sum,
        gauges become a count-weighted mean over the merged snapshots."""
        index = {(r["name"], _label_key(r["labels"])): r for r in self.rows}
        for r in other.rows:
            key = (r["name"], _label_key(r["labels"]))
            mine = index.get(key)
            if mine is None:
                row = {k: (dict(v) if isinstance(v, dict) else v) for k, v in r.items()}
                self.rows.append(row)
                index[key] = row
                continue
            if r["kind"] != mine["kind"]:
                raise ValueError(f"metric {r['name']} kind mismatch on merge")
            if r["kind"] == "counter":
                mine["value"] += r["value"]
            elif r["kind"] == "gauge":
                w_mine, w_other = self.merged_from, other.merged_from
                mine["value"] = (
                    mine["value"] * w_mine + r["value"] * w_other
                ) / (w_mine + w_other)
            else:  # histogram
                if mine["value"]["bounds"] != r["value"]["bounds"]:
                    raise ValueError(f"histogram {r['name']} bounds mismatch on merge")
                mine["value"]["counts"] = [
                    a + b for a, b in zip(mine["value"]["counts"], r["value"]["counts"])
                ]
                mine["value"]["sum"] += r["value"]["sum"]
                mine["value"]["count"] += r["value"]["count"]
        self.merged_from += other.merged_from

    def as_dict(self) -> dict[str, Any]:
        return {"merged_from": self.merged_from, "rows": self.rows}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "MetricsSnapshot":
        return cls(rows=d["rows"], merged_from=d.get("merged_from", 1))


def collect_machine(
    machine: "Machine", extra: tuple = (), runtime: Any = None
) -> MetricsSnapshot:
    """Build a registry over every component of ``machine`` and freeze it.

    This is the single entry point `analysis/report.py` and the
    observation session both use. ``extra`` adopts already-populated
    instruments (sampler histograms); ``runtime`` defaults to the
    runtime the machine registered (if any) for scheduler metrics.
    """
    reg = MetricsRegistry()
    machine.network.register_metrics(reg)
    machine.coherence.register_metrics(reg)
    # On a partition shard (repro.perf.partition) only the owned node
    # range executed; skipping the cold replicas keeps per-node rows
    # disjoint across shards so the parent-side MetricsSnapshot.merge
    # sums counters to exactly the machine-wide totals.
    shard = getattr(machine, "shard", None)
    for node in machine.nodes:
        if shard is not None and not shard.owns(node.node_id):
            continue
        node.cache.register_metrics(reg, node=node.node_id)
        node.directory.register_metrics(reg, node=node.node_id)
        node.cmmu.register_metrics(reg, node=node.node_id)
        node.processor.register_metrics(reg, node=node.node_id)
    rt = runtime if runtime is not None else getattr(machine, "runtime", None)
    if rt is not None:
        for sched in rt.schedulers:
            if shard is not None and not shard.owns(sched.node):
                continue
            sched.register_metrics(reg, node=sched.node)
    reg.gauge("sim.cycles", lambda: machine.sim.now)
    reg.counter("sim.events_processed", lambda: machine.sim.events_processed)
    for inst in extra:
        reg.attach(inst)
    return reg.collect()
