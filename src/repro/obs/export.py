"""Exporters: Perfetto/Chrome trace JSON and the run.json manifest.

``export_perfetto`` turns recorded trace events into the Chrome
trace-event JSON format (the ``traceEvents`` array form), loadable at
https://ui.perfetto.dev or ``chrome://tracing``:

* one *process* per machine (pid = machine index, named by its label),
* one *thread track* per node (tid = node id),
* message-handler executions as duration spans (``ph: "B"/"E"``,
  paired per node from handler entry to handler return),
* thread-context lifetimes as async spans (``ph: "b"/"e"``, paired by
  context id, so overlapping contexts on one node stay readable),
* packets / coherence transactions / effects / faults as instants
  (``ph: "i"``).

Timestamps are simulated cycles written as microseconds — Perfetto's
"us" ruler then reads directly as cycles.

``write_run_manifest`` / ``validate_run_manifest`` define the
machine-readable ``run.json`` contract: the required keys in
:data:`RUN_MANIFEST_REQUIRED` plus the invariant that each node's
cycle-attribution buckets sum to its total cycles. CI runs
``python -m repro.obs.validate run.json`` to enforce it.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

#: keys every run.json must carry (CI-enforced)
RUN_MANIFEST_REQUIRED = (
    "schema",
    "experiment",
    "params",
    "timings",
    "metrics",
    "cycle_attribution",
)

RUN_MANIFEST_SCHEMA = "repro-run/1"

#: trace-event kinds rendered as instants (everything not a span)
_INSTANT_KINDS = {"packet", "txn", "effect", "fault", "check"}


def _as_tuples(events: Iterable[Any]) -> list[tuple]:
    """Normalize TraceEvent objects / (time,node,kind,what,detail)
    tuples / to_jsonl dicts into plain tuples."""
    out = []
    for ev in events:
        if isinstance(ev, (tuple, list)):
            out.append(tuple(ev))
        elif isinstance(ev, dict):
            out.append(
                (ev["time"], ev["node"], ev["kind"], ev["what"], ev.get("detail", ""))
            )
        else:
            out.append((ev.time, ev.node, ev.kind, ev.what, ev.detail))
    return out


def events_to_chrome(
    events: Iterable[Any], pid: int = 0, process_name: str = ""
) -> list[dict]:
    """Convert one machine's trace events into Chrome trace events.

    Every emitted event carries the schema-required ``ph``, ``ts``,
    ``pid``, ``tid``, and ``name`` keys.
    """
    evs = _as_tuples(events)
    out: list[dict] = []
    if process_name:
        out.append({
            "ph": "M", "ts": 0, "pid": pid, "tid": 0,
            "name": "process_name", "args": {"name": process_name},
        })
    nodes = sorted({e[1] for e in evs})
    for node in nodes:
        out.append({
            "ph": "M", "ts": 0, "pid": pid, "tid": node,
            "name": "thread_name", "args": {"name": f"node {node}"},
        })
    open_handler: dict[int, tuple[int, str]] = {}  # node -> (ts, name)
    open_ctx: dict[str, tuple] = {}  # cid -> (ts, node, label)
    max_ts = 0
    for time, node, kind, what, detail in evs:
        max_ts = max(max_ts, time)
        if kind == "handler":
            if detail == "return":
                started = open_handler.pop(node, None)
                if started is None:
                    continue  # return without a captured entry: skip
                ts0, name = started
                out.append({"ph": "B", "ts": ts0, "pid": pid, "tid": node,
                            "name": name, "cat": "handler"})
                out.append({"ph": "E", "ts": time, "pid": pid, "tid": node,
                            "name": name, "cat": "handler"})
            else:
                open_handler[node] = (time, what)
        elif kind == "context":
            cid, _, label = detail.partition(":")
            name = label or "ctx"
            if what == "spawn":
                open_ctx[cid] = (time, node, name)
            elif what == "finish":
                started = open_ctx.pop(cid, None)
                if started is None:
                    continue  # finish of a pre-trace context: skip
                ts0, node0, name0 = started
                common = {"cat": "context", "id": cid, "pid": pid, "name": name0}
                out.append({"ph": "b", "ts": ts0, "tid": node0, **common})
                out.append({"ph": "e", "ts": time, "tid": node, **common})
        elif kind in _INSTANT_KINDS:
            out.append({
                "ph": "i", "ts": time, "pid": pid, "tid": node,
                "name": what, "cat": kind, "s": "t",
                "args": {"detail": detail},
            })
    # auto-close anything still open when the capture ended
    for node, (ts0, name) in open_handler.items():
        out.append({"ph": "B", "ts": ts0, "pid": pid, "tid": node,
                    "name": name, "cat": "handler"})
        out.append({"ph": "E", "ts": max_ts, "pid": pid, "tid": node,
                    "name": name, "cat": "handler"})
    for cid, (ts0, node0, name0) in open_ctx.items():
        common = {"cat": "context", "id": cid, "pid": pid, "name": name0}
        out.append({"ph": "b", "ts": ts0, "tid": node0, **common})
        out.append({"ph": "e", "ts": max_ts, "tid": node0, **common})
    return out


#: pid of the host-side track (far above any machine index)
HOST_PID = 1_000_000


def host_span_events(
    spans: list[dict],
    pid: int = HOST_PID,
    process_name: str = "host: repro-serve",
    trace_id: str | None = None,
) -> list[dict]:
    """Host-side (wall-clock) duration spans as Chrome trace events.

    Each span dict carries ``name``, ``tid``, ``ts0``/``ts1`` (already
    in the track's microsecond timeline) and optional ``args``. The
    ``trace_id`` is stamped into every event's args — the correlation
    key shared with the journal and the job status JSON.
    """
    tid_names = {0: "daemon", 1: "executor", 2: "sweep points"}
    out: list[dict] = [{
        "ph": "M", "ts": 0, "pid": pid, "tid": 0,
        "name": "process_name",
        "args": {"name": process_name + (f" trace={trace_id}" if trace_id else "")},
    }]
    for tid in sorted({s["tid"] for s in spans}):
        out.append({
            "ph": "M", "ts": 0, "pid": pid, "tid": tid,
            "name": "thread_name",
            "args": {"name": tid_names.get(tid, f"host {tid}")},
        })
    for span in spans:
        args = dict(span.get("args") or {})
        if trace_id:
            args["trace_id"] = trace_id
        common = {
            "pid": pid, "tid": span["tid"], "name": span["name"],
            "cat": "host", "args": args,
        }
        out.append({"ph": "B", "ts": span["ts0"], **common})
        out.append({"ph": "E", "ts": span["ts1"], **common})
    return out


def build_perfetto(
    records: list[dict],
    host_events: list[dict] | None = None,
    trace_id: str | None = None,
) -> dict:
    """The session records' traces as one Perfetto-loadable document
    (pid = machine index), ready for ``json.dump``.

    ``host_events`` (already Chrome-format, e.g. from
    :func:`host_span_events`) are appended on their own process track,
    so service-side wall-clock spans and sim-side cycle spans load as
    one correlated trace; ``trace_id`` is recorded at the document
    top level as the cross-layer correlation key.
    """
    trace_events: list[dict] = []
    for pid, rec in enumerate(records):
        if "trace" not in rec:
            continue
        trace_events.extend(
            events_to_chrome(
                rec["trace"], pid=pid, process_name=rec.get("label", f"m{pid}")
            )
        )
    trace_events.extend(host_events or [])
    doc = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if trace_id:
        doc["trace_id"] = trace_id
    return doc


def export_perfetto(records: list[dict], path: str) -> int:
    """Write the session records' traces as one Perfetto-loadable JSON
    file (pid = machine index). Returns the number of Chrome events."""
    doc = build_perfetto(records)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


def export_tracer(tracer: Any, path: str) -> int:
    """Convenience: export one live Tracer's events directly."""
    return export_perfetto(
        [{"trace": tracer.events, "label": "machine"}], path
    )


# ----------------------------------------------------------------------
# run.json manifest
# ----------------------------------------------------------------------
def validate_run_manifest(manifest: dict) -> list[str]:
    """Check the run.json contract; returns a list of problems
    (empty = valid)."""
    errors = [
        f"missing required key {key!r}"
        for key in RUN_MANIFEST_REQUIRED
        if key not in manifest
    ]
    if errors:
        return errors
    if manifest["schema"] != RUN_MANIFEST_SCHEMA:
        errors.append(
            f"schema is {manifest['schema']!r}, expected {RUN_MANIFEST_SCHEMA!r}"
        )
    attr = manifest["cycle_attribution"]
    if attr is not None:
        per_node = attr.get("per_node")
        if per_node is None:
            errors.append("cycle_attribution has no per_node breakdown")
        else:
            for node, rec in per_node.items():
                got = sum(rec["buckets"].values())
                if got != rec["total"]:
                    errors.append(
                        f"node {node}: buckets sum to {got}, total is {rec['total']}"
                    )
            total = sum(rec["total"] for rec in per_node.values())
            if total != attr.get("total_cycles"):
                errors.append(
                    f"per-node totals sum to {total}, "
                    f"total_cycles is {attr.get('total_cycles')}"
                )
    return errors


def build_run_manifest(
    experiment: str,
    params: dict,
    timings: dict,
    metrics: dict | None,
    cycle_attribution: dict | None,
    **extra: Any,
) -> dict:
    """Assemble and validate a run.json manifest without writing it."""
    manifest = {
        "schema": RUN_MANIFEST_SCHEMA,
        "experiment": experiment,
        "params": params,
        "timings": timings,
        "metrics": metrics,
        "cycle_attribution": cycle_attribution,
        **extra,
    }
    errors = validate_run_manifest(manifest)
    if errors:
        raise ValueError(f"invalid run manifest: {errors}")
    return manifest


def write_run_manifest(
    path: str,
    experiment: str,
    params: dict,
    timings: dict,
    metrics: dict | None,
    cycle_attribution: dict | None,
    **extra: Any,
) -> dict:
    """Assemble, validate, and write run.json; returns the manifest."""
    manifest = build_run_manifest(
        experiment, params, timings, metrics, cycle_attribution, **extra
    )
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=1)
        fh.write("\n")
    return manifest
