"""Processor model: effect ISA and execution engine."""

from repro.proc.effects import (
    Compute,
    Effect,
    Fence,
    FetchOp,
    Load,
    LoadAcquire,
    Prefetch,
    Send,
    SetIMask,
    Store,
    Storeback,
    StoreRelease,
    Suspend,
    Yield,
)
from repro.proc.processor import Context, Processor, ProcessorStats

__all__ = [
    "Compute",
    "Context",
    "Effect",
    "Fence",
    "FetchOp",
    "Load",
    "LoadAcquire",
    "Prefetch",
    "Processor",
    "ProcessorStats",
    "Send",
    "SetIMask",
    "Store",
    "Storeback",
    "StoreRelease",
    "Suspend",
    "Yield",
]
