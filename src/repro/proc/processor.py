"""Processor model: executes effect-yielding generator contexts.

One context runs at a time. Message arrival interrupts the processor:
if it is idle the handler starts immediately; if a thread is stalled
on a long-latency effect the handler "borrows" the pipeline (Alewife's
Sparcle takes message traps during remote-miss stalls) and any effect
completion for the interrupted thread is deferred until the handler
returns. Handlers run with further message interrupts masked and are
dispatched FIFO.

The processor itself has no scheduling policy: the runtime installs an
``idle_hook`` that supplies work (e.g. a steal attempt) when the ready
queue is empty.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.cmmu.interface import Cmmu
from repro.cmmu.message import Message
from repro.params import ProcessorParams
from repro.memory.coherence import AccessKind, CoherenceEngine
from repro.memory.store import BackingStore
from repro.proc import effects as fx
from repro.proc.batch import BATCH_CLASSES as _BATCHES
from repro.sim.engine import SimulationError, Simulator

_ctx_ids = itertools.count()

HandlerFn = Callable[[Message], Generator]


@dataclass(eq=False, slots=True)  # identity semantics (hashable, used in sets)
class Context:
    """An execution context (thread, handler, or idle-task).

    Slotted: a run creates one Context per thread *and one per message
    handler invocation* — barrier-heavy workloads allocate hundreds of
    thousands of them."""

    gen: Generator
    label: str = ""
    is_handler: bool = False
    msg: Message | None = None
    on_finish: Callable[[Any], None] | None = None
    cid: int = field(default_factory=lambda: next(_ctx_ids))
    finished: bool = False
    #: a cache miss is outstanding for this context (it may be
    #: switched out late if other work becomes ready meanwhile)
    miss_pending: bool = False
    #: active macro-effect batch runner (repro.proc.batch), if any:
    #: completions route to it instead of resuming the generator
    batch: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "handler" if self.is_handler else "thread"
        return f"<Context#{self.cid} {kind} {self.label!r}>"


@dataclass
class ProcessorStats:
    contexts_run: int = 0
    handlers_run: int = 0
    effects: int = 0
    idle_probes: int = 0
    busy_cycles: int = 0
    miss_switches: int = 0


class Processor:
    """A single Alewife node's processor (Sparcle-like)."""

    def __init__(
        self,
        sim: Simulator,
        node: int,
        cmmu: Cmmu,
        coherence: CoherenceEngine,
        store: BackingStore,
        params: ProcessorParams | None = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.cmmu = cmmu
        self.coherence = coherence
        self.store = store
        self.p = params or ProcessorParams()
        self.handlers: dict[str, HandlerFn] = {}
        self.ready: deque[tuple[Context, Any, bool]] = deque()
        self.current: Context | None = None
        self.in_handler = False
        self.imask = False
        #: runtime-supplied: return a generator of work to try when
        #: idle, or None to sleep until kicked
        self.idle_hook: Callable[[], Generator | None] | None = None
        self._deferred: deque[tuple[Context, Any]] = deque()
        self._dispatch_pending = False
        #: contexts switched out on a cache miss (Sparcle fast switch);
        #: each occupies one of the hw_contexts - 1 shadow register sets
        self._stalled: set[Context] = set()
        #: weak ordering: in-flight buffered stores as {slot_id: (addr, value)}
        self._store_buffer: dict[int, tuple[int, Any]] = {}
        self._store_slot_seq = 0
        #: unbuffered (depth-0) stores whose ``store.write`` event is
        #: scheduled but has not fired yet: {addr: [values, issue order]}.
        #: Pure bookkeeping — observable by the partitioned engine's
        #: replica snapshots, never consulted on the serial fast path.
        self._pending_writes: dict[int, list[Any]] = {}
        #: contexts parked on a Fence (or a full buffer), resumed on drain
        self._fence_waiters: list[tuple[Context, bool]] = []
        self.stats = ProcessorStats()
        cmmu.on_message = self._message_available

    # ------------------------------------------------------------------
    # Public API (used by the runtime)
    # ------------------------------------------------------------------
    def register_handler(self, mtype: str, fn: HandlerFn) -> None:
        if mtype in self.handlers:
            raise SimulationError(f"handler {mtype!r} already registered on node {self.node}")
        self.handlers[mtype] = fn

    def run_thread(
        self,
        gen: Generator,
        on_finish: Callable[[Any], None] | None = None,
        label: str = "",
        front: bool = False,
    ) -> Context:
        """Enqueue a new thread context; it runs when the processor
        gets to it."""
        ctx = Context(gen=gen, label=label, on_finish=on_finish)
        self._enqueue_ready(ctx, None, False, front=front)
        return ctx

    def _enqueue_ready(
        self, ctx: Context, value: Any, resumed: bool, front: bool = False
    ) -> None:
        entry = (ctx, value, resumed)
        if front:
            self.ready.appendleft(entry)
        else:
            self.ready.append(entry)
        self._late_switch_check()
        self._schedule_dispatch()

    def kick(self) -> None:
        """Wake the processor (e.g. after the runtime changed state)."""
        self._schedule_dispatch()

    @property
    def busy(self) -> bool:
        return self.current is not None or self.in_handler

    def register_metrics(self, reg, **labels) -> None:
        """Register this processor's instruments (lazy reads) into a
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        s = self.stats
        labels = {"component": "processor", **labels}
        for name in ("contexts_run", "handlers_run", "effects", "idle_probes",
                     "busy_cycles", "miss_switches"):
            reg.counter(f"proc.{name}", lambda n=name: getattr(s, n), **labels)
        reg.gauge("proc.ready_depth", lambda: len(self.ready), **labels)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _schedule_dispatch(self) -> None:
        if self._dispatch_pending:
            return
        self._dispatch_pending = True
        self.sim.call_after(0, self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        if self.busy:
            return
        # 1. pending message interrupts win (they would have trapped us
        #    the moment we became interruptible)
        if self.cmmu.in_queue and not self.imask:
            self._enter_handler()
            return
        # 2. ready threads
        if self.ready:
            ctx, value, resumed = self.ready.popleft()
            self.current = ctx
            self.stats.contexts_run += 1
            cost = self.p.context_switch if resumed else 0
            if cost:
                self.sim.call_after(cost, lambda: self._step(ctx, value))
            else:
                self._step(ctx, value)
            return
        # 3. ask the runtime for idle work
        if self.idle_hook is not None:
            gen = self.idle_hook()
            if gen is not None:
                self.stats.idle_probes += 1
                ctx = Context(gen=gen, label=f"idle@{self.node}")
                self.current = ctx
                self._step(ctx, None)
                return
        # 4. sleep until kicked

    # ------------------------------------------------------------------
    # Message interrupts
    # ------------------------------------------------------------------
    def _message_available(self) -> None:
        if self.imask or self.in_handler:
            self.cmmu.stats.queued_while_masked += 1
            return
        if self.current is None:
            self._schedule_dispatch()
        else:
            # borrow the pipeline from the (stalled) current thread
            self._enter_handler()

    def _enter_handler(self) -> None:
        if self.in_handler:  # pragma: no cover - guarded by callers
            raise SimulationError("nested handler entry")
        msg = self.cmmu.pop_message()
        fn = self.handlers.get(msg.mtype)
        if fn is None:
            raise SimulationError(
                f"node {self.node}: no handler for message type {msg.mtype!r}"
            )
        self.in_handler = True
        self.cmmu.stats.interrupts_raised += 1
        self.stats.handlers_run += 1
        ctx = Context(gen=fn(msg), label=f"h:{msg.mtype}", is_handler=True, msg=msg)
        self.sim.call_after(self.cmmu.p.interrupt_entry, lambda: self._step(ctx, None))

    def _exit_handler(self) -> None:
        def finish() -> None:
            self.in_handler = False
            # back-to-back interrupts: take the next message first
            if self.cmmu.in_queue and not self.imask:
                self._enter_handler()
                return
            # then deferred completions. Route back through _complete
            # (not _step): a deferred context may belong to a stalled
            # hardware context and must rejoin the ready queue. Drain a
            # snapshot so re-deferrals (a new interrupt taken by the
            # first completion) terminate.
            pending = list(self._deferred)
            self._deferred.clear()
            for ctx, value in pending:
                self._complete(ctx, value)
            self._schedule_dispatch()

        self.sim.call_after(self.cmmu.p.interrupt_exit, finish)

    # ------------------------------------------------------------------
    # Effect execution
    # ------------------------------------------------------------------
    def _complete(self, ctx: Context, value: Any = None) -> None:
        """Resume ``ctx`` with ``value`` once its pending effect is done.

        Effect boundaries are the interruptible points: if a handler
        holds the pipeline the resumption is deferred, and if messages
        are waiting the interrupt is taken first. A context that was
        switched out on its miss rejoins the ready queue instead of
        resuming in place (another context owns the pipeline now).
        """
        ctx.miss_pending = False
        if not ctx.is_handler:
            if self.in_handler:
                self._deferred.append((ctx, value))
                return
            if self.cmmu.in_queue and not self.imask:
                self._deferred.append((ctx, value))
                self._enter_handler()
                return
            if ctx in self._stalled:
                self._stalled.discard(ctx)
                self._enqueue_ready(ctx, value, True)
                return
        self._step(ctx, value)

    def _step(self, ctx: Context, send_value: Any) -> None:
        # a context mid-macro-batch routes its completion to the batch
        # runner instead of the generator (one resume per *loop*, not
        # per element)
        batch = ctx.batch
        if batch is not None:
            batch.step(send_value)
            return
        try:
            eff = ctx.gen.send(send_value)
        except StopIteration as stop:
            self._finish(ctx, stop.value)
            return
        batch_cls = _BATCHES.get(eff.__class__)
        if batch_cls is not None:
            # macro-effect: start its batch runner. The envelope object
            # deliberately bypasses _execute (observers see the
            # per-element micro stream, not the wrapper) and is not
            # counted in stats.effects — each element counts itself, so
            # effect rates stay comparable with unbatched runs.
            ctx.batch = batch_cls(self, ctx, eff)
            ctx.batch.step(None)
            return
        self.stats.effects += 1
        self._execute(ctx, eff)

    def _finish(self, ctx: Context, result: Any) -> None:
        ctx.finished = True
        if ctx.is_handler:
            if ctx.on_finish is not None:  # pragma: no cover - unused path
                ctx.on_finish(result)
            self._exit_handler()
            return
        if self.current is ctx:
            self.current = None
        if ctx.on_finish is not None:
            ctx.on_finish(result)
        self._schedule_dispatch()

    def _execute(self, ctx: Context, eff) -> None:
        # per-class dict dispatch: one hash lookup instead of walking a
        # ~10-arm ``type(eff) is fx.X`` elif chain on every effect
        handler = _EFFECT_DISPATCH.get(eff.__class__)
        if handler is None:
            raise SimulationError(f"unknown effect {eff!r}")
        handler(self, ctx, eff)

    def _eff_compute(self, ctx: Context, eff) -> None:
        cycles = eff.cycles * self.p.compute_unit
        self.stats.busy_cycles += cycles
        self.sim.call_after(cycles, lambda: self._complete(ctx))

    def _eff_load(self, ctx: Context, eff) -> None:
        addr = eff.addr
        if self._store_buffer:
            forwarded = self._forward_from_store_buffer(addr)
            if forwarded is not None:
                self.sim.call_after(
                    self.coherence.p.load_hit, lambda: self._complete(ctx, forwarded[0])
                )
                return
        hit = self.coherence.access(
            self.node, addr, AccessKind.READ,
            lambda: self._complete(ctx, self.store.read(addr)),
        )
        if not hit:
            self._maybe_miss_switch(ctx)

    def _eff_store(self, ctx: Context, eff) -> None:
        addr, value = eff.addr, eff.value
        if self.p.store_buffer_depth > 0:
            self._buffered_store(ctx, addr, value)
            return
        self._pend_write(addr, value)

        def on_store() -> None:
            self.store.write(addr, value)
            self._unpend_write(addr, value)
            self._complete(ctx)

        hit = self.coherence.access(self.node, addr, AccessKind.WRITE, on_store)
        if not hit:
            self._maybe_miss_switch(ctx)

    def _eff_fetch_op(self, ctx: Context, eff) -> None:
        addr, fn = eff.addr, eff.fn
        if self._store_buffer:
            # atomics have fence semantics: drain first, then retry
            self._fence_waiters.append((ctx, eff))
            return

        def on_rmw() -> None:
            old, _new = self.store.atomically(addr, fn)
            self.sim.call_after(self.p.atomic_extra, lambda: self._complete(ctx, old))

        hit = self.coherence.access(self.node, addr, AccessKind.WRITE, on_rmw)
        if not hit:
            self._maybe_miss_switch(ctx)

    def _eff_fence(self, ctx: Context, eff) -> None:
        if not self._store_buffer:
            self.sim.call_after(1, lambda: self._complete(ctx))
        else:
            self._fence_waiters.append((ctx, None))

    def _eff_prefetch(self, ctx: Context, eff) -> None:
        self.coherence.access(
            self.node, eff.addr, AccessKind.PREFETCH, lambda: self._complete(ctx)
        )

    def _eff_send(self, ctx: Context, eff) -> None:
        cost = self.cmmu.describe_launch_cost(len(eff.operands), len(eff.blocks))
        dst, mtype, operands, blocks = eff.dst, eff.mtype, eff.operands, eff.blocks

        def do_launch() -> None:
            self.cmmu.launch(dst, mtype, operands, blocks)
            self._complete(ctx)

        self.stats.busy_cycles += cost
        self.sim.call_after(cost, do_launch)

    def _eff_storeback(self, ctx: Context, eff) -> None:
        if not ctx.is_handler or ctx.msg is None:
            raise SimulationError("Storeback outside a message handler")
        cost = self.cmmu.storeback(ctx.msg, eff.dma_addr)
        self.sim.call_after(cost, lambda: self._complete(ctx))

    def _eff_set_imask(self, ctx: Context, eff) -> None:
        self.imask = eff.masked
        unmasked_work = not eff.masked and bool(self.cmmu.in_queue)
        self.sim.call_after(1, lambda: self._complete(ctx))
        if unmasked_work and not self.in_handler:
            # the pending message traps us as soon as we unmask;
            # the current thread's resumption will be deferred
            self.sim.call_after(1, self._maybe_interrupt)

    def _eff_suspend(self, ctx: Context, eff) -> None:
        self._suspend(ctx, eff.register)

    def _eff_yield(self, ctx: Context, eff) -> None:
        if ctx.is_handler:
            raise SimulationError("Yield inside a message handler")
        self.current = None
        self.ready.append((ctx, None, False))
        self.sim.call_after(1, self._schedule_dispatch)

    def _maybe_interrupt(self) -> None:
        if self.cmmu.in_queue and not self.imask and not self.in_handler:
            self._enter_handler()

    # ------------------------------------------------------------------
    # Weak ordering: store buffer
    # ------------------------------------------------------------------
    def _buffered_store(self, ctx: Context, addr: int, value: Any) -> None:
        """Issue a store through the buffer: the context continues
        after the issue cost while the write transaction retires in
        the background. A full buffer makes the store block like a
        fence (retry when a slot frees)."""
        if len(self._store_buffer) >= self.p.store_buffer_depth:
            self._fence_waiters.append((ctx, fx.Store(addr, value)))
            return
        slot = self._store_slot_seq
        self._store_slot_seq += 1
        self._store_buffer[slot] = (addr, value)

        def on_retire() -> None:
            self.store.write(addr, value)
            del self._store_buffer[slot]
            self._drain_check()

        self.coherence.access(self.node, addr, AccessKind.WRITE, on_retire)
        self.sim.call_after(self.p.store_issue_cost, lambda: self._complete(ctx))

    def _pend_write(self, addr: int, value: Any) -> None:
        self._pending_writes.setdefault(addr, []).append(value)

    def _unpend_write(self, addr: int, value: Any) -> None:
        vals = self._pending_writes.get(addr)
        if vals is not None:
            vals.remove(value)
            if not vals:
                del self._pending_writes[addr]

    def _forward_from_store_buffer(self, addr: int):
        """Store-to-load forwarding: youngest buffered value for addr
        (returns a 1-tuple or None so a buffered None forwards too)."""
        if not self._store_buffer:
            return None
        for slot in sorted(self._store_buffer, reverse=True):
            a, v = self._store_buffer[slot]
            if a == addr:
                return (v,)
        return None

    def _drain_check(self) -> None:
        """Release parked contexts as buffer slots free: a blocked
        store needs one free slot, a fence or atomic needs the buffer
        empty. Runs after every retirement; releases stay in order."""
        waiters, self._fence_waiters = self._fence_waiters, []
        for i, (ctx, redo) in enumerate(waiters):
            blocked = (
                bool(self._store_buffer)
                if redo is None or type(redo) is fx.FetchOp
                else len(self._store_buffer) >= self.p.store_buffer_depth
            )
            if blocked:
                self._fence_waiters = waiters[i:] + self._fence_waiters
                return
            if redo is None:
                self._complete(ctx)
            else:
                self._execute(ctx, redo)

    def _maybe_miss_switch(self, ctx: Context) -> None:
        """Sparcle fast context switch: on a cache miss, park the
        current context in a shadow register set and run other ready
        work while the miss is outstanding. Only taken when another
        hardware context is free and there is something to run; if
        work becomes ready later while the miss is still outstanding,
        :meth:`_late_switch_check` performs the switch then."""
        ctx.miss_pending = True
        self._late_switch_check()

    def _late_switch_check(self) -> None:
        cur = self.current
        if (
            cur is None
            or cur.is_handler
            or not cur.miss_pending
            or self.p.hw_contexts <= 1
            or len(self._stalled) >= self.p.hw_contexts - 1
            or not self.ready
        ):
            return
        self._stalled.add(cur)
        self.current = None
        self.stats.miss_switches += 1
        self.sim.call_after(self.p.miss_switch_cost, self._schedule_dispatch)

    def _suspend(self, ctx: Context, register) -> None:
        if ctx.is_handler:
            raise SimulationError("Suspend inside a message handler")
        if self.current is ctx:
            self.current = None
        resumed_flag = [False]

        def resume(value: Any = None) -> None:
            if resumed_flag[0]:
                raise SimulationError(f"{ctx!r} resumed twice")
            resumed_flag[0] = True
            self._enqueue_ready(ctx, value, True)

        register(resume)
        self._schedule_dispatch()


#: effect class -> bound handler; built once at import (satisfies the
#: exact-type semantics the old ``type(eff) is fx.X`` chain enforced)
_EFFECT_DISPATCH = {
    fx.Compute: Processor._eff_compute,
    fx.Load: Processor._eff_load,
    fx.Store: Processor._eff_store,
    # acquire/release-annotated accesses execute on the identical
    # handlers — the annotation exists only for repro.check
    fx.LoadAcquire: Processor._eff_load,
    fx.StoreRelease: Processor._eff_store,
    fx.FetchOp: Processor._eff_fetch_op,
    fx.Fence: Processor._eff_fence,
    fx.Prefetch: Processor._eff_prefetch,
    fx.Send: Processor._eff_send,
    fx.Storeback: Processor._eff_storeback,
    fx.SetIMask: Processor._eff_set_imask,
    fx.Suspend: Processor._eff_suspend,
    fx.Yield: Processor._eff_yield,
}
