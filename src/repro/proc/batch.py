"""Batch runners for macro-effects.

A macro-effect (:class:`~repro.proc.effects.ComputeLoad` and friends)
describes a whole hot loop in one yielded object. The processor's
``_step`` routes the context to one of these batch runners, which
issues the loop's micro-operations one at a time through the *same*
machinery a hand-written ``yield``-per-element loop uses: loads and
stores go through ``CoherenceEngine.access`` (hit fast path and MSHR
miss path alike), completions route through ``Processor._complete``
(so handler borrowing, deferred resumptions, miss context switches and
the store buffer behave identically), and each element schedules its
own completion event in exactly the order and at exactly the cycle the
micro program would. Cycle identity is by construction: the only
things removed are per-element host-side costs — the generator resume,
the effect-object allocation, the dispatch dict lookup and the
per-element completion closure.

Misses need no special casing: the faulting element's ``access``
returns False, the context may be miss-switched out, and the batch
simply does not advance until the fill (or a handler's deferred drain)
delivers the element's completion — the batch splits at the faulting
element for free.

Observability: when a tracer/profiler/checker has instance-patched the
processor's ``_execute``, the batch materializes each element as a real
micro effect object and feeds it through the patched ``_execute``, so
observers see the exact per-element stream (same classes, same
addresses, same cycles) a micro program produces. Unobserved runs take
an inline fast path with identical timing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.memory.cache import LineState
from repro.memory.coherence import AccessKind
from repro.proc import effects as fx

if TYPE_CHECKING:  # pragma: no cover
    from repro.proc.processor import Context, Processor

#: element-sequencer states (which micro-op just completed / is next)
_INIT, _PREFETCH, _PREFETCH2, _LOAD, _STORE, _COMPUTE = range(6)

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE
_PREFETCH_KIND = AccessKind.PREFETCH
_INVALID = LineState.INVALID
_EXCLUSIVE = LineState.EXCLUSIVE
_MODIFIED = LineState.MODIFIED


class _BatchBase:
    """Shared micro-op issue machinery. One micro-op is outstanding at
    a time, so per-op scratch state (``_addr``/``_value``) lives on the
    batch and the four completion callbacks are pre-bound once per
    batch instead of one closure per element."""

    __slots__ = (
        "proc", "ctx", "observed", "_addr", "_value",
        "_cb_plain", "_cb_read", "_cb_fwd", "_cb_write",
        "_call_after", "_cache_lines", "_cache_stats", "_line_mask",
        "_load_hit", "_store_hit", "_compute_unit", "_pstats", "_store",
    )

    def __init__(self, proc: "Processor", ctx: "Context") -> None:
        self.proc = proc
        self.ctx = ctx
        # instance-patched _execute == an observer wants the
        # per-element effect stream
        self.observed = "_execute" in proc.__dict__
        self._cb_plain = self._done_plain
        self._cb_read = self._done_read
        self._cb_fwd = self._done_fwd
        self._cb_write = self._done_write
        # Coherence hit fast path, folded into the batch: the hit test
        # and its LRU/stats bookkeeping are replicated inline from
        # Cache.lookup against prebound references, so the (dominant)
        # all-hits case skips the access()/lookup() call pair entirely.
        # Non-hits fall back to the full CoherenceEngine.access, which
        # redoes the (failing) lookup and counts the miss exactly once.
        coh = proc.coherence
        cache = coh.caches[proc.node]
        self._cache_lines = cache._lines
        self._cache_stats = cache.stats
        self._line_mask = ~(coh.line_size - 1)
        self._load_hit = coh.p.load_hit
        self._store_hit = coh.p.store_hit
        self._call_after = proc.sim.call_after
        self._compute_unit = proc.p.compute_unit
        self._pstats = proc.stats
        self._store = proc.store

    # -- completion callbacks ------------------------------------------
    # Each callback inlines Processor._complete's interruptible-point
    # checks and, when none applies, steps the batch directly — the
    # _complete -> _step detour exists to route to ``ctx.batch``, which
    # is this object. Any pending interrupt/deferral/stall falls back
    # to the real _complete so the semantics stay identical.
    def _quiet(self) -> bool:
        proc = self.proc
        ctx = self.ctx
        ctx.miss_pending = False
        return ctx.is_handler or not (
            proc.in_handler
            or (proc.cmmu.in_queue and not proc.imask)
            or ctx in proc._stalled
        )

    def _done_plain(self) -> None:
        ctx = self.ctx
        ctx.miss_pending = False
        proc = self.proc
        if ctx.is_handler or not (
            proc.in_handler
            or (proc.cmmu.in_queue and not proc.imask)
            or ctx in proc._stalled
        ):
            self.step(None)
        else:
            proc._complete(ctx)

    def _done_read(self) -> None:
        # value read at completion time, exactly like the micro path's
        # ``lambda: self._complete(ctx, self.store.read(addr))``;
        # BackingStore.read inlined (reads counter preserved)
        store = self._store
        store.reads += 1
        value = store._mem.get(self._addr, 0)
        ctx = self.ctx
        ctx.miss_pending = False
        proc = self.proc
        if ctx.is_handler or not (
            proc.in_handler
            or (proc.cmmu.in_queue and not proc.imask)
            or ctx in proc._stalled
        ):
            self.step(value)
        else:
            proc._complete(ctx, value)

    def _done_fwd(self) -> None:
        if self._quiet():
            self.step(self._value)
        else:
            self.proc._complete(self.ctx, self._value)

    def _done_write(self) -> None:
        proc = self.proc
        proc.store.write(self._addr, self._value)
        proc._unpend_write(self._addr, self._value)
        ctx = self.ctx
        ctx.miss_pending = False
        if ctx.is_handler or not (
            proc.in_handler
            or (proc.cmmu.in_queue and not proc.imask)
            or ctx in proc._stalled
        ):
            self.step(None)
        else:
            proc._complete(ctx)

    # -- micro-op issue ------------------------------------------------
    def _issue_compute(self, cycles: int) -> None:
        self._pstats.effects += 1
        if self.observed:
            self.proc._execute(self.ctx, fx.Compute(cycles))
            return
        c = cycles * self._compute_unit
        self._pstats.busy_cycles += c
        self._call_after(c, self._cb_plain)

    def _issue_load(self, addr: int, acquire: bool = False) -> None:
        self._pstats.effects += 1
        if self.observed:
            self.proc._execute(
                self.ctx, fx.LoadAcquire(addr) if acquire else fx.Load(addr)
            )
            return
        proc = self.proc
        if proc._store_buffer:
            forwarded = proc._forward_from_store_buffer(addr)
            if forwarded is not None:
                self._value = forwarded[0]
                self._call_after(self._load_hit, self._cb_fwd)
                return
        self._addr = addr
        lines = self._cache_lines
        line = addr & self._line_mask
        st = lines.get(line)
        if st is not None and st is not _INVALID:
            lines.move_to_end(line)
            self._cache_stats.hits += 1
            self._call_after(self._load_hit, self._cb_read)
            return
        if not proc.coherence.access(proc.node, addr, _READ, self._cb_read):
            proc._maybe_miss_switch(self.ctx)

    def _issue_store(self, addr: int, value: Any, release: bool = False) -> None:
        self._pstats.effects += 1
        if self.observed:
            self.proc._execute(
                self.ctx,
                fx.StoreRelease(addr, value) if release else fx.Store(addr, value),
            )
            return
        proc = self.proc
        if proc.p.store_buffer_depth > 0:
            proc._buffered_store(self.ctx, addr, value)
            return
        proc._pend_write(addr, value)
        self._addr = addr
        self._value = value
        lines = self._cache_lines
        line = addr & self._line_mask
        st = lines.get(line)
        if st is _MODIFIED:
            lines.move_to_end(line)
            self._cache_stats.hits += 1
            self._call_after(self._store_hit, self._cb_write)
            return
        if st is _EXCLUSIVE:
            # silent E->M promotion, exactly as Cache.lookup(for_write)
            lines[line] = _MODIFIED
            self._cache_stats.upgrades += 1
            lines.move_to_end(line)
            self._cache_stats.hits += 1
            self._call_after(self._store_hit, self._cb_write)
            return
        if not proc.coherence.access(proc.node, addr, _WRITE, self._cb_write):
            proc._maybe_miss_switch(self.ctx)

    def _issue_prefetch(self, addr: int) -> None:
        proc = self.proc
        proc.stats.effects += 1
        if self.observed:
            proc._execute(self.ctx, fx.Prefetch(addr))
            return
        proc.coherence.access(proc.node, addr, _PREFETCH_KIND, self._cb_plain)

    # -- batch end -----------------------------------------------------
    def _resume(self, result: Any) -> None:
        """Batch done: detach and resume the program's generator with
        the batch result (same call depth the micro program's last
        ``gen.send`` would have had)."""
        ctx = self.ctx
        ctx.batch = None
        self.proc._step(ctx, result)


class ComputeLoadBatch(_BatchBase):
    """[Prefetch?] Load [Compute?] per element; collects values."""

    __slots__ = ("base", "stride", "count", "compute", "per_line",
                 "values", "i", "state")

    def __init__(self, proc: "Processor", ctx: "Context", eff) -> None:
        super().__init__(proc, ctx)
        self.base = eff.base
        self.stride = eff.stride
        self.count = eff.count
        self.compute = eff.compute
        self.per_line = eff.prefetch_line // eff.stride if eff.prefetch_line else 0
        self.values: list[Any] = []
        self.i = 0
        self.state = _INIT
        # collapse the _done_read -> step element advance into one
        # callback (the dominant completion in gather loops)
        self._cb_read = self._loaded

    def _loaded(self) -> None:
        store = self._store
        store.reads += 1
        value = store._mem.get(self._addr, 0)
        ctx = self.ctx
        ctx.miss_pending = False
        proc = self.proc
        if not ctx.is_handler and (
            proc.in_handler
            or (proc.cmmu.in_queue and not proc.imask)
            or ctx in proc._stalled
        ):
            proc._complete(ctx, value)
            return
        self.values.append(value)
        if self.compute:
            self.state = _COMPUTE
            self._issue_compute(self.compute)
            return
        self.i += 1
        self._next()

    def step(self, value: Any) -> None:
        st = self.state
        if st == _LOAD:
            self.values.append(value)
            if self.compute:
                self.state = _COMPUTE
                self._issue_compute(self.compute)
                return
            self.i += 1
        elif st == _COMPUTE:
            self.i += 1
        elif st == _PREFETCH:
            self._load()
            return
        self._next()

    def _next(self) -> None:
        i = self.i
        if i >= self.count:
            self._resume(self.values)
            return
        pl = self.per_line
        if pl and i % pl == 0 and (i + pl) < self.count:
            self.state = _PREFETCH
            self._issue_prefetch(self.base + (i + pl) * self.stride)
            return
        self._load()

    def _load(self) -> None:
        self.state = _LOAD
        self._issue_load(self.base + self.i * self.stride)


class LoadComputeStoreBatch(_BatchBase):
    """The §4.4 copy loops: per element [Prefetch src+dst at line
    boundaries] Load src, Store dst, [Compute]."""

    __slots__ = ("src", "dst", "stride", "count", "compute",
                 "prefetch_line", "nbytes", "i", "state")

    def __init__(self, proc: "Processor", ctx: "Context", eff) -> None:
        super().__init__(proc, ctx)
        self.src = eff.src
        self.dst = eff.dst
        self.stride = eff.stride
        self.count = eff.count
        self.compute = eff.compute
        self.prefetch_line = eff.prefetch_line
        self.nbytes = eff.count * eff.stride
        self.i = 0
        self.state = _INIT

    def step(self, value: Any) -> None:
        st = self.state
        if st == _LOAD:
            self.state = _STORE
            self._issue_store(self.dst + self.i * self.stride, value)
            return
        if st == _PREFETCH:
            self.state = _PREFETCH2
            self._issue_prefetch(
                self.dst + self.i * self.stride + self.prefetch_line
            )
            return
        if st == _PREFETCH2:
            self._load()
            return
        if st == _STORE:
            if self.compute:
                self.state = _COMPUTE
                self._issue_compute(self.compute)
                return
            self.i += 1
        elif st == _COMPUTE:
            self.i += 1
        self._next()

    def _next(self) -> None:
        i = self.i
        if i >= self.count:
            self._resume(None)
            return
        pl = self.prefetch_line
        off = i * self.stride
        if pl and off % pl == 0 and off + pl < self.nbytes:
            self.state = _PREFETCH
            self._issue_prefetch(self.src + off + pl)
            return
        self._load()

    def _load(self) -> None:
        self.state = _LOAD
        self._issue_load(self.src + self.i * self.stride)


class StoreRunBatch(_BatchBase):
    """Store values[i] to base + i*stride, in order."""

    __slots__ = ("base", "stride", "values", "i")

    def __init__(self, proc: "Processor", ctx: "Context", eff) -> None:
        super().__init__(proc, ctx)
        self.base = eff.base
        self.stride = eff.stride
        self.values = eff.values
        self.i = -1

    def step(self, value: Any) -> None:
        self.i += 1
        i = self.i
        vals = self.values
        if i >= len(vals):
            self._resume(None)
            return
        self._issue_store(self.base + i * self.stride, vals[i])


class RepeatBatch(_BatchBase):
    """Execute the body effect sequence count times, results discarded."""

    __slots__ = ("body", "blen", "total", "k")

    def __init__(self, proc: "Processor", ctx: "Context", eff) -> None:
        super().__init__(proc, ctx)
        self.body = eff.body
        self.blen = len(eff.body)
        self.total = eff.count * self.blen
        self.k = -1

    def step(self, value: Any) -> None:
        self.k += 1
        k = self.k
        if k >= self.total:
            self._resume(None)
            return
        op = self.body[k % self.blen]
        cls = op.__class__
        if cls is fx.Compute:
            self._issue_compute(op.cycles)
        elif cls is fx.Load:
            self._issue_load(op.addr)
        elif cls is fx.LoadAcquire:
            self._issue_load(op.addr, acquire=True)
        elif cls is fx.Store:
            self._issue_store(op.addr, op.value)
        elif cls is fx.StoreRelease:
            self._issue_store(op.addr, op.value, release=True)
        else:  # fx.Prefetch — body contents validated at construction
            self._issue_prefetch(op.addr)


class SpinBatch(_BatchBase):
    """Acquire-spin until the loaded value reaches the threshold."""

    __slots__ = ("addr", "threshold", "backoff", "state", "_line")

    def __init__(self, proc: "Processor", ctx: "Context", eff) -> None:
        super().__init__(proc, ctx)
        self.addr = eff.addr
        self.threshold = eff.threshold
        self.backoff = eff.backoff
        self.state = _INIT
        self._line = eff.addr & self._line_mask
        # spins complete thousands of probe loads and backoffs;
        # collapse the _done_* -> step state-machine detours into
        # spin-specific callbacks. These callbacks only ever fire on
        # unobserved batches (observed loads route through _execute and
        # complete via _complete -> step), so the inlined issue paths
        # below need no ``observed`` branch.
        self._cb_read = self._spin_probe
        self._cb_plain = self._backoff_done

    def _reload(self, proc: "Processor") -> None:
        """_issue_load(self.addr, acquire=True), inlined for the fixed
        spin address (line base precomputed at batch construction)."""
        self._pstats.effects += 1
        if proc._store_buffer:
            forwarded = proc._forward_from_store_buffer(self.addr)
            if forwarded is not None:
                self._value = forwarded[0]
                self._call_after(self._load_hit, self._cb_fwd)
                return
        lines = self._cache_lines
        line = self._line
        st = lines.get(line)
        if st is not None and st is not _INVALID:
            lines.move_to_end(line)
            self._cache_stats.hits += 1
            self._call_after(self._load_hit, self._cb_read)
            return
        if not proc.coherence.access(proc.node, self.addr, _READ, self._cb_read):
            proc._maybe_miss_switch(self.ctx)

    def _backoff_done(self) -> None:
        ctx = self.ctx
        ctx.miss_pending = False
        proc = self.proc
        if not ctx.is_handler and (
            proc.in_handler
            or (proc.cmmu.in_queue and not proc.imask)
            or ctx in proc._stalled
        ):
            proc._complete(ctx)
            return
        self.state = _LOAD
        self._reload(proc)

    def _spin_probe(self) -> None:
        """Load-completion callback: the whole spin iteration inline.
        Falls back to _complete (which re-enters step()) at any
        interruptible point, exactly like _done_read."""
        store = self._store
        store.reads += 1
        value = store._mem.get(self.addr, 0)
        ctx = self.ctx
        ctx.miss_pending = False
        proc = self.proc
        if not ctx.is_handler and (
            proc.in_handler
            or (proc.cmmu.in_queue and not proc.imask)
            or ctx in proc._stalled
        ):
            proc._complete(ctx, value)
            return
        if value >= self.threshold:
            self._resume(value)
            return
        backoff = self.backoff
        if backoff:
            # _issue_compute(backoff), inlined
            self.state = _COMPUTE
            pstats = self._pstats
            pstats.effects += 1
            c = backoff * self._compute_unit
            pstats.busy_cycles += c
            self._call_after(c, self._cb_plain)
            return
        self._reload(proc)

    def step(self, value: Any) -> None:
        if self.state == _LOAD:
            if value >= self.threshold:
                self._resume(value)
                return
            if self.backoff:
                self.state = _COMPUTE
                self._issue_compute(self.backoff)
                return
        self.state = _LOAD
        self._issue_load(self.addr, acquire=True)


#: macro effect class -> batch runner
BATCH_CLASSES = {
    fx.ComputeLoad: ComputeLoadBatch,
    fx.LoadComputeStore: LoadComputeStoreBatch,
    fx.StoreRun: StoreRunBatch,
    fx.Repeat: RepeatBatch,
    fx.SpinUntilGE: SpinBatch,
}
