"""The effect "ISA" of simulated programs.

Simulated threads and message handlers are Python generators that
``yield`` effect objects; the :class:`~repro.proc.processor.Processor`
executes each effect, charges its cycle cost against the simulated
clock, and resumes the generator with the effect's result::

    def worker(a, b):
        x = yield Load(a)          # coherent shared-memory read
        yield Compute(10)          # 10 cycles of local work
        yield Store(b, x + 1)      # coherent shared-memory write
        return x

This mirrors the paper's machine interface: loads/stores/prefetches
are single instructions backed by coherence hardware; Send is the
CMMU's describe/launch sequence; Storeback drives the receive-side
DMA.

Macro-effects
-------------
Hot inner loops (the jacobi halo reads, the memcpy doubleword loop,
the accum consume loop, barrier spins) spend most of their host time
resuming the generator once per element. The macro-effects
(:class:`ComputeLoad`, :class:`LoadComputeStore`, :class:`StoreRun`,
:class:`Repeat`, :class:`SpinUntilGE`) describe the whole loop in one
yielded object; the processor's batch runner
(:mod:`repro.proc.batch`) then drives the per-element micro-operations
itself — same events, same cycle accounting, same interrupt points,
one generator resume for the whole loop. All effect classes are
slotted: effect objects are the highest-churn allocations in a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cmmu.message import BlockRef


@dataclass(slots=True)
class Compute:
    """Occupy the processor for ``cycles`` of local work."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"negative compute {self.cycles}")


@dataclass(slots=True)
class Load:
    """Coherent shared-memory read; resumes with the loaded value."""

    addr: int


@dataclass(slots=True)
class Store:
    """Coherent shared-memory write of ``value`` to ``addr``."""

    addr: int
    value: Any


@dataclass(slots=True)
class LoadAcquire(Load):
    """A :class:`Load` annotated with acquire semantics for the
    dynamic checkers (``repro.check``): reading this word may publish
    another thread's prior writes (a lock word, a ready flag). The
    processor executes it exactly like a plain Load — the annotation
    carries zero timing meaning — but the happens-before race detector
    joins the releaser's clock instead of reporting a data race on the
    synchronization word itself."""


@dataclass(slots=True)
class StoreRelease(Store):
    """A :class:`Store` annotated with release semantics for the
    dynamic checkers: writing this word publishes every prior write of
    this thread to whoever load-acquires it (a lock release, a flag
    set). Timing-identical to a plain Store."""


@dataclass(slots=True)
class Prefetch:
    """Non-binding read-shared prefetch; resumes after the issue cost
    while the fill proceeds in the background."""

    addr: int


@dataclass(slots=True)
class FetchOp:
    """Atomic read-modify-write (``new = fn(old)``); resumes with the
    *old* value. Used for test-and-set locks and fetch-and-increment."""

    addr: int
    fn: Callable[[Any], Any]


@dataclass(slots=True)
class Send:
    """Describe and launch a message (paper §3). Blocking only for the
    describe/launch instruction sequence; delivery is asynchronous."""

    dst: int
    mtype: str
    operands: tuple[Any, ...] = ()
    blocks: list[BlockRef] = field(default_factory=list)


@dataclass(slots=True)
class Storeback:
    """Receive-side DMA scatter of the *current handler's* message
    block data to ``dma_addr``. Only legal inside a message handler."""

    dma_addr: int


@dataclass(slots=True)
class SetIMask:
    """Mask (True) or unmask (False) message interrupts."""

    masked: bool


@dataclass(slots=True)
class Fence:
    """Drain the store buffer (weak ordering's synchronization point).

    A no-op (1 cycle) when the processor runs sequentially consistent
    (``store_buffer_depth == 0``, the default) or the buffer is empty.
    """


@dataclass(slots=True)
class Suspend:
    """Block the current thread off the processor.

    ``register`` is called once with a ``resume(value)`` callable; some
    other agent (a future resolution, a reply handler) later invokes it
    to put the thread back on its processor's ready queue. Resumes with
    ``value``. Illegal in message handlers (they must run to
    completion).
    """

    register: Callable[[Callable[[Any], None]], None]


@dataclass(slots=True)
class Yield:
    """Politely go to the back of the ready queue (cooperative
    rescheduling point for long-running loops)."""


# ----------------------------------------------------------------------
# Macro-effects: one yield describes a whole hot loop. The processor's
# batch runner (repro.proc.batch) issues the per-element operations
# through the same coherence/completion machinery a hand-written loop
# would use, so simulated timing, interrupt points, stats, and checker
# observations are identical element for element — only the per-element
# generator resume, effect allocation, and dispatch lookup disappear.
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ComputeLoad:
    """Batched ``[Prefetch?] Load [Compute?]`` loop over a strided
    vector; resumes with the list of loaded values.

    Equivalent micro program::

        per_line = prefetch_line // stride
        for i in range(count):
            if per_line and i % per_line == 0 and (i + per_line) < count:
                yield Prefetch(base + (i + per_line) * stride)
            v = yield Load(base + i * stride)
            values.append(v)
            if compute:
                yield Compute(compute)

    ``prefetch_line = 0`` disables prefetching; ``compute = 0`` skips
    the per-element compute charge.
    """

    base: int
    count: int
    stride: int = 8
    compute: int = 0
    prefetch_line: int = 0

    def __post_init__(self) -> None:
        _check_batch(self.count, self.stride, self.compute, self.prefetch_line)


@dataclass(slots=True)
class LoadComputeStore:
    """Batched strided copy loop: ``Load src, Store dst, Compute``
    per element, optionally prefetching one ``prefetch_line`` ahead on
    both streams at line boundaries (the §4.4 copy loops). Resumes
    with None.

    Equivalent micro program::

        nbytes = count * stride
        for off in range(0, nbytes, stride):
            if prefetch_line and off % prefetch_line == 0 \\
                    and off + prefetch_line < nbytes:
                yield Prefetch(src + off + prefetch_line)
                yield Prefetch(dst + off + prefetch_line)
            v = yield Load(src + off)
            yield Store(dst + off, v)
            if compute:
                yield Compute(compute)
    """

    src: int
    dst: int
    count: int
    stride: int = 8
    compute: int = 0
    prefetch_line: int = 0

    def __post_init__(self) -> None:
        _check_batch(self.count, self.stride, self.compute, self.prefetch_line)


@dataclass(slots=True)
class StoreRun:
    """Batched strided store of ``values[i]`` to ``base + i * stride``
    (an edge/buffer publish loop). Resumes with None."""

    base: int
    values: Sequence[Any]
    stride: int = 8

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride}")


#: effect classes legal inside a :class:`Repeat` body
_REPEATABLE = (Compute, Load, LoadAcquire, Store, StoreRelease, Prefetch)


@dataclass(slots=True)
class Repeat:
    """Execute the fixed effect sequence ``body`` ``count`` times
    (element results are discarded; resumes with None). The general
    aggregate for hot loops whose body is not one of the specialized
    shapes above. ``body`` may contain Compute/Load/LoadAcquire/
    Store/StoreRelease/Prefetch effects only."""

    count: int
    body: tuple

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"negative repeat count {self.count}")
        self.body = tuple(self.body)
        for op in self.body:
            if not isinstance(op, _REPEATABLE):
                raise ValueError(
                    f"Repeat body may not contain {type(op).__name__} "
                    "(only Compute/Load/LoadAcquire/Store/StoreRelease/Prefetch)"
                )


@dataclass(slots=True)
class SpinUntilGE:
    """Batched acquire-spin: LoadAcquire ``addr`` until the value is
    ``>= threshold``, charging ``backoff`` compute cycles between
    polls; resumes with the final observed value.

    Equivalent micro program::

        while True:
            v = yield LoadAcquire(addr)
            if v >= threshold:
                return v
            if backoff:
                yield Compute(backoff)
    """

    addr: int
    threshold: int
    backoff: int = 0

    def __post_init__(self) -> None:
        if self.backoff < 0:
            raise ValueError(f"negative spin backoff {self.backoff}")


def _check_batch(count: int, stride: int, compute: int, prefetch_line: int) -> None:
    if count < 0:
        raise ValueError(f"negative batch count {count}")
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    if compute < 0:
        raise ValueError(f"negative compute {compute}")
    if prefetch_line < 0:
        raise ValueError(f"negative prefetch_line {prefetch_line}")
    if prefetch_line and prefetch_line % stride:
        raise ValueError(
            f"prefetch_line {prefetch_line} is not a multiple of stride {stride}"
        )


MACRO_EFFECTS = (ComputeLoad, LoadComputeStore, StoreRun, Repeat, SpinUntilGE)

Effect = (
    Compute | Load | Store | LoadAcquire | StoreRelease | Prefetch | FetchOp
    | Send | Storeback | SetIMask | Suspend | Yield | Fence
    | ComputeLoad | LoadComputeStore | StoreRun | Repeat | SpinUntilGE
)
