"""The effect "ISA" of simulated programs.

Simulated threads and message handlers are Python generators that
``yield`` effect objects; the :class:`~repro.proc.processor.Processor`
executes each effect, charges its cycle cost against the simulated
clock, and resumes the generator with the effect's result::

    def worker(a, b):
        x = yield Load(a)          # coherent shared-memory read
        yield Compute(10)          # 10 cycles of local work
        yield Store(b, x + 1)      # coherent shared-memory write
        return x

This mirrors the paper's machine interface: loads/stores/prefetches
are single instructions backed by coherence hardware; Send is the
CMMU's describe/launch sequence; Storeback drives the receive-side
DMA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cmmu.message import BlockRef


@dataclass
class Compute:
    """Occupy the processor for ``cycles`` of local work."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"negative compute {self.cycles}")


@dataclass
class Load:
    """Coherent shared-memory read; resumes with the loaded value."""

    addr: int


@dataclass
class Store:
    """Coherent shared-memory write of ``value`` to ``addr``."""

    addr: int
    value: Any


@dataclass
class LoadAcquire(Load):
    """A :class:`Load` annotated with acquire semantics for the
    dynamic checkers (``repro.check``): reading this word may publish
    another thread's prior writes (a lock word, a ready flag). The
    processor executes it exactly like a plain Load — the annotation
    carries zero timing meaning — but the happens-before race detector
    joins the releaser's clock instead of reporting a data race on the
    synchronization word itself."""


@dataclass
class StoreRelease(Store):
    """A :class:`Store` annotated with release semantics for the
    dynamic checkers: writing this word publishes every prior write of
    this thread to whoever load-acquires it (a lock release, a flag
    set). Timing-identical to a plain Store."""


@dataclass
class Prefetch:
    """Non-binding read-shared prefetch; resumes after the issue cost
    while the fill proceeds in the background."""

    addr: int


@dataclass
class FetchOp:
    """Atomic read-modify-write (``new = fn(old)``); resumes with the
    *old* value. Used for test-and-set locks and fetch-and-increment."""

    addr: int
    fn: Callable[[Any], Any]


@dataclass
class Send:
    """Describe and launch a message (paper §3). Blocking only for the
    describe/launch instruction sequence; delivery is asynchronous."""

    dst: int
    mtype: str
    operands: tuple[Any, ...] = ()
    blocks: list[BlockRef] = field(default_factory=list)


@dataclass
class Storeback:
    """Receive-side DMA scatter of the *current handler's* message
    block data to ``dma_addr``. Only legal inside a message handler."""

    dma_addr: int


@dataclass
class SetIMask:
    """Mask (True) or unmask (False) message interrupts."""

    masked: bool


@dataclass
class Fence:
    """Drain the store buffer (weak ordering's synchronization point).

    A no-op (1 cycle) when the processor runs sequentially consistent
    (``store_buffer_depth == 0``, the default) or the buffer is empty.
    """


@dataclass
class Suspend:
    """Block the current thread off the processor.

    ``register`` is called once with a ``resume(value)`` callable; some
    other agent (a future resolution, a reply handler) later invokes it
    to put the thread back on its processor's ready queue. Resumes with
    ``value``. Illegal in message handlers (they must run to
    completion).
    """

    register: Callable[[Callable[[Any], None]], None]


@dataclass
class Yield:
    """Politely go to the back of the ready queue (cooperative
    rescheduling point for long-running loops)."""


Effect = (
    Compute | Load | Store | LoadAcquire | StoreRelease | Prefetch | FetchOp
    | Send | Storeback | SetIMask | Suspend | Yield | Fence
)
