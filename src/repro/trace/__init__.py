"""Execution tracing (simulator-side hardware event probes)."""

from repro.trace.patch import PatchSet
from repro.trace.tracer import ALL_KINDS, TraceEvent, Tracer

__all__ = ["ALL_KINDS", "PatchSet", "TraceEvent", "Tracer"]
