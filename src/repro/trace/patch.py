"""Reversible instance-level monkey patching.

The tracer and the fault injector share one instrumentation contract:
they wrap methods *of one machine's component instances* so that an
instrumented machine runs modified paths while every other machine in
the process runs the exact original code. :class:`PatchSet` records
each installed wrapper so the whole set can be removed again, leaving
the instances in their pristine state (the wrapped attribute is
deleted, not overwritten, when the original lived on the class).

Wrappers from several PatchSets may stack on the same attribute; they
must then be removed in LIFO order, which :meth:`restore` enforces.
"""

from __future__ import annotations

from typing import Any, Callable


class PatchSet:
    """A group of instance-attribute patches that detach together."""

    def __init__(self) -> None:
        #: (obj, name, had_instance_attr, original, wrapper) per patch
        self._patches: list[tuple[Any, str, bool, Any, Any]] = []

    @property
    def active(self) -> bool:
        return bool(self._patches)

    def patch(self, obj: Any, name: str, make_wrapper: Callable[[Any], Any]) -> Any:
        """Replace ``obj.name`` with ``make_wrapper(original)``.

        Returns the wrapper. The original may be a bound method (class
        level) or an instance attribute; both restore correctly.
        """
        original = getattr(obj, name)
        had_instance_attr = name in vars(obj)
        wrapper = make_wrapper(original)
        setattr(obj, name, wrapper)
        self._patches.append((obj, name, had_instance_attr, original, wrapper))
        return wrapper

    def restore(self) -> None:
        """Remove every patch (idempotent).

        Raises ``RuntimeError`` if someone else wrapped an attribute
        on top of ours and has not detached yet — removing out of
        order would silently orphan their wrapper.
        """
        for obj, name, had_instance_attr, original, wrapper in reversed(self._patches):
            if getattr(obj, name) is not wrapper:
                raise RuntimeError(
                    f"cannot restore {type(obj).__name__}.{name}: another "
                    "wrapper was attached on top (detach in LIFO order)"
                )
            if had_instance_attr:
                setattr(obj, name, original)
            else:
                delattr(obj, name)
        self._patches.clear()
