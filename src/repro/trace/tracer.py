"""Execution tracing.

Attach a :class:`Tracer` to a machine to capture a timestamped event
stream — effects executed, packets injected, coherence transactions,
message-handler entries — for post-mortem analysis of an experiment
(the simulator-side equivalent of Alewife's hardware event probes).

The tracer wraps the relevant methods *of that machine's component
instances only*; an untraced machine runs exactly the original code,
and :meth:`Tracer.detach` removes the wrappers again so the machine
can be re-used untraced (``with Tracer(m) as t: ...`` detaches
automatically).

    tracer = Tracer(machine, kinds={"packet", "handler"})
    ... run ...
    print(tracer.summarize())
    tracer.to_jsonl("run.jsonl")

The ``"fault"`` kind is recorded by an attached
:class:`~repro.faults.FaultInjector`, not by the tracer's own wrappers.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Iterable

from repro.machine.machine import Machine
from repro.trace.patch import PatchSet

ALL_KINDS = frozenset(
    {"effect", "packet", "txn", "handler", "context", "fault", "check"}
)


@dataclass(slots=True)
class TraceEvent:
    # slots: traces routinely hold 10^6 events; slotted instances
    # measure ~27% smaller than dict-backed ones (152 MB -> 112 MB
    # per million events; see docs/OBSERVABILITY.md)
    time: int
    node: int
    kind: str
    what: str
    detail: str = ""

    def __str__(self) -> str:
        d = f" {self.detail}" if self.detail else ""
        return f"[{self.time:>10}] n{self.node:<3} {self.kind:<8} {self.what}{d}"


class Tracer:
    """Event recorder for one machine."""

    def __init__(
        self,
        machine: Machine,
        kinds: Iterable[str] | None = None,
        max_events: int = 1_000_000,
    ) -> None:
        kinds = set(kinds) if kinds is not None else set(ALL_KINDS)
        unknown = kinds - ALL_KINDS
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        self.machine = machine
        self.kinds = kinds
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._patches = PatchSet()
        self.attach()

    # ------------------------------------------------------------------
    def record(self, node: int, kind: str, what: str, detail: str = "") -> None:
        if kind not in self.kinds:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(self.machine.sim.now, node, kind, what, detail)
        )

    @property
    def attached(self) -> bool:
        return self._patches.active

    def attach(self) -> None:
        """Install the method wrappers (done by ``__init__``)."""
        if self.attached:
            raise RuntimeError("tracer is already attached")
        m = self.machine
        if "packet" in self.kinds:
            def make_traced_send(orig_send):
                def traced_send(packet):
                    self.record(
                        packet.src, "packet", packet.kind.value,
                        f"->{packet.dst} {packet.size_words}w",
                    )
                    return orig_send(packet)

                return traced_send

            self._patches.patch(m.network, "send", make_traced_send)
        if "txn" in self.kinds:
            def make_traced_access(orig_access):
                def traced_access(node, addr, kind, on_done):
                    self.record(node, "txn", kind.value, f"@{addr:#x}")
                    return orig_access(node, addr, kind, on_done)

                return traced_access

            self._patches.patch(m.coherence, "access", make_traced_access)
        for node_obj in m.nodes:
            proc = node_obj.processor
            if "effect" in self.kinds:
                def make_traced_execute(orig, proc=proc):
                    def traced(ctx, eff):
                        self.record(
                            proc.node, "effect", type(eff).__name__, ctx.label
                        )
                        return orig(ctx, eff)

                    return traced

                self._patches.patch(proc, "_execute", make_traced_execute)
            if "handler" in self.kinds:
                def make_traced_enter(orig, proc=proc):
                    def traced():
                        if proc.cmmu.in_queue:
                            msg = proc.cmmu.in_queue[0]
                            self.record(
                                proc.node, "handler", msg.mtype, f"from n{msg.src}"
                            )
                        return orig()

                    return traced

                self._patches.patch(proc, "_enter_handler", make_traced_enter)
            if "context" in self.kinds:
                def make_traced_run(orig, proc=proc):
                    def traced(gen, on_finish=None, label="", front=False):
                        ctx = orig(gen, on_finish=on_finish, label=label, front=front)
                        self.record(
                            proc.node, "context", "spawn", f"{ctx.cid}:{label}"
                        )
                        return ctx

                    return traced

                self._patches.patch(proc, "run_thread", make_traced_run)
            if "context" in self.kinds or "handler" in self.kinds:
                # end-of-life events so exporters can render duration
                # spans: handler return (closes the entry recorded by
                # ``_enter_handler``) and context finish (closes the
                # ``spawn`` with the same cid)
                def make_traced_finish(orig, proc=proc):
                    def traced(ctx, result):
                        if ctx.is_handler:
                            if "handler" in self.kinds:
                                self.record(
                                    proc.node, "handler",
                                    ctx.msg.mtype if ctx.msg else ctx.label,
                                    "return",
                                )
                        elif "context" in self.kinds:
                            self.record(
                                proc.node, "context", "finish",
                                f"{ctx.cid}:{ctx.label}",
                            )
                        return orig(ctx, result)

                    return traced

                self._patches.patch(proc, "_finish", make_traced_finish)

    def detach(self) -> None:
        """Remove the wrappers; the machine runs the original code
        again. Recorded events stay available. Idempotent."""
        self._patches.restore()

    def __enter__(self) -> Tracer:
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Queries and rendering
    # ------------------------------------------------------------------
    def filter(
        self,
        node: int | None = None,
        kind: str | None = None,
        since: int = 0,
        until: int | None = None,
    ) -> list[TraceEvent]:
        out = []
        for ev in self.events:
            if node is not None and ev.node != node:
                continue
            if kind is not None and ev.kind != kind:
                continue
            if ev.time < since:
                continue
            if until is not None and ev.time > until:
                continue
            out.append(ev)
        return out

    def timeline(self, node: int, limit: int = 50) -> str:
        lines = [str(ev) for ev in self.filter(node=node)[:limit]]
        return "\n".join(lines) if lines else f"(no events for node {node})"

    def summarize(self) -> str:
        by_kind = Counter(ev.kind for ev in self.events)
        by_what = Counter((ev.kind, ev.what) for ev in self.events)
        lines = [f"trace: {len(self.events)} events"
                 + (f" (+{self.dropped} dropped)" if self.dropped else "")]
        for kind, count in by_kind.most_common():
            lines.append(f"  {kind}: {count}")
            for (k, what), c in by_what.most_common():
                if k == kind and c > 1:
                    lines.append(f"    {what}: {c}")
        return "\n".join(lines)

    def to_jsonl(self, path: str) -> int:
        """Write the trace: a metadata line first (event/drop counts,
        so a consumer can tell a truncated capture from a complete
        one), then one JSON object per event. Returns the event count."""
        with open(path, "w") as fh:
            fh.write(json.dumps({"meta": {
                "events": len(self.events),
                "dropped": self.dropped,
                "max_events": self.max_events,
                "kinds": sorted(self.kinds),
                "complete": self.dropped == 0,
            }}) + "\n")
            for ev in self.events:
                fh.write(json.dumps(asdict(ev)) + "\n")
        return len(self.events)


def from_jsonl(path: str) -> tuple[list[TraceEvent], dict]:
    """Parse a :meth:`Tracer.to_jsonl` file back into events + meta.

    Tolerates traces written before the metadata line existed (every
    line is an event; meta comes back empty)."""
    events: list[TraceEvent] = []
    meta: dict = {}
    with open(path) as fh:
        for i, line in enumerate(fh):
            rec = json.loads(line)
            if i == 0 and "meta" in rec:
                meta = rec["meta"]
                continue
            events.append(TraceEvent(**rec))
    return events, meta
