"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    alewife-repro list
    alewife-repro run fig7
    alewife-repro run all
    alewife-repro run fig9 --nodes 16 --quick
    alewife-repro fig8_accum --metrics-out run.json --trace-out trace.json
    alewife-repro serve --port 8787 --store .repro_store
    alewife-repro submit fig8 --quick --wait --fetch-to out/
    alewife-repro status JOB_ID
    alewife-repro serve tail JOB_ID
    alewife-repro serve tail --all
    alewife-repro fetch JOB_ID run.json --out run.json

The last form is a convenience: an experiment id (``fig8``) or its
module basename (``fig8_accum``) given as the first argument implies
``run``. ``--metrics-out`` writes the machine-readable ``run.json``
manifest (parameters, metrics snapshot, cycle attribution, timings);
``--trace-out`` writes a Perfetto-loadable trace
(https://ui.perfetto.dev); ``--sample-interval N`` records a
time-series sample every N simulated cycles.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.tables import ExperimentResult, ascii_plot
from repro.experiments import ALL_EXPERIMENTS

#: trimmed parameterizations for --quick (CI-sized runs)
QUICK_ARGS = {
    "barrier": dict(n_nodes=16),
    "rti": dict(n_nodes=16, trials=3),
    "fig7": dict(block_sizes=(64, 256, 1024)),
    "fig8": dict(block_sizes=(64, 256, 1024)),
    "fig9": dict(delays=(0, 1000), depth=9, n_nodes=16),
    "fig10": dict(tols=(3e-3, 1e-3), n_nodes=16),
    "fig11": dict(grid_sizes=(32, 64), n_nodes=16, iters=3),
    "faults": dict(loss_rates=(0.0, 0.05), nbytes=512, n_nodes=16, episodes=2),
}

#: experiments that accept an ``n_nodes`` keyword
NODES_KW = {"barrier": "n_nodes", "rti": "n_nodes", "fig9": "n_nodes", "fig10": "n_nodes", "fig11": "n_nodes", "faults": "n_nodes"}


def _experiment_aliases() -> dict[str, str]:
    """Experiment ids plus their module basenames (``fig8_accum`` →
    ``fig8``), so ``python -m repro.cli fig8_accum ...`` implies
    ``run fig8 ...``."""
    aliases = {exp_id: exp_id for exp_id in ALL_EXPERIMENTS}
    for exp_id, fn in ALL_EXPERIMENTS.items():
        aliases[(fn.__module__ or "").rsplit(".", 1)[-1]] = exp_id
    return aliases


def _jsonable(value):
    """kwargs → JSON-safe (tuples become lists)."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def plot_result(res: ExperimentResult) -> str | None:
    """Render figure-style experiments as ASCII plots (paper axes)."""
    series: dict[str, list[tuple[float, float]]] = {}
    if res.exp_id in ("fig7", "fig8"):
        for r in res.rows:
            series.setdefault(r["implementation"], []).append(
                (r["block_bytes"], r["cycles"])
            )
        return ascii_plot(
            series, logx=True, logy=True,
            title=f"{res.title} — cycles vs block size (log-log)",
        )
    if res.exp_id == "fig9":
        for r in res.rows:
            series.setdefault("hybrid", []).append((r["delay_l"] + 1, r["speedup_hybrid"]))
            series.setdefault("sm-only", []).append((r["delay_l"] + 1, r["speedup_sm"]))
        return ascii_plot(series, title=f"{res.title} — speedup vs delay l")
    if res.exp_id == "fig10":
        for r in res.rows:
            series.setdefault("hybrid", []).append((r["seq_msec"], r["speedup_hybrid"]))
            series.setdefault("sm-only", []).append((r["seq_msec"], r["speedup_sm"]))
        return ascii_plot(
            series, logx=True, title=f"{res.title} — speedup vs problem size"
        )
    if res.exp_id == "faults":
        for r in res.rows:
            series.setdefault(r["workload"], []).append((r["drop_pct"], r["cycles"]))
        return ascii_plot(
            series, title=f"{res.title} — cycles vs drop rate (%)"
        )
    if res.exp_id == "fig11":
        for r in res.rows:
            side = int(r["grid"].split("x")[0])
            series.setdefault("shared-memory", []).append((side, r["cycles_per_iter_sm"]))
            series.setdefault("message-passing", []).append((side, r["cycles_per_iter_mp"]))
        return ascii_plot(
            series, logx=True, logy=True,
            title=f"{res.title} — cycles/iteration vs grid side",
        )
    return None


def run_experiment(
    exp_id: str,
    quick: bool = False,
    nodes: int | None = None,
    plot: bool = False,
    fault_rate: float | None = None,
    fault_seed: int | None = None,
    jobs: int | None = None,
    partitions: int | None = None,
    profile: bool = False,
    metrics_out: str | None = None,
    trace_out: str | None = None,
    sample_interval: int = 0,
    trace_kinds: str = "packet,handler,context",
    check: str | None = None,
) -> str:
    fn = ALL_EXPERIMENTS[exp_id]
    kwargs = dict(QUICK_ARGS[exp_id]) if quick else {}
    if jobs is not None:
        if jobs < 0:
            raise SystemExit(f"--jobs must be >= 0, got {jobs}")
        # 0 means "pick for me" (cpu count / REPRO_JOBS)
        kwargs["jobs"] = jobs if jobs > 0 else None
    if nodes is not None:
        kw = NODES_KW.get(exp_id)
        if kw is None:
            raise SystemExit(f"experiment {exp_id!r} does not take a node count")
        kwargs[kw] = nodes
    if partitions is not None:
        import inspect

        from repro.perf.partition import validate_partitions

        if "partitions" not in inspect.signature(fn).parameters:
            raise SystemExit(
                f"experiment {exp_id!r} does not support --partitions"
            )
        if check:
            raise SystemExit("--partitions cannot be combined with --check "
                             "(dynamic checkers need a global view)")
        nkw = NODES_KW.get(exp_id)
        n_for_plan = int(kwargs.get(nkw, 64)) if nkw else 64
        try:
            validate_partitions(partitions, n_for_plan)
        except ValueError as exc:
            raise SystemExit(f"--partitions: {exc}")
        kwargs["partitions"] = partitions
    if fault_rate is not None or fault_seed is not None:
        if exp_id != "faults":
            raise SystemExit(f"experiment {exp_id!r} does not take fault parameters")
        if fault_rate is not None:
            if not 0.0 <= fault_rate <= 1.0:
                raise SystemExit(f"--fault-rate must be in [0, 1], got {fault_rate}")
            kwargs["loss_rates"] = (0.0, fault_rate)
        if fault_seed is not None:
            kwargs["seed"] = fault_seed
    checks: tuple[str, ...] = ()
    if check:
        from repro.check import validate_checks

        try:
            checks = validate_checks(k for k in check.split(",") if k)
        except ValueError as exc:
            raise SystemExit(f"--check: {exc}")
    obs_cfg = None
    if metrics_out or trace_out or sample_interval or checks:
        from repro.obs.session import ObsConfig

        if sample_interval < 0:
            raise SystemExit(f"--sample-interval must be >= 0, got {sample_interval}")
        obs_cfg = ObsConfig(
            sample_interval=sample_interval,
            trace=bool(trace_out),
            trace_kinds=tuple(k for k in trace_kinds.split(",") if k),
            check=checks,
        )

    def invoke():
        if profile:
            from repro.perf import run_profiled

            return run_profiled(lambda: fn(**kwargs), label=exp_id)
        return fn(**kwargs), None

    t_wall = time.time()
    obs_data = None
    if obs_cfg is not None:
        from repro.obs.session import session as obs_session

        with obs_session(obs_cfg) as s:
            result, report = invoke()
            obs_data = s.data()
    else:
        result, report = invoke()
    wall = time.time() - t_wall

    out = result.format_table()
    if report is not None:
        out += "\n\n" + report.rstrip()
    if plot:
        fig = plot_result(result)
        if fig is not None:
            out += "\n\n" + fig
    if obs_data is not None:
        out += "\n" + _write_obs_outputs(
            exp_id, kwargs, wall, obs_data, metrics_out, trace_out
        )
        if checks:
            from repro.check import CheckReport

            report = CheckReport.from_dict(obs_data.get("check") or {})
            out += "\n" + report.summarize()
    return out


def _write_obs_outputs(
    exp_id: str,
    kwargs: dict,
    wall: float,
    data: dict,
    metrics_out: str | None,
    trace_out: str | None,
) -> str:
    """Render the observation outputs; returns status lines."""
    from repro.analysis.tables import format_table
    from repro.obs.export import export_perfetto, write_run_manifest
    from repro.obs.profiler import BUCKETS

    lines = []
    attr = data.get("cycle_attribution")
    if attr and attr["total_cycles"]:
        total = attr["total_cycles"]
        rows = [{
            "bucket": b,
            "cycles": cycles,
            "share": f"{100.0 * cycles / total:.1f}%",
        } for b in BUCKETS
            if (cycles := sum(rec["buckets"].get(b, 0)
                              for rec in attr["per_node"].values()))]
        lines.append(format_table(
            f"cycle attribution — {total:,} node-cycles over "
            f"{attr['machines']} machine(s)",
            ["bucket", "cycles", "share"], rows))
    if trace_out:
        n = export_perfetto(data["records"], trace_out)
        dropped = sum(r.get("trace_dropped", 0) for r in data["records"])
        note = f" ({dropped} events dropped at capture)" if dropped else ""
        lines.append(
            f"wrote {n} trace events -> {trace_out}{note} "
            "(load at https://ui.perfetto.dev)"
        )
    if metrics_out:
        timings = {
            "wall_seconds": round(wall, 3),
            "machines": len(data["records"]),
            "simulated_cycles": sum(r["cycles"] for r in data["records"]),
        }
        extra = {}
        if data.get("check") is not None:
            extra["check"] = data["check"]
        if data.get("cache") is not None:
            extra["cache"] = data["cache"]
        write_run_manifest(
            metrics_out,
            experiment=exp_id,
            params=_jsonable(kwargs),
            timings=timings,
            metrics=data["metrics"],
            cycle_attribution=data["cycle_attribution"],
            samples=[r["samples"] for r in data["records"] if "samples" in r],
            **extra,
        )
        n_rows = len(data["metrics"]["rows"]) if data["metrics"] else 0
        lines.append(f"wrote run manifest ({n_rows} metric rows) -> {metrics_out}")
    if data.get("cache"):
        c = data["cache"]
        lines.append(
            f"run cache: {c.get('hits', 0)} hits, {c.get('misses', 0)} misses "
            f"({c.get('invalidations', 0)} invalidated)"
        )
    return "\n".join(lines)


def run_demo() -> str:
    """An instrumented end-to-end run: 16-node machine, hybrid runtime,
    a fork/join tree, with the tracer and machine report attached."""
    from repro.analysis.report import collect
    from repro.apps.grain import grain_parallel, sequential_cycles
    from repro.machine import Machine, MachineConfig
    from repro.runtime import Runtime
    from repro.trace import Tracer

    m = Machine(MachineConfig(n_nodes=16))
    tracer = Tracer(m, kinds={"packet", "handler"})
    rt = Runtime(m, scheduler="hybrid")
    result, cycles = rt.run_to_completion(
        0, lambda rt, nd: grain_parallel(rt, nd, 9, 100)
    )
    seq = sequential_cycles(9, 100)
    att, won = rt.total_steals()
    out = [
        "demo: grain(n=9, l=100) on 16 nodes, hybrid scheduler",
        f"  result={result}  cycles={cycles:,}  speedup={seq / cycles:.1f}  "
        f"steals={won}/{att}",
        "",
        collect(m).format(),
        "",
        tracer.summarize(),
    ]
    return "\n".join(out)


def print_version() -> int:
    """``--version``: package version plus the current code
    fingerprint (what the run cache and run store key against)."""
    import repro
    from repro.perf.cache import repo_fingerprint

    print(f"alewife-repro {repro.__version__}")
    print(f"code fingerprint: {repo_fingerprint()}")
    return 0


# ----------------------------------------------------------------------
# serve / submit / status / fetch (the repro.serve client surface)
# ----------------------------------------------------------------------
def _build_spec(args: argparse.Namespace) -> dict:
    if args.experiment == "fuzz":
        # campaign job: {"fuzz": {"seeds": ..., "budget": ...}}
        body = {}
        if args.params:
            import json

            try:
                body = json.loads(args.params)
            except ValueError as exc:
                raise SystemExit(f"--params is not valid JSON: {exc}")
        for flag in ("quick", "nodes", "trace", "sample_interval", "check",
                     "partitions"):
            if getattr(args, flag, None):
                raise SystemExit(f"--{flag.replace('_', '-')} does not apply "
                                 "to fuzz campaigns; use --params")
        return {"fuzz": body}
    spec: dict = {"experiment": args.experiment}
    if args.quick:
        spec["quick"] = True
    if args.nodes is not None:
        spec["nodes"] = args.nodes
    if args.params:
        import json

        try:
            params = json.loads(args.params)
        except ValueError as exc:
            raise SystemExit(f"--params is not valid JSON: {exc}")
        spec["params"] = params
    if args.trace:
        spec["trace"] = True
    if args.sample_interval:
        spec["sample_interval"] = args.sample_interval
    if args.check:
        spec["check"] = [k for k in args.check.split(",") if k]
    if getattr(args, "partitions", None) is not None:
        spec["partitions"] = args.partitions
    return spec


def _job_line(job: dict) -> str:
    wall = ""
    if job.get("run_seconds") is not None:
        wall = f" wall={job['run_seconds']:.2f}s"
    elif job.get("started") and job.get("finished"):
        wall = f" wall={job['finished'] - job['started']:.2f}s"
    progress = job.get("progress") or {}
    prog = ""
    if progress.get("total"):
        prog = f" progress={progress.get('done', 0)}/{progress['total']}"
    return (
        f"job {job['id']} state={job['state']} "
        f"dedup={str(job['dedup']).lower()} priority={job['priority']}"
        f"{prog}{wall} key={job['key'][:16]}…"
    )


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.server)
    spec = _build_spec(args)
    try:
        job = client.submit(spec, priority=args.priority)
        print(_job_line(job))
        if args.wait and job["state"] not in ("done", "failed", "cancelled"):
            job = client.wait(job["id"], timeout=args.timeout)
            print(_job_line(job))
        if job["state"] == "failed":
            print(job.get("error") or "job failed", end="")
            return 1
        if args.fetch_to and job["state"] == "done":
            import pathlib

            out = pathlib.Path(args.fetch_to)
            out.mkdir(parents=True, exist_ok=True)
            for name in client.artifacts(job["id"])["artifacts"]:
                (out / name).write_bytes(client.fetch(job["id"], name))
                print(f"fetched {name} -> {out / name}")
    except (ServeError, TimeoutError, OSError) as exc:
        raise SystemExit(f"submit failed: {exc}")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.server)
    try:
        if args.job_id:
            print(_job_line(client.status(args.job_id)))
        else:
            health = client.health()
            print(
                f"repro-serve {health['version']} up "
                f"{health['uptime_seconds']:.0f}s — queue depth "
                f"{health['queue_depth']}, jobs {health['jobs']}"
            )
            for job in client.jobs():
                print(_job_line(job))
    except (ServeError, OSError) as exc:
        raise SystemExit(f"status failed: {exc}")
    return 0


def _event_line(event: dict) -> str:
    """One terminal line per SSE event."""
    etype = event.get("event", "message")
    if etype == "snapshot":
        job = event.get("job") or {}
        pos = event.get("queue_position")
        line = f"snapshot job={job.get('id')} state={job.get('state')}"
        if pos:
            line += f" queue_position={pos}"
        progress = job.get("progress")
        if progress:
            line += f" progress={progress.get('done')}/{progress.get('total')}"
        return line
    if etype == "progress":
        line = f"progress {event.get('done')}/{event.get('total')}"
        if event.get("point"):
            line += f" point={event['point']}"
        if event.get("cache_hits"):
            line += f" cache_hits={event['cache_hits']}"
        return line
    if etype == "heartbeat":
        pos = event.get("queue_position")
        return f"heartbeat{f' queue_position={pos}' if pos else ''}"
    parts = [etype]
    for key in ("job", "priority", "dedup", "error"):
        value = event.get(key)
        if value not in (None, False, ""):
            parts.append(f"{key}={value}")
    return " ".join(parts)


def cmd_tail(args: argparse.Namespace) -> int:
    """Follow one job's SSE event stream (or, with ``--all``, poll
    every job and print each state/progress change)."""
    from repro.serve.client import (
        TERMINAL_STATES,
        ServeClient,
        ServeError,
    )

    if bool(args.job_id) == bool(args.all):
        raise SystemExit("tail: give a JOB_ID or --all (not both)")
    client = ServeClient(args.server)
    try:
        if args.job_id:
            state = None
            for event in client.events(args.job_id, timeout=args.timeout):
                print(_event_line(event), flush=True)
                if event.get("event") == "snapshot":
                    state = (event.get("job") or {}).get("state")
                elif event.get("event") in TERMINAL_STATES:
                    state = event["event"]
            return 1 if state == "failed" else 0
        seen: dict[str, tuple] = {}
        while True:
            jobs = client.jobs()
            for job in jobs:
                progress = job.get("progress") or {}
                mark = (job["state"], progress.get("done"))
                if seen.get(job["id"]) != mark:
                    seen[job["id"]] = mark
                    print(_job_line(job), flush=True)
            if jobs and all(
                j["state"] in TERMINAL_STATES for j in jobs
            ):
                return 0
            time.sleep(args.poll)
    except KeyboardInterrupt:
        return 0
    except (ServeError, OSError) as exc:
        raise SystemExit(f"tail failed: {exc}")


def cmd_fetch(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.server)
    try:
        blob = client.fetch(args.job_id, args.artifact)
    except (ServeError, OSError) as exc:
        raise SystemExit(f"fetch failed: {exc}")
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(blob)
        print(f"fetched {args.artifact} -> {args.out}")
    else:
        sys.stdout.write(blob.decode(errors="replace"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="alewife-repro",
        description="Reproduce the tables and figures of the PPoPP'93 "
        "Alewife message-passing/shared-memory integration paper.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("list", help="list the available experiments")
    sub.add_parser(
        "demo",
        help="run a small instrumented fork/join workload and print the "
        "machine report and a trace summary",
    )
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", choices=[*ALL_EXPERIMENTS, "all"])
    runp.add_argument("--quick", action="store_true", help="CI-sized parameters")
    runp.add_argument("--nodes", type=int, default=None, help="override machine size")
    runp.add_argument("--plot", action="store_true", help="render an ASCII figure too")
    runp.add_argument(
        "--fault-rate", type=float, default=None,
        help="packet drop probability for the faults experiment "
        "(runs loss rates 0 and this value)",
    )
    runp.add_argument(
        "--fault-seed", type=int, default=None,
        help="fault-injection RNG seed for the faults experiment",
    )
    runp.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan sweep points out over N worker processes "
        "(0 = auto; results are byte-identical at any job count)",
    )
    runp.add_argument(
        "--partitions", type=int, default=None, metavar="K",
        help="split each run's machine across K shard worker processes "
        "(node-range partitioning with conservative lookahead; "
        "parallelism *within* a run, for 1024+ node machines)",
    )
    runp.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top functions per experiment",
    )
    runp.add_argument(
        "--metrics-out", default=None, metavar="RUN_JSON",
        help="write the machine-readable run manifest (params, metrics "
        "snapshot, cycle attribution, timings) to this path",
    )
    runp.add_argument(
        "--trace-out", default=None, metavar="TRACE_JSON",
        help="record a trace and write it as Perfetto-loadable Chrome "
        "trace-event JSON (open at https://ui.perfetto.dev)",
    )
    runp.add_argument(
        "--sample-interval", type=int, default=0, metavar="CYCLES",
        help="record a time-series sample (in-flight packets, link "
        "utilization, hit rate, queue depth) every N simulated cycles",
    )
    runp.add_argument(
        "--trace-kinds", default="packet,handler,context", metavar="K1,K2",
        help="comma-separated trace kinds for --trace-out "
        "(default: packet,handler,context)",
    )
    runp.add_argument(
        "--check", default=None, metavar="C1,C2",
        help="attach dynamic checkers (race,coherence,deadlock); "
        "findings are printed, and written into --metrics-out "
        "manifests for 'python -m repro.check' to gate on",
    )
    runp.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="run-cache location (default: $REPRO_CACHE_DIR or "
        "'.repro_cache'); hits replay previous deterministic results "
        "bit-identically",
    )
    runp.add_argument(
        "--no-cache", action="store_true",
        help="disable the run cache: recompute every sweep point",
    )
    runp.add_argument(
        "--cache-stats", action="store_true",
        help="print run-cache hit/miss/invalidation counters at the end",
    )

    servep = sub.add_parser(
        "serve",
        help="run the simulation service daemon (REST job API over the "
        "orchestrator + run store; see docs/SERVICE.md)",
    )
    servep.add_argument("--host", default="127.0.0.1")
    servep.add_argument("--port", type=int, default=8787)
    servep.add_argument(
        "--store", default=None, metavar="DIR",
        help="run-store location (default: $REPRO_STORE_DIR or '.repro_store')",
    )
    servep.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared run-cache location (default: $REPRO_CACHE_DIR or "
        "'.repro_cache')",
    )
    servep.add_argument("--no-cache", action="store_true",
                        help="run jobs without the point-level run cache")
    servep.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="concurrent job worker threads (default: 1)",
    )
    servep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="sweep worker-pool width each job may fan out over",
    )
    servep.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")
    servep.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error"],
        help="daemon log level (default: info; --verbose implies debug)",
    )
    servep.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="append structured daemon logs here instead of stderr",
    )
    servep.add_argument(
        "--journal", default=None, metavar="PATH",
        help="job journal location (default: <store>/journal.jsonl); "
        "queued jobs are replayed from it on startup",
    )

    client_common = argparse.ArgumentParser(add_help=False)
    client_common.add_argument(
        "--server", default=None, metavar="URL",
        help="service URL (default: $REPRO_SERVE_URL or "
        "http://127.0.0.1:8787)",
    )
    subp = sub.add_parser("submit", parents=[client_common],
                          help="submit an experiment job to the service")
    subp.add_argument("experiment", choices=list(ALL_EXPERIMENTS) + ["fuzz"],
                      help="experiment id, or 'fuzz' for a fuzzing campaign")
    subp.add_argument("--quick", action="store_true", help="CI-sized parameters")
    subp.add_argument("--nodes", type=int, default=None)
    subp.add_argument(
        "--params", default=None, metavar="JSON",
        help="driver kwargs as a JSON object, "
        "e.g. '{\"block_sizes\": [64, 256]}'",
    )
    subp.add_argument("--priority", type=int, default=0,
                      help="higher runs first (default: 0)")
    subp.add_argument("--trace", action="store_true",
                      help="capture a Perfetto trace artifact")
    subp.add_argument("--sample-interval", type=int, default=0, metavar="CYCLES")
    subp.add_argument(
        "--partitions", type=int, default=None, metavar="K",
        help="split each run's machine across K shard workers on the server",
    )
    subp.add_argument("--check", default=None, metavar="C1,C2",
                      help="attach dynamic checkers (race,coherence,deadlock)")
    subp.add_argument("--wait", action="store_true",
                      help="poll until the job finishes")
    subp.add_argument("--timeout", type=float, default=None, metavar="SEC")
    subp.add_argument("--fetch-to", default=None, metavar="DIR",
                      help="after --wait, download every artifact here")

    statp = sub.add_parser("status", parents=[client_common],
                           help="service health and job states")
    statp.add_argument("job_id", nargs="?", default=None)

    tailp = sub.add_parser(
        "tail", parents=[client_common],
        help="follow a job's live event stream (also reachable as "
        "'serve tail'); --all polls every job for state changes",
    )
    tailp.add_argument("job_id", nargs="?", default=None)
    tailp.add_argument("--all", action="store_true",
                       help="follow every job until all are terminal")
    tailp.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="stop following a single job after SEC seconds")
    tailp.add_argument("--poll", type=float, default=1.0, metavar="SEC",
                       help="poll interval for --all (default: 1.0)")

    fetchp = sub.add_parser("fetch", parents=[client_common],
                            help="download one artifact of a finished job")
    fetchp.add_argument("job_id")
    fetchp.add_argument("artifact",
                        help="run.json | report.txt | table.json | trace.json")
    fetchp.add_argument("--out", default=None, metavar="PATH",
                        help="write here instead of stdout")

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "--version":
        return print_version()
    # 'python -m repro.cli fig8_accum ...': an experiment id or module
    # basename in subcommand position implies 'run'
    if argv and argv[0] in _experiment_aliases():
        argv = ["run", _experiment_aliases()[argv[0]], *argv[1:]]
    # 'serve tail ...' is the documented spelling of 'tail ...'
    if argv[:2] == ["serve", "tail"]:
        argv = ["tail", *argv[2:]]
    args = parser.parse_args(argv)

    if args.cmd == "list":
        for exp_id, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__module__ or "").rsplit(".", 1)[-1]
            print(f"{exp_id:<8} {doc}")
        return 0

    if args.cmd == "demo":
        print(run_demo())
        return 0

    if args.cmd == "serve":
        from repro.serve.server import serve

        return serve(
            host=args.host, port=args.port, store_dir=args.store,
            cache_dir=args.cache_dir, no_cache=args.no_cache,
            workers=args.workers, jobs=args.jobs, verbose=args.verbose,
            log_level=args.log_level, log_file=args.log_file,
            journal_path=args.journal,
        )

    if args.cmd == "submit":
        return cmd_submit(args)
    if args.cmd == "status":
        return cmd_status(args)
    if args.cmd == "tail":
        return cmd_tail(args)
    if args.cmd == "fetch":
        return cmd_fetch(args)

    targets = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.experiment == "all" and (args.metrics_out or args.trace_out):
        raise SystemExit(
            "--metrics-out/--trace-out write one file per run; "
            "pick a single experiment instead of 'all'"
        )
    from repro.perf.cache import RunCache, activate

    cache = None if args.no_cache else RunCache(args.cache_dir)
    with activate(cache):
        for exp_id in targets:
            t0 = time.time()
            print(
                run_experiment(
                    exp_id,
                    quick=args.quick,
                    nodes=args.nodes,
                    plot=args.plot,
                    fault_rate=args.fault_rate,
                    fault_seed=args.fault_seed,
                    jobs=args.jobs,
                    partitions=args.partitions,
                    profile=args.profile,
                    metrics_out=args.metrics_out,
                    trace_out=args.trace_out,
                    sample_interval=args.sample_interval,
                    trace_kinds=args.trace_kinds,
                    check=args.check,
                )
            )
            print(f"[{exp_id} took {time.time() - t0:.1f}s wall]\n")
    if args.cache_stats:
        if cache is None:
            print("run cache: disabled (--no-cache)")
        else:
            print(f"run cache [{cache.root}]: {cache.stats.summary()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
