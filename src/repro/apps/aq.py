"""``aq`` (paper §4.5, Fig. 10): adaptive quadrature of a bivariate
function over a rectangular domain.

Recursive divide-and-conquer: estimate the integral over a rectangle
with a coarse rule and with a refined (2x2 subrectangle) rule; where
the two disagree by more than a tolerance, subdivide and recurse.
The integrand has sharply varying regions, so the call tree is
irregular — exactly the dynamic behaviour the paper uses to stress
the scheduler. Problem size is scaled by tightening the tolerance
(the paper: "changing the threshold for what is to be considered
sufficiently smooth").

The numeric result is real (midpoint rules over actual function
values) and is validated against scipy in the tests.
"""

from __future__ import annotations

import math
from typing import Callable, Generator

from repro.proc.effects import Compute

#: cycles charged per integrand evaluation (transcendental math on a
#: 33 MHz Sparcle)
EVAL_COST = 30
#: bookkeeping per recursion node (estimates, comparison, call overhead)
NODE_COST = 40


def default_integrand(x: float, y: float) -> float:
    """Smooth background plus a sharp off-center ridge: forces deep
    refinement in a small part of the domain (irregular call tree)."""
    return math.sin(3.0 * x) * math.cos(2.0 * y) + 5.0 / (
        1.0 + 400.0 * ((x - 0.3) ** 2 + (y - 0.6) ** 2)
    )


def _coarse(f: Callable, x0: float, y0: float, x1: float, y1: float) -> float:
    """One-point midpoint rule."""
    return f((x0 + x1) / 2, (y0 + y1) / 2) * (x1 - x0) * (y1 - y0)


def _refined(f: Callable, x0: float, y0: float, x1: float, y1: float) -> float:
    """2x2 midpoint rule."""
    xm, ym = (x0 + x1) / 2, (y0 + y1) / 2
    return (
        _coarse(f, x0, y0, xm, ym)
        + _coarse(f, xm, y0, x1, ym)
        + _coarse(f, x0, ym, xm, y1)
        + _coarse(f, xm, ym, x1, y1)
    )


def _quads(x0, y0, x1, y1):
    xm, ym = (x0 + x1) / 2, (y0 + y1) / 2
    return (
        (x0, y0, xm, ym),
        (xm, y0, x1, ym),
        (x0, ym, xm, y1),
        (xm, ym, x1, y1),
    )


def aq_sequential(
    f: Callable,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    tol: float,
    max_depth: int = 30,
) -> Generator:
    """Plain recursion (speedup baseline); returns the integral."""
    yield Compute(NODE_COST + 5 * EVAL_COST)  # coarse + refined rules
    coarse = _coarse(f, x0, y0, x1, y1)
    refined = _refined(f, x0, y0, x1, y1)
    if abs(refined - coarse) <= tol or max_depth == 0:
        return refined
    total = 0.0
    for qx0, qy0, qx1, qy1 in _quads(x0, y0, x1, y1):
        part = yield from aq_sequential(f, qx0, qy0, qx1, qy1, tol / 4, max_depth - 1)
        total += part
    return total


def aq_parallel(
    rt,
    node: int,
    f: Callable,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    tol: float,
    max_depth: int = 30,
) -> Generator:
    """Lazy-task-creation version: fork three subrectangles, recurse
    into the fourth, join."""
    yield Compute(NODE_COST + 5 * EVAL_COST)
    coarse = _coarse(f, x0, y0, x1, y1)
    refined = _refined(f, x0, y0, x1, y1)
    if abs(refined - coarse) <= tol or max_depth == 0:
        return refined
    quads = _quads(x0, y0, x1, y1)
    futures = []
    for qx0, qy0, qx1, qy1 in quads[:3]:
        fut = yield from rt.fork(
            node,
            lambda rt, nd, q=(qx0, qy0, qx1, qy1): aq_parallel(
                rt, nd, f, q[0], q[1], q[2], q[3], tol / 4, max_depth - 1
            ),
        )
        futures.append(fut)
    qx0, qy0, qx1, qy1 = quads[3]
    total = yield from aq_parallel(rt, node, f, qx0, qy0, qx1, qy1, tol / 4, max_depth - 1)
    for fut in reversed(futures):
        part = yield from rt.join(node, fut)
        total += part
    return total


def count_nodes(
    f: Callable, x0: float, y0: float, x1: float, y1: float, tol: float, max_depth: int = 30
) -> int:
    """Size of the recursion tree (diagnostics / problem-size scaling)."""
    coarse = _coarse(f, x0, y0, x1, y1)
    refined = _refined(f, x0, y0, x1, y1)
    if abs(refined - coarse) <= tol or max_depth == 0:
        return 1
    return 1 + sum(
        count_nodes(f, *q, tol / 4, max_depth - 1) for q in _quads(x0, y0, x1, y1)
    )


def sequential_cycles(
    f: Callable, x0: float, y0: float, x1: float, y1: float, tol: float, max_depth: int = 30
) -> int:
    """Analytic sequential running time."""
    return count_nodes(f, x0, y0, x1, y1, tol, max_depth) * (NODE_COST + 5 * EVAL_COST)
