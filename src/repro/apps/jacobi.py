"""``jacobi`` (paper §4.6, Fig. 11): block-partitioned Jacobi SOR.

The G x G grid is partitioned into square blocks, one per processor
(mapped onto the machine mesh so grid neighbours are mesh
neighbours). Each iteration a node (1) writes its four edges, (2)
exchanges edges with its neighbours, and (3) relaxes its block.

Interior arithmetic is identical in both variants and is charged as a
single Compute per iteration (``POINT_COST`` cycles/point) with the
actual numerics done in numpy — only the *communication* differs,
which is precisely the comparison Fig. 11 makes:

* Shared-memory variant: neighbours read my edge arrays with plain
  coherent loads (no prefetching, per the paper); my next-iteration
  edge writes pay invalidation traffic.
* Message-passing variant: each edge is pushed to the neighbour's
  halo buffer with the §4.4 bulk-transfer mechanism.

Numeric results of both variants are bit-identical to a sequential
numpy reference (see tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.machine.machine import Machine
from repro.proc.effects import (
    Compute,
    ComputeLoad,
    Load,
    LoadAcquire,
    SpinUntilGE,
    Store,
    StoreRelease,
    StoreRun,
)
from repro.runtime.bulk import BulkTransfer
from repro.runtime.reduce import MPTreeReduce

#: cycles per grid-point relaxation (loads from cache + FP blend)
POINT_COST = 8
#: directions, with (dx, dy) in block coordinates
DIRS = {"N": (0, -1), "S": (0, 1), "W": (-1, 0), "E": (1, 0)}
_OPP = {"N": "S", "S": "N", "W": "E", "E": "W"}


def initial_grid(g: int) -> np.ndarray:
    """Deterministic initial condition: hot west edge, cold elsewhere."""
    grid = np.zeros((g, g), dtype=np.float64)
    grid[:, 0] = 100.0
    grid[0, :] = np.linspace(100.0, 0.0, g)
    return grid


def reference_jacobi(grid: np.ndarray, iters: int, omega: float = 0.9) -> np.ndarray:
    """Sequential numpy reference (fixed Dirichlet boundary)."""
    cur = grid.astype(np.float64).copy()
    for _ in range(iters):
        nxt = cur.copy()
        nxt[1:-1, 1:-1] = (1.0 - omega) * cur[1:-1, 1:-1] + (omega / 4.0) * (
            cur[:-2, 1:-1] + cur[2:, 1:-1] + cur[1:-1, :-2] + cur[1:-1, 2:]
        )
        cur = nxt
    return cur


@dataclass
class _NodeState:
    """Per-node block plus simulated-memory addresses for its edges."""

    bx: int
    by: int
    block: np.ndarray  # (B+2, B+2) with halo ring
    edge_addr: dict[str, tuple] = field(default_factory=dict)  # my edges (others read)
    halo_addr: dict[str, tuple] = field(default_factory=dict)  # MP: incoming halo buffers
    flag_addr: dict[str, int] = field(default_factory=dict)  # SM: edge-ready flags
    neighbors: dict[str, int] = field(default_factory=dict)  # dir -> node id


class JacobiApp:
    """Distributed Jacobi SOR on a Machine; drive with :meth:`node_thread`."""

    def __init__(
        self,
        machine: Machine,
        grid_size: int,
        iters: int,
        mode: str = "sm",
        omega: float = 0.9,
        converge_eps: float | None = None,
        macro: bool = True,
    ) -> None:
        """``iters`` bounds the iteration count; with ``converge_eps``
        set, nodes additionally all-reduce their residual each
        iteration (a real solver's stopping test) and stop early once
        the global max-residual drops below eps. ``macro`` batches the
        edge-publish, flag-spin and halo-read loops into macro-effects
        (cycle-identical; False keeps the per-element loops for the
        ablation and identity tests)."""
        if mode not in ("sm", "mp"):
            raise ValueError(f"mode must be 'sm' or 'mp', got {mode!r}")
        self.machine = machine
        self.mode = mode
        self.macro = macro
        self.iters = iters
        self.omega = omega
        self.converge_eps = converge_eps
        mesh = machine.mesh
        self.px, self.py = mesh.width, mesh.height
        if grid_size % self.px or grid_size % self.py:
            raise ValueError(
                f"grid {grid_size} not divisible by mesh {self.px}x{self.py}"
            )
        self.g = grid_size
        self.bx_size = grid_size // self.px
        self.by_size = grid_size // self.py
        if self.bx_size != self.by_size:
            raise ValueError("non-square blocks unsupported (use a square mesh)")
        self.b = self.bx_size
        self.grid0 = initial_grid(grid_size)

        self.states: list[_NodeState] = []
        for node in range(machine.n_nodes):
            c = mesh.coord(node)
            st = _NodeState(bx=c.x, by=c.y, block=self._init_block(c.x, c.y))
            for d, (dx, dy) in DIRS.items():
                nx, ny = c.x + dx, c.y + dy
                if 0 <= nx < self.px and 0 <= ny < self.py:
                    st.neighbors[d] = ny * self.px + nx
            for d in st.neighbors:
                # Edge and halo buffers are double-buffered by
                # iteration parity: a fast neighbour may produce
                # iteration t+1 before this node finished consuming
                # iteration t.
                st.edge_addr[d] = (
                    machine.alloc(node, self.b * 8),
                    machine.alloc(node, self.b * 8),
                )
                st.halo_addr[d] = (
                    machine.alloc(node, self.b * 8),
                    machine.alloc(node, self.b * 8),
                )
                # SM neighbour sync: "my edge for direction d is ready
                # up to iteration <value>" (homed here; neighbour spins)
                st.flag_addr[d] = machine.alloc(node, 8)
            self.states.append(st)

        self.bulk = BulkTransfer(machine) if mode == "mp" else None
        self.reduce = (
            MPTreeReduce(machine, max, fanout=8)
            if converge_eps is not None and machine.n_nodes > 1
            else None
        )
        self.converged_at: int | None = None
        self._iter_done: list[int] = [0] * machine.n_nodes

    # ------------------------------------------------------------------
    def _init_block(self, bx: int, by: int) -> np.ndarray:
        b = self.g // self.px
        blk = np.zeros((b + 2, b + 2), dtype=np.float64)
        blk[1:-1, 1:-1] = self.grid0[
            by * b : (by + 1) * b, bx * b : (bx + 1) * b
        ]
        return blk

    def _edge_values(self, st: _NodeState, d: str) -> np.ndarray:
        """My outgoing edge in direction ``d`` (row-index = y)."""
        if d == "N":
            return st.block[1, 1:-1]
        if d == "S":
            return st.block[-2, 1:-1]
        if d == "W":
            return st.block[1:-1, 1]
        return st.block[1:-1, -2]

    def _set_halo(self, st: _NodeState, d: str, values: np.ndarray) -> None:
        """Install the neighbour's edge as my halo in direction ``d``."""
        if d == "N":
            st.block[0, 1:-1] = values
        elif d == "S":
            st.block[-1, 1:-1] = values
        elif d == "W":
            st.block[1:-1, 0] = values
        else:
            st.block[1:-1, -1] = values

    def _relax(self, st: _NodeState) -> float:
        blk = st.block
        new = blk.copy()
        new[1:-1, 1:-1] = (1.0 - self.omega) * blk[1:-1, 1:-1] + (self.omega / 4.0) * (
            blk[:-2, 1:-1] + blk[2:, 1:-1] + blk[1:-1, :-2] + blk[1:-1, 2:]
        )
        # Dirichlet condition: cells on the *global* boundary stay fixed
        if st.by == 0:
            new[1, 1:-1] = blk[1, 1:-1]
        if st.by == self.py - 1:
            new[-2, 1:-1] = blk[-2, 1:-1]
        if st.bx == 0:
            new[1:-1, 1] = blk[1:-1, 1]
        if st.bx == self.px - 1:
            new[1:-1, -2] = blk[1:-1, -2]
        residual = float(np.abs(new[1:-1, 1:-1] - blk[1:-1, 1:-1]).max())
        st.block = new
        return residual

    # ------------------------------------------------------------------
    # The per-node SPMD thread
    # ------------------------------------------------------------------
    def node_thread(self, node: int) -> Generator:
        st = self.states[node]
        for it in range(self.iters):
            parity = it & 1
            # 1. publish my edges (identical cost in both variants)
            for d in st.neighbors:
                vals = self._edge_values(st, d)
                base = st.edge_addr[d][parity]
                if self.macro:
                    yield StoreRun(base, [float(v) for v in vals])
                else:
                    for i, v in enumerate(vals):
                        yield Store(base + i * 8, float(v))
            # 2. exchange
            if self.mode == "sm":
                yield from self._exchange_sm(node, st, it)
            else:
                yield from self._exchange_mp(node, st, it)
            # 3. relax
            yield Compute(self.b * self.b * POINT_COST)
            residual = self._relax(st)
            self._iter_done[node] = it + 1
            # 4. optional global convergence test (max-residual
            #    all-reduce — synchronization and data in one tree)
            if self.converge_eps is not None:
                if self.reduce is not None:
                    residual = yield from self.reduce.reduce(node, residual, max)
                if residual < self.converge_eps:
                    if node == 0:
                        self.converged_at = it + 1
                    break
        return float(np.sum(st.block[1:-1, 1:-1]))

    def _exchange_sm(self, node: int, st: _NodeState, it: int) -> Generator:
        """Neighbour flag sync: announce my edges, spin on each
        neighbour's flag, read its edge array with coherent loads.

        Double-buffered edges make a global barrier unnecessary: by
        the time I overwrite my parity-p edge at iteration t+2, every
        neighbour has necessarily consumed iteration t (it could not
        have produced its t+1 edge otherwise).
        """
        parity = it & 1
        for d in st.neighbors:
            yield StoreRelease(st.flag_addr[d], it + 1)
        for d, nbr in st.neighbors.items():
            nbr_st = self.states[nbr]
            if self.macro:
                yield SpinUntilGE(nbr_st.flag_addr[_OPP[d]], it + 1, backoff=8)
            else:
                while True:
                    flag = yield LoadAcquire(nbr_st.flag_addr[_OPP[d]])
                    if flag >= it + 1:
                        break
                    yield Compute(8)
            base = nbr_st.edge_addr[_OPP[d]][parity]
            vals = yield from self._read_edge(base)
            self._set_halo(st, d, vals)

    def _exchange_mp(self, node: int, st: _NodeState, it: int) -> Generator:
        # push my edges into the neighbours' halo buffers
        parity = it & 1
        for d, nbr in st.neighbors.items():
            dst = self.states[nbr].halo_addr[_OPP[d]][parity]
            cid = self._cid(node, d, it)
            yield from self.bulk.send(
                nbr, st.edge_addr[d][parity], dst, self.b * 8, copy_id=cid
            )
        # await my halos and read them out of local memory
        for d, nbr in st.neighbors.items():
            cid = self._cid(nbr, _OPP[d], it)
            yield from self.bulk.arrival_future(cid).wait()
            base = st.halo_addr[d][parity]
            vals = yield from self._read_edge(base)
            self._set_halo(st, d, vals)

    def _read_edge(self, base: int) -> Generator:
        """Read one b-element edge/halo array with coherent loads."""
        if self.macro:
            raw = yield ComputeLoad(base, self.b)
            return np.asarray(raw, dtype=np.float64)
        vals = np.empty(self.b, dtype=np.float64)
        for i in range(self.b):
            v = yield Load(base + i * 8)
            vals[i] = v
        return vals

    def _cid(self, src_node: int, d: str, it: int) -> int:
        """Deterministic copy id for (sender, direction, iteration)."""
        return -(((it * self.machine.n_nodes + src_node) * 8) + "NSWE".index(d) + 1)

    # ------------------------------------------------------------------
    def run(self) -> tuple[np.ndarray, int]:
        """Run all node threads; returns (final grid, total cycles)."""
        m = self.machine
        t0 = m.sim.now
        for node in range(m.n_nodes):
            m.processor(node).run_thread(self.node_thread(node))
        m.run()
        cycles = m.sim.now - t0
        return self.assemble_grid(), cycles

    def assemble_grid(self) -> np.ndarray:
        shard = self.machine.shard
        if shard is not None:
            # partitioned run: host block arrays are only current on the
            # shard that executed the owning node's thread — gather them
            mine = {n: self.states[n].block for n in shard.owned_nodes()}
            for part in shard.allgather("jacobi.blocks", mine):
                for n, blk in part.items():
                    self.states[n].block = blk
        out = np.zeros((self.g, self.g), dtype=np.float64)
        for node, st in enumerate(self.states):
            b = self.b
            out[st.by * b : (st.by + 1) * b, st.bx * b : (st.bx + 1) * b] = st.block[
                1:-1, 1:-1
            ]
        return out

    def cycles_per_iteration(self, total_cycles: int) -> float:
        return total_cycles / self.iters
