"""The paper's applications: accum, grain, aq, jacobi."""

from repro.apps.accum import (
    AccumFetchService,
    accum_message_passing,
    accum_shared_memory,
    fill_array,
)
from repro.apps.aq import aq_parallel, aq_sequential, count_nodes, default_integrand
from repro.apps.grain import grain_parallel, grain_sequential, sequential_cycles
from repro.apps.jacobi import JacobiApp, initial_grid, reference_jacobi

__all__ = [
    "AccumFetchService",
    "JacobiApp",
    "accum_message_passing",
    "accum_shared_memory",
    "aq_parallel",
    "aq_sequential",
    "count_nodes",
    "default_integrand",
    "fill_array",
    "grain_parallel",
    "grain_sequential",
    "initial_grid",
    "reference_jacobi",
    "sequential_cycles",
]
