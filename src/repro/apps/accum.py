"""``accum`` (paper §4.4, Fig. 8): sum a linear integer array that
resides on a remote node.

* Shared-memory version: straightforward inner loop over the remote
  array, prefetching one cache block ahead — all-loads, so the
  prefetch genuinely hides latency.
* Message-passing version: transfer the whole array into local memory
  with the bulk-copy mechanism, then sum out of local memory. The DMA
  deposit leaves the destination lines uncached, so the local sum
  pays a local miss per line — which is why (paper observation) even
  discounting the transfer time the message version only "rides just
  below" the shared-memory curve.
"""

from __future__ import annotations

from typing import Generator

from repro.machine.machine import Machine
from repro.proc.effects import Compute, ComputeLoad, Load, Prefetch
from repro.runtime.bulk import BulkTransfer

#: add + index arithmetic per element beyond the load itself
ADD_COST = 2


def fill_array(machine: Machine, addr: int, n_elems: int, seed: int = 1) -> list[int]:
    """Deposit a deterministic test array; returns the Python values."""
    values = [(i * 2654435761 + seed) % 1000 for i in range(n_elems)]
    for i, v in enumerate(values):
        machine.store.write(addr + i * 8, v)
    return values


def accum_shared_memory(
    array_addr: int, n_elems: int, line_size: int = 16, macro: bool = True
) -> Generator:
    """Sum the (remote) array through coherent loads with one-block-
    ahead prefetching; returns the sum.

    ``macro=True`` (default) issues the whole loop as one
    :class:`~repro.proc.effects.ComputeLoad` batch — cycle-identical
    to the per-element loop (``macro=False``, kept for the ablation
    and identity tests)."""
    if macro:
        values = yield ComputeLoad(
            array_addr, n_elems, compute=ADD_COST, prefetch_line=line_size
        )
        return sum(values)
    total = 0
    per_line = line_size // 8
    for i in range(n_elems):
        if i % per_line == 0 and (i + per_line) < n_elems:
            yield Prefetch(array_addr + (i + per_line) * 8)
        v = yield Load(array_addr + i * 8)
        total += v
        yield Compute(ADD_COST)
    return total


def accum_message_passing(
    bulk: BulkTransfer,
    owner_node: int,
    array_addr: int,
    local_buf: int,
    n_elems: int,
    macro: bool = True,
) -> Generator:
    """Request the whole array via a fetch message; the owner bulk-DMAs
    it back; sum out of local memory. Returns the sum.

    Runs on the consumer node. The fetch request is a small message to
    the owner whose handler issues the bulk transfer back (two-message
    protocol: request + data).
    """
    nbytes = n_elems * 8
    cid = bulk.new_copy_id()
    # pull protocol: ask the owner to push the array to us
    yield from _request_fetch(bulk, owner_node, array_addr, local_buf, nbytes, cid)
    yield from bulk.arrival_future(cid).wait()
    if macro:
        values = yield ComputeLoad(local_buf, n_elems, compute=ADD_COST)
        return sum(values)
    total = 0
    for i in range(n_elems):
        v = yield Load(local_buf + i * 8)
        total += v
        yield Compute(ADD_COST)
    return total


def accum_message_pipelined(
    bulk: BulkTransfer,
    owner_node: int,
    array_addr: int,
    local_buf: int,
    n_elems: int,
    chunk_elems: int = 64,
    macro: bool = True,
) -> Generator:
    """The paper's §4.4 speculation, implemented: break the transfer
    into chunks and overlap summing chunk k with transferring chunk
    k+1. The paper predicts this "might perform better than the
    shared-memory implementation, but only by a very small amount" —
    the pipelined consume loop is the same inner loop as the
    shared-memory version minus one prefetch per iteration, while each
    chunk adds fixed messaging overhead.

    Runs on the consumer node; returns the sum.
    """
    if chunk_elems <= 0:
        raise ValueError(f"chunk_elems must be positive, got {chunk_elems}")
    chunks = []
    off = 0
    while off < n_elems:
        size = min(chunk_elems, n_elems - off)
        chunks.append((off, size, bulk.new_copy_id()))
        off += size
    # request all chunks up front; the owner streams them back-to-back
    # (its DMA engine serializes, giving the pipeline)
    for off, size, cid in chunks:
        yield from _request_fetch(
            bulk, owner_node, array_addr + off * 8, local_buf + off * 8,
            size * 8, cid,
        )
    total = 0
    for off, size, cid in chunks:
        yield from bulk.arrival_future(cid).wait()
        if macro:
            values = yield ComputeLoad(local_buf + off * 8, size, compute=ADD_COST)
            total += sum(values)
            continue
        for i in range(off, off + size):
            v = yield Load(local_buf + i * 8)
            total += v
            yield Compute(ADD_COST)
    return total


MSG_FETCH_REQ = "accum.fetch"


class AccumFetchService:
    """Owner-side handler: on a fetch request, bulk-send the array."""

    def __init__(self, machine: Machine, bulk: BulkTransfer, handler_cost: int = 20):
        self.machine = machine
        self.bulk = bulk
        self.handler_cost = handler_cost
        for node in range(machine.n_nodes):
            machine.processor(node).register_handler(MSG_FETCH_REQ, self._handle)

    def _handle(self, msg) -> Generator:
        src_addr, dst_addr, nbytes, cid = msg.operands
        yield Compute(self.handler_cost)
        yield from self.bulk.send(msg.src, src_addr, dst_addr, nbytes, copy_id=cid)


def _request_fetch(bulk, owner, src_addr, dst_addr, nbytes, cid) -> Generator:
    from repro.proc.effects import Send

    yield Send(owner, MSG_FETCH_REQ, operands=(src_addr, dst_addr, nbytes, cid))
