"""``grain`` (paper §4.5, Fig. 9): synthetic grain-size benchmark.

Enumerates a complete binary tree of depth ``n`` and sums the values
at the leaves with recursive divide-and-conquer; each leaf spins for
``l`` cycles before yielding its value. ``n=12`` gives 4096 leaf
tasks; sweeping ``l`` sweeps the grain size.

Calibration: the paper reports a sequential running time of 7.1 ms
(234k cycles at 33 MHz) at l=0 and 131.2 ms at l=1000 for n=12. With
``NODE_COST = 28`` cycles per tree node our analytic sequential time
is (2^(n+1)-1)*28 + 2^n*l = 229k and 4.33M cycles — matching both
anchors to within 3%.
"""

from __future__ import annotations

from typing import Generator

from repro.proc.effects import Compute

#: call/return + add overhead of one tree node (see module docstring)
NODE_COST = 28


def grain_sequential(depth: int, delay: int) -> Generator:
    """Plain recursion, no scheduler involvement (for speedup baselines)."""
    yield Compute(NODE_COST)
    if depth == 0:
        if delay:
            yield Compute(delay)
        return 1
    left = yield from grain_sequential(depth - 1, delay)
    right = yield from grain_sequential(depth - 1, delay)
    return left + right


def grain_parallel(rt, node: int, depth: int, delay: int) -> Generator:
    """Lazy-task-creation version: fork one child, recurse into the
    other, join (the paper's divide-and-conquer structure)."""
    yield Compute(NODE_COST)
    if depth == 0:
        if delay:
            yield Compute(delay)
        return 1
    fut = yield from rt.fork(
        node, lambda rt, nd: grain_parallel(rt, nd, depth - 1, delay)
    )
    right = yield from grain_parallel(rt, node, depth - 1, delay)
    left = yield from rt.join(node, fut)
    return left + right


def sequential_cycles(depth: int, delay: int) -> int:
    """Analytic sequential running time (exactly what
    :func:`grain_sequential` measures)."""
    nodes = (1 << (depth + 1)) - 1
    leaves = 1 << depth
    return nodes * NODE_COST + leaves * delay
