"""Seeded fault injection at the network boundary.

The :class:`FaultInjector` wraps ``Network.send`` of *one machine*
(same attach/detach contract as the tracer: an injected machine runs
modified paths, every other machine runs the exact original code) and
perturbs eligible packets according to a :class:`FaultPlan`:

* **drop** — the packet vanishes at injection; nothing is delivered.
* **duplicate** — the packet is delivered normally *and* a clone is
  injected again a few cycles later.
* **delay** — injection is postponed by a drawn number of cycles.
* **reorder** — a short hold-back that lets later packets overtake.
* **outage** — every eligible packet routed across a dead link during
  its window is dropped (no randomness).
* **stall** — a node's processor spins with interrupts masked for an
  interval, so message handling backs up behind it.

All randomness comes from one ``random.Random(plan.seed)`` stream
drawn in simulator order, so identical plans reproduce identical
fault schedules. Every injected fault is logged (and recorded as a
``"fault"`` trace event when a tracer is attached) and counted on
``NetworkStats``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.plan import FaultPlan, FaultRates
from repro.machine.machine import Machine
from repro.network.packet import Packet
from repro.trace.patch import PatchSet
from repro.trace.tracer import Tracer


@dataclass
class FaultEvent:
    """One injected fault, for post-mortem analysis."""

    time: int
    node: int          # packet source (or stalled node)
    fault: str         # drop | duplicate | delay | reorder | outage | stall
    detail: str = ""
    pid: int = -1      # packet id (-1 for stalls)


class FaultInjector:
    """Applies a :class:`FaultPlan` to one machine's fabric."""

    def __init__(
        self,
        machine: Machine,
        plan: FaultPlan,
        tracer: Tracer | None = None,
    ) -> None:
        self.machine = machine
        self.plan = plan
        self.tracer = tracer
        self.rng = random.Random(plan.seed)
        self.log: list[FaultEvent] = []
        self._patches = PatchSet()
        self._stall_handles: list = []
        self.attach()

    # ------------------------------------------------------------------
    # Attach / detach (tracer contract)
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._patches.active

    def attach(self) -> None:
        if self.attached:
            raise RuntimeError("fault injector is already attached")
        self._patches.patch(self.machine.network, "send", self._make_faulty_send)
        sim = self.machine.sim
        for stall in self.plan.stalls:
            handle = sim.schedule(
                max(0, stall.start - sim.now),
                lambda stall=stall: self._begin_stall(stall),
            )
            self._stall_handles.append(handle)

    def detach(self) -> None:
        """Restore the pristine send path; pending stall triggers are
        cancelled (faults already in flight still land)."""
        self._patches.restore()
        for handle in self._stall_handles:
            handle.cancel()
        self._stall_handles.clear()

    def __enter__(self) -> FaultInjector:
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def _record(self, node: int, fault: str, detail: str, pid: int = -1) -> None:
        self.log.append(
            FaultEvent(self.machine.sim.now, node, fault, detail, pid)
        )
        if self.tracer is not None:
            self.tracer.record(node, "fault", fault, detail)

    def _roll(self, rates: FaultRates) -> str | None:
        """One fate draw against ``rates`` (fixed category order)."""
        for name in ("drop", "duplicate", "delay", "reorder"):
            p = getattr(rates, name)
            if p and self.rng.random() < p:
                return name
        return None

    def _make_faulty_send(self, orig_send):
        plan = self.plan
        net = self.machine.network
        sim = self.machine.sim

        def faulty_send(packet: Packet) -> int:
            if not plan.eligible(packet.kind):
                return orig_send(packet)
            route = (
                net.mesh.route(packet.src, packet.dst)
                if packet.src != packet.dst
                else []
            )
            dead = plan.dead_link(route, sim.now)
            if dead is not None:
                net.stats.outage_drops += 1
                self._record(
                    packet.src, "outage",
                    f"{packet.kind.value}->{packet.dst} on link {dead[0]}->{dead[1]}",
                    packet.pid,
                )
                return sim.now  # lost: nothing arrives
            fate = self._roll(plan.rates_for(packet.kind))
            if fate is None:
                for link in route:
                    extra = plan.link_rates.get(link)
                    if extra is not None:
                        fate = self._roll(extra)
                        if fate is not None:
                            break
            if fate is None:
                return orig_send(packet)
            what = f"{packet.kind.value}->{packet.dst}"
            if fate == "drop":
                net.stats.dropped += 1
                self._record(packet.src, "drop", what, packet.pid)
                return sim.now  # lost: nothing arrives
            if fate == "duplicate":
                net.stats.duplicated += 1
                lag = self.rng.randint(*plan.duplicate_lag)
                clone = Packet(
                    src=packet.src,
                    dst=packet.dst,
                    kind=packet.kind,
                    size_words=packet.size_words,
                    payload=packet.payload,
                    cycles_per_word_override=packet.cycles_per_word_override,
                )
                self._record(
                    packet.src, "duplicate", f"{what} +{lag}cyc", packet.pid
                )
                sim.schedule(lag, lambda: orig_send(clone))
                return orig_send(packet)
            # delay and reorder are both hold-backs; they differ in scale
            if fate == "delay":
                hold = self.rng.randint(*plan.delay_range)
                net.stats.delayed += 1
            else:
                hold = self.rng.randint(*plan.reorder_range)
                net.stats.reordered += 1
            self._record(packet.src, fate, f"{what} +{hold}cyc", packet.pid)
            sim.schedule(hold, lambda: orig_send(packet))
            return sim.now + hold  # injection time; real arrival is later

        return faulty_send

    # ------------------------------------------------------------------
    def _begin_stall(self, stall) -> None:
        from repro.proc.effects import Compute, SetIMask

        self.machine.network.stats.stalls += 1
        self._record(stall.node, "stall", f"{stall.duration}cyc")

        def stall_body():
            yield SetIMask(True)
            yield Compute(stall.duration)
            yield SetIMask(False)

        self.machine.processor(stall.node).run_thread(
            stall_body(), label=f"fault-stall@{stall.node}", front=True
        )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        s = self.machine.network.stats
        return (
            f"faults: {s.faults_injected} injected "
            f"(drop={s.dropped} dup={s.duplicated} delay={s.delayed} "
            f"reorder={s.reordered} outage={s.outage_drops} stalls={s.stalls})"
        )
