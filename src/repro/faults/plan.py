"""Deterministic fault schedules.

A :class:`FaultPlan` describes *what can go wrong* on the fabric:
per-packet fault probabilities (drop / duplicate / delay / reorder),
optionally overridden per directed link or per packet kind, plus timed
link-outage windows and node stall intervals. The plan carries the
seed of the ``random.Random`` stream that the
:class:`~repro.faults.injector.FaultInjector` draws from, so two runs
with the same plan produce the *identical* fault schedule — faults are
part of the experiment, not noise.

By default only software packets (``USER_MESSAGE``, ``DMA_TRANSFER``)
are eligible: the cache-coherence protocol assumes a reliable fabric
(as Alewife's hardware did), while the message layer owns its own
reliability (``repro.runtime.reliable``), mirroring the paper's
raw-network contract. Widening ``kinds`` to protocol traffic is
allowed but will deadlock coherence transactions under loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.packet import PROTOCOL_KINDS, PacketKind

#: packet kinds whose delivery is software's problem, not hardware's
SOFTWARE_KINDS = frozenset(
    {PacketKind.USER_MESSAGE, PacketKind.DMA_TRANSFER}
)


@dataclass(frozen=True)
class FaultRates:
    """Per-packet fault probabilities (independent Bernoulli draws,
    evaluated in the fixed order drop, duplicate, delay, reorder; the
    first firing fate wins)."""

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {p}")

    @property
    def any(self) -> bool:
        return bool(self.drop or self.duplicate or self.delay or self.reorder)


@dataclass(frozen=True)
class LinkOutage:
    """Directed link ``a -> b`` is dead during ``[start, end)``:
    every eligible packet routed across it in the window is lost."""

    a: int
    b: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"outage window must satisfy 0 <= start < end, "
                f"got [{self.start}, {self.end})"
            )


@dataclass(frozen=True)
class NodeStall:
    """Node ``node`` goes unresponsive for ``duration`` cycles
    starting at ``start``: its processor spins with message interrupts
    masked, so arrived messages sit in the input queue until the stall
    ends (models GC pauses, OS jitter, a wedged handler)."""

    node: int
    start: int
    duration: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError(
                f"stall needs start >= 0 and duration > 0, "
                f"got start={self.start} duration={self.duration}"
            )


@dataclass
class FaultPlan:
    """A complete, seeded description of fabric misbehaviour."""

    #: default per-packet rates (applied once per eligible packet)
    rates: FaultRates = field(default_factory=FaultRates)
    #: per-directed-link overrides: an eligible packet whose route
    #: crosses link ``(a, b)`` additionally rolls against these rates
    link_rates: dict[tuple[int, int], FaultRates] = field(default_factory=dict)
    #: per-kind overrides: replace ``rates`` entirely for that kind
    kind_rates: dict[PacketKind, FaultRates] = field(default_factory=dict)
    #: dead-link windows (checked before any probabilistic fault)
    outages: list[LinkOutage] = field(default_factory=list)
    #: node unresponsiveness intervals
    stalls: list[NodeStall] = field(default_factory=list)
    #: packet kinds eligible for injection (default: software traffic)
    kinds: frozenset[PacketKind] = SOFTWARE_KINDS
    #: extra in-flight cycles for a delay fault, drawn uniformly
    delay_range: tuple[int, int] = (20, 400)
    #: hold-back cycles for a reorder fault (short, so only packets
    #: launched close together overtake each other)
    reorder_range: tuple[int, int] = (1, 60)
    #: lag before a duplicate's second copy is injected
    duplicate_lag: tuple[int, int] = (1, 40)
    #: seed of the fault schedule's private random stream
    seed: int = 0

    def __post_init__(self) -> None:
        self.kinds = frozenset(self.kinds)
        for lo, hi in (self.delay_range, self.reorder_range, self.duplicate_lag):
            if lo < 1 or hi < lo:
                raise ValueError(f"cycle range must satisfy 1 <= lo <= hi, got ({lo}, {hi})")
        risky = self.kinds & PROTOCOL_KINDS
        if risky and (self.rates.any or self.link_rates or self.kind_rates or self.outages):
            # allowed (that is the experiment some people want) but loud
            import warnings

            warnings.warn(
                "FaultPlan targets coherence-protocol packets; the protocol "
                "has no retry layer and will deadlock under loss",
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    def rates_for(self, kind: PacketKind) -> FaultRates:
        return self.kind_rates.get(kind, self.rates)

    def eligible(self, kind: PacketKind) -> bool:
        return kind in self.kinds

    def dead_link(self, route: list[tuple[int, int]], now: int) -> tuple[int, int] | None:
        """First dead link on ``route`` at time ``now``, if any."""
        if not self.outages:
            return None
        for a, b in route:
            for o in self.outages:
                if o.a == a and o.b == b and o.start <= now < o.end:
                    return (a, b)
        return None


def lossy_plan(drop: float, seed: int = 0, **kw) -> FaultPlan:
    """Convenience: a plan that drops software packets at rate ``drop``."""
    return FaultPlan(rates=FaultRates(drop=drop), seed=seed, **kw)
