"""Deterministic fault injection for the mesh fabric.

The paper's message layer runs on raw, unprotected network access —
reliability is software's job. This package supplies the adversary:
seeded, reproducible packet faults (drop / duplicate / delay /
reorder), link outages, and node stalls, injected at the
``Network.send`` boundary of one machine. The matching software
defence lives in ``repro.runtime.reliable``.
"""

from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.plan import (
    SOFTWARE_KINDS,
    FaultPlan,
    FaultRates,
    LinkOutage,
    NodeStall,
    lossy_plan,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRates",
    "LinkOutage",
    "NodeStall",
    "SOFTWARE_KINDS",
    "lossy_plan",
]
