"""Shared helpers for experiment drivers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Sequence

from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.sweep import SweepPoint


def sweep_map(points: "Sequence[SweepPoint]", jobs: int | None = 1) -> list[Any]:
    """Run a sweep through :class:`~repro.perf.sweep.SweepRunner`.

    The one seam every experiment shares, so all of them pick up the
    persistent worker pool and — when a run cache is active
    (``repro.perf.cache.activate`` / the CLI's default) — incremental
    cached execution, without per-experiment plumbing."""
    from repro.perf.sweep import SweepRunner

    return SweepRunner(jobs).map(points)


def partitioned_map(
    points: "Sequence[SweepPoint]", partitions: int, n_nodes: int
) -> list[Any]:
    """Run each sweep point split across ``partitions`` shard workers
    (repro.perf.partition) — parallelism *within* a run instead of
    across runs, for machine sizes one process cannot turn over fast
    enough. Points run one after another (each already fans out), with
    the same progress-event shapes SweepRunner emits so job progress
    and the CLI ticker work unchanged."""
    from repro.obs.session import current as obs_current
    from repro.perf.partition import run_partitioned
    from repro.perf.progress import current as progress_current, point_label

    notify = progress_current()
    if notify is not None:
        notify({"event": "sweep_start", "points": len(points), "cached": 0})
    sess = obs_current()
    obs_cfg = sess.cfg if sess is not None else None
    out = []
    for i, point in enumerate(points):
        out.append(
            run_partitioned(
                point.fn, dict(point.kwargs), n_nodes, partitions,
                obs_cfg=obs_cfg,
            )
        )
        if notify is not None:
            notify({
                "event": "point",
                "index": i,
                "label": point_label(point, i),
                "cached": False,
            })
    return out


def make_machine(n_nodes: int = 64, **cfg_kw: Any) -> Machine:
    """Build a machine; if an observation session is active
    (``repro.obs.session``), attach its observers at construction time
    so every experiment is observable without its own plumbing.
    Inside a partition worker (``repro.perf.partition``) the machine is
    built shard-aware, again with no per-experiment plumbing."""
    from repro.perf.partition import current_shard

    m = Machine(MachineConfig(n_nodes=n_nodes, **cfg_kw), shard=current_shard())
    from repro.obs.session import current as obs_current

    s = obs_current()
    if s is not None:
        s.observe(m)
    return m


def run_thread_timed(machine: Machine, gen: Generator) -> tuple[Any, int]:
    """Run one thread on node 0 to completion; returns (result, cycles)."""
    box: dict[str, Any] = {}

    def fin(v: Any) -> None:
        box["result"] = v
        box["cycles"] = machine.sim.now

    t0 = machine.sim.now
    machine.processor(0).run_thread(gen, on_finish=fin)
    machine.run()
    if "cycles" not in box:
        raise SimulationError("measured thread never finished")
    return box["result"], box["cycles"] - t0


def geometric_sizes(lo: int, hi: int, factor: int = 2) -> list[int]:
    out, v = [], lo
    while v <= hi:
        out.append(v)
        v *= factor
    return out
