"""Shared helpers for experiment drivers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Sequence

from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.sweep import SweepPoint


def sweep_map(points: "Sequence[SweepPoint]", jobs: int | None = 1) -> list[Any]:
    """Run a sweep through :class:`~repro.perf.sweep.SweepRunner`.

    The one seam every experiment shares, so all of them pick up the
    persistent worker pool and — when a run cache is active
    (``repro.perf.cache.activate`` / the CLI's default) — incremental
    cached execution, without per-experiment plumbing."""
    from repro.perf.sweep import SweepRunner

    return SweepRunner(jobs).map(points)


def make_machine(n_nodes: int = 64, **cfg_kw: Any) -> Machine:
    """Build a machine; if an observation session is active
    (``repro.obs.session``), attach its observers at construction time
    so every experiment is observable without its own plumbing."""
    m = Machine(MachineConfig(n_nodes=n_nodes, **cfg_kw))
    from repro.obs.session import current as obs_current

    s = obs_current()
    if s is not None:
        s.observe(m)
    return m


def run_thread_timed(machine: Machine, gen: Generator) -> tuple[Any, int]:
    """Run one thread on node 0 to completion; returns (result, cycles)."""
    box: dict[str, Any] = {}

    def fin(v: Any) -> None:
        box["result"] = v
        box["cycles"] = machine.sim.now

    t0 = machine.sim.now
    machine.processor(0).run_thread(gen, on_finish=fin)
    machine.run()
    if "cycles" not in box:
        raise SimulationError("measured thread never finished")
    return box["result"], box["cycles"] - t0


def geometric_sizes(lo: int, hi: int, factor: int = 2) -> list[int]:
    out, v = [], lo
    while v <= hi:
        out.append(v)
        v *= factor
    return out
