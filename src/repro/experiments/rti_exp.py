"""§4.3 remote thread invocation: Tinvoker / Tinvokee.

Paper (measured inside the complete scheduling system):
  shared-memory: Tinvoker=353, Tinvokee=805 cycles (10.7 / 24.4 µs)
  message-based: Tinvoker=17,  Tinvokee=244 cycles (0.5 / 7.4 µs)
"""

from __future__ import annotations

from repro.analysis.metrics import cycles_to_usec
from repro.analysis.tables import ExperimentResult
from repro.experiments.common import make_machine, sweep_map
from repro.perf.sweep import SweepPoint
from repro.proc.effects import Compute
from repro.runtime.rt import Runtime

PAPER = {
    "sm": {"invoker": 353, "invokee": 805},
    "hybrid": {"invoker": 17, "invokee": 244},
}


def measure_rti(kind: str, n_nodes: int = 64, trials: int = 8) -> tuple[float, float]:
    """Mean Tinvoker/Tinvokee over ``trials`` invocations at staggered
    phases (the invokee's poll loop makes single-shot numbers noisy)."""
    t_invoker: list[int] = []
    t_invokee: list[int] = []

    m = make_machine(n_nodes)
    rt = Runtime(m, scheduler=kind)

    def body(rt, node, t0):
        t_invokee.append(m.sim.now - t0)
        yield Compute(50)
        return 1

    def invoker(rt, node):
        yield Compute(3000)  # let idle loops reach steady state
        for trial in range(trials):
            t0 = m.sim.now
            fut = yield from rt.spawn_to(
                1, lambda rt, nd, t0=t0: body(rt, nd, t0), label="rti"
            )
            t_invoker.append(m.sim.now - t0)
            yield from rt.join(node, fut)
            # stagger phases relative to the invokee's poll loop
            yield Compute(613 + 97 * trial)
        return True

    rt.run_to_completion(0, invoker)
    return (
        sum(t_invoker) / len(t_invoker),
        sum(t_invokee) / len(t_invokee),
    )


def sweep(n_nodes: int = 64, trials: int = 8) -> list[SweepPoint]:
    """The experiment as data: one independent point per scheduler kind."""
    return [
        SweepPoint(
            "repro.experiments.rti_exp:measure_rti",
            {"kind": kind, "n_nodes": n_nodes, "trials": trials},
        )
        for kind in ("sm", "hybrid")
    ]


def run(n_nodes: int = 64, trials: int = 8, jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="rti",
        title=f"§4.3 remote thread invocation, {n_nodes} processors",
        columns=[
            "implementation",
            "Tinvoker",
            "Tinvokee",
            "Tinvoker_usec",
            "Tinvokee_usec",
            "paper_Tinvoker",
            "paper_Tinvokee",
        ],
        notes="mean over staggered trials inside the full scheduler",
    )
    points = sweep(n_nodes, trials)
    measured = dict(zip((p.kwargs["kind"] for p in points), sweep_map(points, jobs)))
    for kind, label in (("sm", "shared-memory"), ("hybrid", "message-based")):
        invoker, invokee = measured[kind]
        res.add(
            implementation=label,
            Tinvoker=round(invoker),
            Tinvokee=round(invokee),
            Tinvoker_usec=round(cycles_to_usec(invoker), 1),
            Tinvokee_usec=round(cycles_to_usec(invokee), 1),
            paper_Tinvoker=PAPER[kind]["invoker"],
            paper_Tinvokee=PAPER[kind]["invokee"],
        )
    return res
