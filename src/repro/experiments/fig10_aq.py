"""Fig. 10: ``aq`` (adaptive quadrature) speedup on 64 processors vs
problem size (sequential running time), hybrid vs SM scheduler.

Paper shape: hybrid ≈2x faster at small problem sizes, still >20%
faster at the largest shown (~800 ms sequential).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.metrics import cycles_to_msec
from repro.analysis.tables import ExperimentResult
from repro.apps.aq import aq_parallel, default_integrand, sequential_cycles
from repro.experiments.common import make_machine, sweep_map
from repro.perf.sweep import SweepPoint
from repro.runtime.rt import Runtime

#: tolerance sweep — tighter tolerance => bigger recursion tree =>
#: larger sequential running time (the paper's problem-size axis)
DEFAULT_TOLS = (3e-3, 1e-3, 3e-4, 1e-4, 3e-5)
DOMAIN = (0.0, 0.0, 1.0, 1.0)


def measure_aq(kind: str, tol: float, n_nodes: int = 64, seed: int = 0):
    m = make_machine(n_nodes)
    rt = Runtime(m, scheduler=kind, seed=seed)
    x0, y0, x1, y1 = DOMAIN
    result, cycles = rt.run_to_completion(
        0,
        lambda rt, nd: aq_parallel(rt, nd, default_integrand, x0, y0, x1, y1, tol),
    )
    return result, cycles


def sweep(
    tols: Sequence[float] = DEFAULT_TOLS, n_nodes: int = 64
) -> list[SweepPoint]:
    """The experiment as data: one independent point per (tol, scheduler)."""
    return [
        SweepPoint(
            "repro.experiments.fig10_aq:measure_aq",
            {"kind": kind, "tol": tol, "n_nodes": n_nodes},
        )
        for tol in tols
        for kind in ("hybrid", "sm")
    ]


def run(
    tols: Sequence[float] = DEFAULT_TOLS, n_nodes: int = 64, jobs: int = 1
) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="fig10",
        title=f"Fig. 10: aq speedup vs problem size, {n_nodes} processors",
        columns=[
            "tol",
            "seq_msec",
            "speedup_hybrid",
            "speedup_sm",
            "hybrid_over_sm",
        ],
        notes="paper: hybrid ~2x at small sizes, >20% at ~800 ms",
    )
    x0, y0, x1, y1 = DOMAIN
    points = sweep(tols, n_nodes)
    measured = dict(zip(((p.kwargs["tol"], p.kwargs["kind"]) for p in points),
                        sweep_map(points, jobs)))
    for tol in tols:
        seq = sequential_cycles(default_integrand, x0, y0, x1, y1, tol)
        s = {}
        vals = {}
        for kind in ("hybrid", "sm"):
            value, cycles = measured[(tol, kind)]
            s[kind] = seq / cycles
            vals[kind] = value
        assert abs(vals["hybrid"] - vals["sm"]) < 1e-9, "schedulers disagree on the integral"
        res.add(
            tol=tol,
            seq_msec=round(cycles_to_msec(seq), 1),
            speedup_hybrid=round(s["hybrid"], 1),
            speedup_sm=round(s["sm"], 1),
            hybrid_over_sm=round(s["hybrid"] / s["sm"], 2),
        )
    return res
