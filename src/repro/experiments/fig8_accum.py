"""Fig. 8: ``accum`` — sum a remote array, SM (prefetched loads) vs MP
(bulk transfer + local sum).

Paper shape: the message-passing version is ~2x slower at small
blocks, narrowing to ~1.3x at large blocks; subtracting the Fig. 7
transfer time leaves a curve riding just below the shared-memory one.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.tables import ExperimentResult
from repro.apps.accum import (
    AccumFetchService,
    accum_message_passing,
    accum_shared_memory,
    fill_array,
)
from repro.experiments.common import make_machine, run_thread_timed, sweep_map
from repro.perf.sweep import SweepPoint
from repro.runtime.bulk import BulkTransfer

DEFAULT_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)


def _measure_sm(nbytes: int) -> tuple[int, int]:
    m = make_machine(4)
    n_elems = nbytes // 8
    arr = m.alloc(1, nbytes)
    values = fill_array(m, arr, n_elems)

    def bench():
        t0 = m.sim.now
        total = yield from accum_shared_memory(arr, n_elems)
        return (total, m.sim.now - t0)

    (total, cycles), _t = run_thread_timed(m, bench())
    assert total == sum(values), "accum SM produced a wrong sum"
    return cycles, total


def _measure_mp(nbytes: int) -> tuple[int, int]:
    m = make_machine(4)
    n_elems = nbytes // 8
    bulk = BulkTransfer(m)
    AccumFetchService(m, bulk)
    arr = m.alloc(1, nbytes)
    buf = m.alloc(0, nbytes)
    values = fill_array(m, arr, n_elems)

    def bench():
        t0 = m.sim.now
        total = yield from accum_message_passing(bulk, 1, arr, buf, n_elems)
        return (total, m.sim.now - t0)

    (total, cycles), _t = run_thread_timed(m, bench())
    assert total == sum(values), "accum MP produced a wrong sum"
    return cycles, total


def measure_point(impl: str, nbytes: int) -> int:
    """One sweep point: sum a remote array of ``nbytes``; returns cycles."""
    cycles, _total = (_measure_sm if impl == "sm" else _measure_mp)(nbytes)
    return cycles


def sweep(block_sizes: Sequence[int] = DEFAULT_SIZES) -> list[SweepPoint]:
    """The experiment as data: one independent point per (size, impl)."""
    return [
        SweepPoint(
            "repro.experiments.fig8_accum:measure_point",
            {"impl": impl, "nbytes": nbytes},
        )
        for nbytes in block_sizes
        for impl in ("sm", "mp")
    ]


def run(block_sizes: Sequence[int] = DEFAULT_SIZES, jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="fig8",
        title="Fig. 8: accum (sum of a remote array)",
        columns=["block_bytes", "implementation", "cycles", "mp_over_sm"],
        notes="paper: MP ~2x slower small blocks -> ~1.3x slower large blocks",
    )
    points = sweep(block_sizes)
    cycles = dict(zip(((p.kwargs["nbytes"], p.kwargs["impl"]) for p in points),
                      sweep_map(points, jobs)))
    for nbytes in block_sizes:
        sm_cycles = cycles[(nbytes, "sm")]
        mp_cycles = cycles[(nbytes, "mp")]
        res.add(
            block_bytes=nbytes,
            implementation="shared-memory",
            cycles=sm_cycles,
            mp_over_sm="-",
        )
        res.add(
            block_bytes=nbytes,
            implementation="message-passing",
            cycles=mp_cycles,
            mp_over_sm=round(mp_cycles / sm_cycles, 2),
        )
    return res
