"""Fig. 7: memory-to-memory copy, three implementations vs block size.

Paper anchors: at 256 B the rates are 17.3 / 11.7 / 7.3 MB/s for
message-passing / no-prefetching / prefetching; at 4 KB they are
55.4 / 16.4 / 8.6 MB/s.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.metrics import mbytes_per_sec
from repro.analysis.tables import ExperimentResult
from repro.experiments.common import make_machine, run_thread_timed, sweep_map
from repro.perf.sweep import SweepPoint
from repro.proc.effects import Load
from repro.runtime.bulk import BulkTransfer, copy_no_prefetch, copy_prefetch

DEFAULT_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)

IMPLS = ("no-prefetching", "prefetching", "message-passing")

PAPER_MBS = {
    ("no-prefetching", 256): 11.7,
    ("prefetching", 256): 7.3,
    ("message-passing", 256): 17.3,
    ("no-prefetching", 4096): 16.4,
    ("prefetching", 4096): 8.6,
    ("message-passing", 4096): 55.4,
}


def _measure_sm(copier, nbytes: int) -> int:
    """Time the copy loop with a warm source (cold destination)."""
    m = make_machine(4)
    src = m.alloc(0, nbytes)
    dst = m.alloc(1, nbytes)
    for i in range(nbytes // 8):
        m.store.write(src + i * 8, i)

    def bench():
        for i in range(nbytes // 8):  # warm the source into the cache
            yield Load(src + i * 8)
        t0 = m.sim.now
        yield from copier(src, dst, nbytes)
        return m.sim.now - t0

    cycles, _total = run_thread_timed(m, bench())
    return cycles


def _measure_mp(nbytes: int) -> int:
    """Time the bulk-transfer primitive until the data is at the
    destination and the sender has the completion ack."""
    m = make_machine(4)
    bulk = BulkTransfer(m)
    src = m.alloc(0, nbytes)
    dst = m.alloc(1, nbytes)
    for i in range(nbytes // 8):
        m.store.write(src + i * 8, i)

    def bench():
        t0 = m.sim.now
        yield from bulk.send(1, src, dst, nbytes, wait_ack=True)
        return m.sim.now - t0

    cycles, _total = run_thread_timed(m, bench())
    return cycles


def measure_point(impl: str, nbytes: int) -> int:
    """One sweep point: copy ``nbytes`` with ``impl``; returns cycles."""
    if impl == "message-passing":
        return _measure_mp(nbytes)
    copier = copy_no_prefetch if impl == "no-prefetching" else copy_prefetch
    return _measure_sm(copier, nbytes)


def sweep(block_sizes: Sequence[int] = DEFAULT_SIZES) -> list[SweepPoint]:
    """The experiment as data: one independent point per (size, impl)."""
    return [
        SweepPoint(
            "repro.experiments.fig7_memcpy:measure_point",
            {"impl": impl, "nbytes": nbytes},
        )
        for nbytes in block_sizes
        for impl in IMPLS
    ]


def run(block_sizes: Sequence[int] = DEFAULT_SIZES, jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="fig7",
        title="Fig. 7: memory-to-memory copy performance",
        columns=["block_bytes", "implementation", "cycles", "MB_per_s", "paper_MB_per_s"],
        notes="push copy to an adjacent node; paper anchors at 256 B and 4 KB",
    )
    points = sweep(block_sizes)
    for point, cycles in zip(points, sweep_map(points, jobs)):
        name, nbytes = point.kwargs["impl"], point.kwargs["nbytes"]
        res.add(
            block_bytes=nbytes,
            implementation=name,
            cycles=cycles,
            MB_per_s=round(mbytes_per_sec(nbytes, cycles), 1),
            paper_MB_per_s=PAPER_MBS.get((name, nbytes), "-"),
        )
    return res
