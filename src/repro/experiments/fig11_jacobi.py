"""Fig. 11: Jacobi SOR cycles/iteration on 64 processors, SM vs MP
border exchange, grid sizes 32x32 / 64x64 / 128x128.

Paper shape: shared-memory slightly faster at small grids (little
data per edge; Fig. 7 says SM copies small blocks cheaper), message
passing slightly faster at large grids, with the gap damped by the
growing computation-to-communication ratio.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.tables import ExperimentResult
from repro.apps.jacobi import JacobiApp, initial_grid, reference_jacobi
from repro.experiments.common import make_machine, partitioned_map, sweep_map
from repro.perf.sweep import SweepPoint

DEFAULT_GRIDS = (32, 64, 128)


def measure_jacobi(
    mode: str, grid_size: int, n_nodes: int = 64, iters: int = 6, validate: bool = True
) -> float:
    m = make_machine(n_nodes)
    app = JacobiApp(m, grid_size=grid_size, iters=iters, mode=mode)
    grid, cycles = app.run()
    if validate:
        ref = reference_jacobi(initial_grid(grid_size), iters)
        np.testing.assert_allclose(grid, ref, rtol=1e-12, atol=1e-12)
    return app.cycles_per_iteration(cycles)


def sweep(
    grid_sizes: Sequence[int] = DEFAULT_GRIDS, n_nodes: int = 64, iters: int = 6
) -> list[SweepPoint]:
    """The experiment as data: one independent point per (grid, mode)."""
    return [
        SweepPoint(
            "repro.experiments.fig11_jacobi:measure_jacobi",
            {"mode": mode, "grid_size": g, "n_nodes": n_nodes, "iters": iters},
        )
        for g in grid_sizes
        for mode in ("sm", "mp")
    ]


def run(
    grid_sizes: Sequence[int] = DEFAULT_GRIDS, n_nodes: int = 64, iters: int = 6,
    jobs: int = 1, partitions: int | None = None,
) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="fig11",
        title=f"Fig. 11: Jacobi SOR cycles/iteration, {n_nodes} processors",
        columns=["grid", "cycles_per_iter_sm", "cycles_per_iter_mp", "mp_over_sm"],
        notes="paper: SM wins small grids, MP wins large, both by small margins",
    )
    points = sweep(grid_sizes, n_nodes, iters)
    values = (
        partitioned_map(points, partitions, n_nodes)
        if partitions is not None
        else sweep_map(points, jobs)
    )
    measured = dict(zip(((p.kwargs["grid_size"], p.kwargs["mode"]) for p in points),
                        values))
    for g in grid_sizes:
        sm = measured[(g, "sm")]
        mp = measured[(g, "mp")]
        res.add(
            grid=f"{g}x{g}",
            cycles_per_iter_sm=round(sm),
            cycles_per_iter_mp=round(mp),
            mp_over_sm=round(mp / sm, 2),
        )
    return res
