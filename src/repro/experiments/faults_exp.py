"""Fault-injection degradation experiment.

Reruns the paper's two message-passing primitives — the Fig. 7 bulk
memcpy and the §4.2 combining-tree barrier — in *reliable* mode
(sequence numbers, acks, retransmission) on a fabric that drops a
fraction of the software packets, and reports how completion time
degrades with the loss rate.

The zero-loss row is the baseline: the reliable layer's own overhead
(per-message software cost plus the ack round) is included there, so
``slowdown_x`` isolates the cost of the *faults*, not of reliability.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.tables import ExperimentResult
from repro.experiments.common import make_machine, run_thread_timed, sweep_map
from repro.perf.sweep import SweepPoint
from repro.faults import FaultInjector, lossy_plan
from repro.proc.effects import Compute
from repro.runtime.barrier import MPTreeBarrier
from repro.runtime.bulk import BulkTransfer
from repro.runtime.reliable import ReliableLayer
from repro.sim.engine import SimulationError

DEFAULT_RATES = (0.0, 0.02, 0.05, 0.10)


def _measure_memcpy(
    drop: float, nbytes: int, seed: int, rounds: int = 8
) -> tuple[int, int, int]:
    """Reliable-mode bulk copy under ``drop`` packet loss; returns
    (cycles, retransmits, faults_injected) and verifies the data.

    Runs ``rounds`` back-to-back transfers so enough packets are at
    risk for the loss rate to show (one copy is only ~4 packets)."""
    m = make_machine(4)
    layer = ReliableLayer(m)
    bulk = BulkTransfer(m, reliable=layer)
    injector = FaultInjector(m, lossy_plan(drop, seed=seed))
    src = m.alloc(0, nbytes)
    dst = m.alloc(1, nbytes)
    for i in range(nbytes // 8):
        m.store.write(src + i * 8, i)

    def bench():
        t0 = m.sim.now
        for _ in range(rounds):
            yield from bulk.send(1, src, dst, nbytes, wait_ack=True, src_node=0)
        return m.sim.now - t0

    cycles, _total = run_thread_timed(m, bench())
    for i in range(nbytes // 8):
        if m.store.read(dst + i * 8) != i:
            raise SimulationError(
                f"bulk copy corrupted under drop={drop}: word {i} wrong"
            )
    return cycles, layer.stats.retransmits, m.network.stats.faults_injected


def _measure_barrier(
    drop: float, n_nodes: int, episodes: int, seed: int
) -> tuple[int, int, int]:
    """Reliable-mode MP barrier under loss; returns the steady-state
    episode latency (last entry to last release of the final episode)."""
    m = make_machine(n_nodes)
    layer = ReliableLayer(m)
    barrier = MPTreeBarrier(m, fanout=8, reliable=layer)
    injector = FaultInjector(m, lossy_plan(drop, seed=seed))
    enters: dict[int, list[int]] = {}
    leaves: dict[int, list[int]] = {}

    def participant(node: int):
        for ep in range(episodes):
            enters.setdefault(ep, []).append(m.sim.now)
            yield from barrier.enter(node)
            leaves.setdefault(ep, []).append(m.sim.now)
            yield Compute(1)

    for node in range(n_nodes):
        m.processor(node).run_thread(participant(node))
    m.run()
    last = episodes - 1
    if len(leaves.get(last, ())) != n_nodes:
        raise SimulationError(
            f"barrier hung under drop={drop}: "
            f"{len(leaves.get(last, ()))}/{n_nodes} released"
        )
    cycles = max(leaves[last]) - max(enters[last])
    return cycles, layer.stats.retransmits, m.network.stats.faults_injected


def measure_point(
    workload: str, drop: float, nbytes: int, n_nodes: int, episodes: int, seed: int
) -> tuple[int, int, int]:
    """One sweep point; the fault seed travels in the descriptor, so a
    worker reproduces the exact fault schedule a serial run sees."""
    if workload == "memcpy":
        return _measure_memcpy(drop, nbytes, seed)
    return _measure_barrier(drop, n_nodes, episodes, seed)


def sweep(
    loss_rates: Sequence[float] = DEFAULT_RATES,
    nbytes: int = 2048,
    n_nodes: int = 16,
    episodes: int = 4,
    seed: int = 1,
) -> list[SweepPoint]:
    """The experiment as data: one independent point per (workload, rate)."""
    return [
        SweepPoint(
            "repro.experiments.faults_exp:measure_point",
            {"workload": w, "drop": drop, "nbytes": nbytes,
             "n_nodes": n_nodes, "episodes": episodes, "seed": seed},
        )
        for w in ("memcpy", "barrier")
        for drop in loss_rates
    ]


def run(
    loss_rates: Sequence[float] = DEFAULT_RATES,
    nbytes: int = 2048,
    n_nodes: int = 16,
    episodes: int = 4,
    # seed 0 is deterministically unlucky: Random(0)'s first ~35 draws
    # all exceed 0.1, so a short memcpy run would see zero faults
    seed: int = 1,
    jobs: int = 1,
) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="faults",
        title="Reliable MP primitives under packet loss",
        columns=["drop_pct", "workload", "cycles", "retries", "faults", "slowdown_x"],
        notes="fig7 memcpy + MP barrier in reliable mode; slowdown vs lossless row",
    )
    points = sweep(loss_rates, nbytes, n_nodes, episodes, seed)
    measured = dict(zip(((p.kwargs["workload"], p.kwargs["drop"]) for p in points),
                        sweep_map(points, jobs)))
    base: dict[str, int] = {}
    for name in ("memcpy", "barrier"):
        for drop in loss_rates:
            cycles, retries, faults = measured[(name, drop)]
            base.setdefault(name, cycles)
            res.add(
                drop_pct=round(drop * 100, 1),
                workload=name,
                cycles=cycles,
                retries=retries,
                faults=faults,
                slowdown_x=round(cycles / base[name], 2) if base[name] else 1.0,
            )
    return res
