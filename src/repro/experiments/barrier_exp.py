"""§4.2 barrier experiment: SM combining tree vs MP combining tree.

Paper (64 processors): best shared-memory barrier (six-level binary
tree) ≈1650 cycles (50 µs); direct message-based barrier (two-level
eight-ary tree) ≈660 cycles (20 µs).
"""

from __future__ import annotations

from repro.analysis.metrics import cycles_to_usec
from repro.analysis.tables import ExperimentResult
from repro.experiments.common import make_machine, partitioned_map, sweep_map
from repro.perf.sweep import SweepPoint
from repro.proc.effects import Compute
from repro.runtime.barrier import MPTreeBarrier, SMTreeBarrier

PAPER_CYCLES = {"shared-memory (binary tree)": 1650, "message-passing (8-ary tree)": 660}


def measure_barrier(make_barrier, n_nodes: int = 64, episodes: int = 4) -> int:
    """Steady-state barrier latency: last-entry to last-release of the
    final episode (earlier episodes warm caches / handler state)."""
    m = make_machine(n_nodes)
    barrier = make_barrier(m)
    enters: dict[int, list[int]] = {}
    leaves: dict[int, list[int]] = {}

    def participant(node: int):
        for ep in range(episodes):
            enters.setdefault(ep, []).append(m.sim.now)
            yield from barrier.enter(node)
            leaves.setdefault(ep, []).append(m.sim.now)
            yield Compute(1)

    for node in range(n_nodes):
        m.processor(node).run_thread(participant(node))
    m.run()
    last = episodes - 1
    if m.shard is not None:
        # partitioned run: each shard recorded only its own nodes'
        # enter/leave times — reduce the maxima across shards
        pairs = m.shard.allgather(
            "barrier.last", (max(enters[last]), max(leaves[last]))
        )
        return max(p[1] for p in pairs) - max(p[0] for p in pairs)
    return max(leaves[last]) - max(enters[last])


def measure_point(impl: str, n_nodes: int, episodes: int) -> int:
    """One sweep point: ``impl`` is "sm" or "mp" (picklable descriptor)."""
    if impl == "sm":
        return measure_barrier(lambda m: SMTreeBarrier(m, arity=2), n_nodes, episodes)
    return measure_barrier(lambda m: MPTreeBarrier(m, fanout=8), n_nodes, episodes)


def sweep(n_nodes: int = 64, episodes: int = 4) -> list[SweepPoint]:
    """The experiment as data: one independent point per implementation."""
    return [
        SweepPoint(
            "repro.experiments.barrier_exp:measure_point",
            {"impl": impl, "n_nodes": n_nodes, "episodes": episodes},
        )
        for impl in ("sm", "mp")
    ]


def run(
    n_nodes: int = 64, episodes: int = 4, jobs: int = 1,
    partitions: int | None = None,
) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="barrier",
        title=f"§4.2 combining-tree barrier, {n_nodes} processors",
        columns=["implementation", "cycles", "usec", "paper_cycles"],
        notes="steady-state episode; paper: 1650 vs 660 cycles on 64 procs",
    )
    points = sweep(n_nodes, episodes)
    sm, mp = (
        partitioned_map(points, partitions, n_nodes)
        if partitions is not None
        else sweep_map(points, jobs)
    )
    for name, cycles in (
        ("shared-memory (binary tree)", sm),
        ("message-passing (8-ary tree)", mp),
    ):
        res.add(
            implementation=name,
            cycles=cycles,
            usec=round(cycles_to_usec(cycles), 1),
            paper_cycles=PAPER_CYCLES[name] if n_nodes == 64 else "-",
        )
    return res
