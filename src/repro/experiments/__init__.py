"""Experiment drivers: one module per paper table/figure.

| id      | paper result                                   |
|---------|------------------------------------------------|
| barrier | §4.2 barrier cycle counts                      |
| rti     | §4.3 Tinvoker/Tinvokee                         |
| fig7    | memory-to-memory copy vs block size            |
| fig8    | accum vs block size                            |
| fig9    | grain speedup vs delay l                       |
| fig10   | aq speedup vs problem size                     |
| fig11   | jacobi cycles/iteration vs grid size           |
| faults  | reliable MP primitives under packet loss       |
"""

from repro.experiments import (
    barrier_exp,
    faults_exp,
    fig7_memcpy,
    fig8_accum,
    fig9_grain,
    fig10_aq,
    fig11_jacobi,
    rti_exp,
)

ALL_EXPERIMENTS = {
    "barrier": barrier_exp.run,
    "rti": rti_exp.run,
    "fig7": fig7_memcpy.run,
    "fig8": fig8_accum.run,
    "fig9": fig9_grain.run,
    "fig10": fig10_aq.run,
    "fig11": fig11_jacobi.run,
    "faults": faults_exp.run,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "barrier_exp",
    "faults_exp",
    "fig7_memcpy",
    "fig8_accum",
    "fig9_grain",
    "fig10_aq",
    "fig11_jacobi",
    "rti_exp",
]
