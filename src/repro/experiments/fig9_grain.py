"""Fig. 9: ``grain`` speedup on 64 processors, hybrid vs SM scheduler.

Paper (n=12, 64 processors): at l=0 speedups are 12.0 (hybrid) vs 6.3
(SM-only); at l=1000 they are 48.6 vs 36.4.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.metrics import cycles_to_msec
from repro.analysis.tables import ExperimentResult
from repro.apps.grain import grain_parallel, sequential_cycles
from repro.experiments.common import make_machine, partitioned_map, sweep_map
from repro.perf.sweep import SweepPoint
from repro.runtime.rt import Runtime

DEFAULT_DELAYS = (0, 100, 200, 400, 600, 800, 1000)

PAPER_SPEEDUP = {
    ("hybrid", 0): 12.0,
    ("sm", 0): 6.3,
    ("hybrid", 1000): 48.6,
    ("sm", 1000): 36.4,
}


def measure_grain(kind: str, delay: int, depth: int = 12, n_nodes: int = 64, seed: int = 0):
    m = make_machine(n_nodes)
    rt = Runtime(m, scheduler=kind, seed=seed)
    result, cycles = rt.run_to_completion(
        0, lambda rt, nd: grain_parallel(rt, nd, depth, delay)
    )
    assert result == 1 << depth, "grain leaf count wrong"
    return cycles


def sweep(
    delays: Sequence[int] = DEFAULT_DELAYS, depth: int = 12, n_nodes: int = 64
) -> list[SweepPoint]:
    """The experiment as data: one independent point per (delay, scheduler)."""
    return [
        SweepPoint(
            "repro.experiments.fig9_grain:measure_grain",
            {"kind": kind, "delay": delay, "depth": depth, "n_nodes": n_nodes},
        )
        for delay in delays
        for kind in ("hybrid", "sm")
    ]


def run(
    delays: Sequence[int] = DEFAULT_DELAYS, depth: int = 12, n_nodes: int = 64,
    jobs: int = 1, partitions: int | None = None,
) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="fig9",
        title=f"Fig. 9: grain speedup, n={depth}, {n_nodes} processors",
        columns=[
            "delay_l",
            "seq_msec",
            "speedup_hybrid",
            "speedup_sm",
            "hybrid_over_sm",
            "paper_hybrid",
            "paper_sm",
        ],
        notes="speedup vs single-node sequential run (no scheduler overhead)",
    )
    points = sweep(delays, depth, n_nodes)
    values = (
        partitioned_map(points, partitions, n_nodes)
        if partitions is not None
        else sweep_map(points, jobs)
    )
    measured = dict(zip(((p.kwargs["delay"], p.kwargs["kind"]) for p in points),
                        values))
    for delay in delays:
        seq = sequential_cycles(depth, delay)
        s = {kind: seq / measured[(delay, kind)] for kind in ("hybrid", "sm")}
        res.add(
            delay_l=delay,
            seq_msec=round(cycles_to_msec(seq), 1),
            speedup_hybrid=round(s["hybrid"], 1),
            speedup_sm=round(s["sm"], 1),
            hybrid_over_sm=round(s["hybrid"] / s["sm"], 2),
            paper_hybrid=PAPER_SPEEDUP.get(("hybrid", delay), "-"),
            paper_sm=PAPER_SPEEDUP.get(("sm", delay), "-"),
        )
    return res
