"""Content-addressed run cache for deterministic sweep points.

Every sweep point is a pure function of its descriptor: the module-
qualified ``fn`` plus plain-data kwargs fully determine the result
(seeds travel inside the kwargs, and serial/parallel cycle identity is
a tested invariant). That makes memoization sound by construction —
the only way a cached result can go stale is the *code* changing, so
the cache key is built from three parts:

* **descriptor hash** — SHA-256 over the schema version, the ``fn``
  spec, and the sorted kwargs items;
* **code fingerprint** — SHA-256 over the source of the point
  function's module plus every ``repro`` module it transitively
  imports (static ``ast`` walk, memoized by mtime/size). Editing any
  module in that closure changes the fingerprint, so only the points
  that could be affected re-run;
* **observation key** — ``repr()`` of the active
  :class:`~repro.obs.session.ObsConfig` (empty when unobserved), since
  an observed run caches its observation payload alongside the result.

Entries live under ``<cache-dir>/objects/<k[:2]>/<k>.pkl`` as a
SHA-256 digest line followed by a pickled payload; a digest mismatch
(truncated or bit-flipped file) is detected on load, counted as
*corrupt*, and the point transparently re-runs. A sidecar under
``costs/`` remembers each point's last measured wall cost *keyed
without the fingerprint*, so after a code edit the scheduler still
knows which points were expensive (longest-cost-first dispatch) and a
missing entry whose cost sidecar exists is counted as an
*invalidation* rather than a plain miss.

Maintenance tool::

    python -m repro.perf.cache stats   [--cache-dir D]
    python -m repro.perf.cache gc      [--max-age-days N] [--max-bytes B] [--all]
    python -m repro.perf.cache verify  [--sample N] [--seed S] [--fix]
    python -m repro.perf.cache fingerprint        # repo-wide, for CI cache keys
    python -m repro.perf.cache bench   [--min-speedup X] [--jobs N]

``verify`` re-runs a random sample of cached points from scratch and
compares results bit-for-bit (pickled bytes) — the defence against a
stale or corrupted cache silently feeding a table.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import importlib.util
import itertools
import json
import os
import pickle
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.sweep import SweepPoint

#: bump to orphan every existing entry (schema migrations)
CACHE_SCHEMA = 1

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"

_PICKLE_PROTO = 4


# ----------------------------------------------------------------------
# Code fingerprinting: static import closure over the repro package
# ----------------------------------------------------------------------
_PATHS: dict[str, str | None] = {}
_SRC_HASH: dict[str, tuple[tuple[int, int], str]] = {}
_IMPORTS: dict[str, tuple[tuple[int, int], frozenset[str]]] = {}


def _module_path(modname: str) -> str | None:
    """Source file of ``modname`` (None for builtins / missing)."""
    if modname in _PATHS:
        return _PATHS[modname]
    try:
        spec = importlib.util.find_spec(modname)
    except (ImportError, ValueError):
        spec = None
    origin = spec.origin if spec is not None else None
    path = origin if origin and origin.endswith(".py") else None
    _PATHS[modname] = path
    return path


def _stat_key(path: str) -> tuple[int, int]:
    st = os.stat(path)
    return (st.st_mtime_ns, st.st_size)


def _source_hash(path: str) -> str:
    """SHA-256 of a source file, memoized by (mtime_ns, size)."""
    key = _stat_key(path)
    cached = _SRC_HASH.get(path)
    if cached is not None and cached[0] == key:
        return cached[1]
    digest = hashlib.sha256(Path(path).read_bytes()).hexdigest()
    _SRC_HASH[path] = (key, digest)
    return digest


def _with_ancestors(modname: str) -> list[str]:
    parts = modname.split(".")
    return [".".join(parts[: i + 1]) for i in range(len(parts))]


def _imports_of(modname: str, path: str) -> frozenset[str]:
    """``repro.*`` modules statically imported by one source file."""
    key = _stat_key(path)
    cached = _IMPORTS.get(path)
    if cached is not None and cached[0] == key:
        return cached[1]
    out: set[str] = set()
    try:
        tree = ast.parse(Path(path).read_text())
    except SyntaxError:
        tree = ast.Module(body=[], type_ignores=[])
    is_pkg = os.path.basename(path) == "__init__.py"
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    out.update(_with_ancestors(alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                pkg_parts = modname.split(".") if is_pkg else modname.split(".")[:-1]
                if node.level > 1:
                    pkg_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(pkg_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            if base.split(".")[0] != "repro":
                continue
            out.update(_with_ancestors(base))
            # `from repro.perf import sweep` names a submodule, not an attr
            for alias in node.names:
                candidate = f"{base}.{alias.name}"
                if _module_path(candidate) is not None:
                    out.add(candidate)
    found = frozenset(out)
    _IMPORTS[path] = (key, found)
    return found


def import_closure(modname: str) -> dict[str, str]:
    """The point module plus its transitive ``repro`` imports, as
    ``{module: source-path}`` (unresolvable modules are skipped)."""
    seen: dict[str, str] = {}
    stack = [modname]
    while stack:
        mod = stack.pop()
        if mod in seen:
            continue
        path = _module_path(mod)
        if path is None:
            continue
        seen[mod] = path
        for dep in _imports_of(mod, path):
            if dep not in seen:
                stack.append(dep)
    return seen


def code_fingerprint(modname: str) -> str:
    """Fingerprint of ``modname`` and everything it could reach inside
    the ``repro`` package; changes iff any of that source changes."""
    closure = import_closure(modname)
    if not closure:
        return f"unresolved:{modname}"
    h = hashlib.sha256()
    for mod in sorted(closure):
        h.update(f"{mod}={_source_hash(closure[mod])}\n".encode())
    return h.hexdigest()


def repo_fingerprint() -> str:
    """Fingerprint over *every* ``repro`` source file — the coarse key
    CI uses for ``actions/cache`` (any code change → new cache key)."""
    import repro

    root = Path(repro.__file__).parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(f"{path.relative_to(root)}={_source_hash(str(path))}\n".encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class CacheStats:
    """Hit/miss accounting for one :class:`RunCache` instance.

    Counter bumps go through :meth:`bump` under a lock — one cache
    instance may be shared by many ``repro.serve`` job threads."""

    FIELDS = ("hits", "misses", "stores", "invalidations", "corrupt", "uncacheable")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for f in self.FIELDS:
            setattr(self, f, 0)

    def bump(self, field: str, n: int = 1) -> None:
        if field not in self.FIELDS:
            raise ValueError(f"unknown cache stat {field!r}")
        with self._lock:
            setattr(self, field, getattr(self, field) + n)

    def snapshot(self) -> dict[str, int]:
        return {f: getattr(self, f) for f in self.FIELDS}

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counter movement since a :meth:`snapshot` was taken."""
        return {f: getattr(self, f) - before.get(f, 0) for f in self.FIELDS}

    def summary(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses "
            f"({self.invalidations} invalidated, {self.corrupt} corrupt), "
            f"{self.stores} stored"
        )


class RunCache:
    """Content-addressed on-disk store of sweep-point results."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(
            root or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        )
        self.stats = CacheStats()

    # -- keys ----------------------------------------------------------
    def descriptor_hash(self, point: "SweepPoint") -> str:
        """Identity of the *work* (fn + kwargs), fingerprint-free —
        stable across code edits, so costs survive invalidation."""
        payload = repr((CACHE_SCHEMA, point.fn, sorted(point.kwargs.items())))
        return hashlib.sha256(payload.encode()).hexdigest()

    def key_for(self, point: "SweepPoint", fingerprint: str, obs_key: str = "") -> str:
        payload = f"{self.descriptor_hash(point)}\n{fingerprint}\n{obs_key}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def _obj_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def _cost_path(self, dhash: str) -> Path:
        return self.root / "costs" / dhash[:2] / f"{dhash}.json"

    # -- entry encoding ------------------------------------------------
    @staticmethod
    def _encode(entry: dict[str, Any]) -> bytes:
        payload = pickle.dumps(entry, protocol=_PICKLE_PROTO)
        return hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload

    @staticmethod
    def _decode(blob: bytes) -> dict[str, Any] | None:
        digest, sep, payload = blob.partition(b"\n")
        if not sep or hashlib.sha256(payload).hexdigest().encode() != digest:
            return None
        try:
            entry = pickle.loads(payload)
        except Exception:
            return None
        return entry if isinstance(entry, dict) and "result" in entry else None

    #: distinguishes temp files written by threads sharing one pid
    _tmp_seq = itertools.count()

    def _write_atomic(self, path: Path, blob: bytes) -> None:
        """Publish ``blob`` at ``path`` via write-to-temp + atomic
        rename. The temp name is unique per (pid, thread, sequence), so
        two jobs materializing the *same* entry concurrently never
        stomp each other's half-written file — whoever renames last
        wins, and both wrote identical content-addressed bytes."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".{path.name}.{os.getpid()}.{threading.get_ident()}"
            f".{next(self._tmp_seq)}.tmp"
        )
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    # -- get / put -----------------------------------------------------
    def get(self, key: str, point: "SweepPoint") -> dict[str, Any] | None:
        path = self._obj_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.bump("misses")
            if self._cost_path(self.descriptor_hash(point)).exists():
                # the point was cached before under a different key:
                # code (or observation config) changed underneath it
                self.stats.bump("invalidations")
            return None
        entry = self._decode(blob)
        if entry is None or entry.get("key") != key:
            self.stats.bump("corrupt")
            self.stats.bump("misses")
            path.unlink(missing_ok=True)
            return None
        self.stats.bump("hits")
        return entry

    def put(
        self,
        key: str,
        point: "SweepPoint",
        fingerprint: str,
        obs_key: str,
        result: Any,
        obs: dict | None,
        cost: float,
    ) -> None:
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "fn": point.fn,
            "kwargs": dict(point.kwargs),
            "fingerprint": fingerprint,
            "obs_key": obs_key,
            "result": result,
            "obs": obs,
            "cost": cost,
            "created": time.time(),
        }
        try:
            blob = self._encode(entry)
        except Exception:
            self.stats.bump("uncacheable")
            return
        self._write_atomic(self._obj_path(key), blob)
        self.stats.bump("stores")
        dhash = self.descriptor_hash(point)
        cost_blob = json.dumps({"cost": cost, "fn": point.fn}).encode()
        self._write_atomic(self._cost_path(dhash), cost_blob)

    def recorded_cost(self, point: "SweepPoint") -> float | None:
        """Last measured wall cost of this point under *any* code
        version (drives longest-cost-first scheduling of misses)."""
        try:
            data = json.loads(self._cost_path(self.descriptor_hash(point)).read_bytes())
            return float(data["cost"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # -- maintenance ---------------------------------------------------
    def entries(self) -> Iterator[tuple[Path, dict[str, Any] | None]]:
        """Every object file with its decoded entry (None = corrupt)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.pkl")):
            try:
                yield path, self._decode(path.read_bytes())
            except OSError:
                continue

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p, _ in self.entries())

    def gc(
        self,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
        everything: bool = False,
    ) -> int:
        """Delete entries by age, then oldest-first down to a byte
        budget; ``everything`` wipes objects and cost sidecars both."""
        removed = 0
        files = [(p.stat().st_mtime, p) for p, _ in self.entries()]
        if everything:
            max_bytes = -1
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            for mtime, path in list(files):
                if mtime < cutoff:
                    path.unlink(missing_ok=True)
                    files.remove((mtime, path))
                    removed += 1
        if max_bytes is not None:
            files.sort()  # oldest first
            total = sum(p.stat().st_size for _, p in files)
            while files and total > max_bytes:
                _, path = files.pop(0)
                total -= path.stat().st_size
                path.unlink(missing_ok=True)
                removed += 1
        if everything:
            costs = self.root / "costs"
            if costs.is_dir():
                for path in costs.glob("*/*.json"):
                    path.unlink(missing_ok=True)
        return removed

    def verify(
        self, sample: int = 5, seed: int = 0, fix: bool = False
    ) -> dict[str, int]:
        """Re-run a random sample of entries from scratch and compare
        bit-for-bit. Entries whose fingerprint no longer matches the
        current code are *stale* (skipped — their result may
        legitimately differ); corrupt files and result mismatches are
        the failures, optionally deleted with ``fix``."""
        import random

        from repro.perf.sweep import SweepPoint, run_point

        report = {"checked": 0, "ok": 0, "mismatched": 0, "stale": 0, "corrupt": 0}
        valid: list[tuple[Path, dict[str, Any]]] = []
        for path, entry in self.entries():
            if entry is None:
                report["corrupt"] += 1
                if fix:
                    path.unlink(missing_ok=True)
            else:
                valid.append((path, entry))
        chosen = random.Random(seed).sample(valid, min(sample, len(valid)))
        for path, entry in chosen:
            modname = entry["fn"].partition(":")[0]
            if entry["fingerprint"] != code_fingerprint(modname):
                report["stale"] += 1
                continue
            report["checked"] += 1
            point = SweepPoint(entry["fn"], entry["kwargs"])
            with activate(None):  # never satisfy a verify from the cache
                fresh = run_point(point)
            same = pickle.dumps(fresh, protocol=_PICKLE_PROTO) == pickle.dumps(
                entry["result"], protocol=_PICKLE_PROTO
            )
            if same:
                report["ok"] += 1
            else:
                report["mismatched"] += 1
                if fix:
                    path.unlink(missing_ok=True)
        return report


# ----------------------------------------------------------------------
# The active cache (mirrors repro.obs.session.current). Thread-local:
# each repro.serve job worker activates the *shared* RunCache on its
# own thread without clobbering the activation of any other thread —
# the cache object itself is safe to share (locked stats, atomic
# writes), only the "is a cache active here" switch is per-thread.
# ----------------------------------------------------------------------
_TLS = threading.local()


def current() -> RunCache | None:
    """The active cache, if any (consulted by ``SweepRunner.map``)."""
    return getattr(_TLS, "cache", None)


@contextmanager
def activate(cache: RunCache | None) -> Iterator[RunCache | None]:
    """Make ``cache`` the calling thread's run cache for the block
    (``None`` disables caching, shadowing any outer cache)."""
    prev = getattr(_TLS, "cache", None)
    _TLS.cache = cache
    try:
        yield cache
    finally:
        _TLS.cache = prev


# ----------------------------------------------------------------------
# python -m repro.perf.cache
# ----------------------------------------------------------------------
def _cmd_stats(cache: RunCache) -> int:
    n = bytes_total = corrupt = 0
    by_fn: dict[str, int] = {}
    for path, entry in cache.entries():
        n += 1
        bytes_total += path.stat().st_size
        if entry is None:
            corrupt += 1
        else:
            by_fn[entry["fn"]] = by_fn.get(entry["fn"], 0) + 1
    print(f"cache dir: {cache.root}")
    print(f"entries:   {n} ({bytes_total:,} bytes, {corrupt} corrupt)")
    for fn, count in sorted(by_fn.items(), key=lambda kv: -kv[1]):
        print(f"  {count:>5}  {fn}")
    return 0


def _cmd_gc(cache: RunCache, args: argparse.Namespace) -> int:
    removed = cache.gc(
        max_age_days=args.max_age_days,
        max_bytes=args.max_bytes,
        everything=args.all,
    )
    print(f"removed {removed} entries from {cache.root}")
    return 0


def _cmd_verify(cache: RunCache, args: argparse.Namespace) -> int:
    report = cache.verify(sample=args.sample, seed=args.seed, fix=args.fix)
    print(
        f"verified {report['checked']} sampled entries: {report['ok']} ok, "
        f"{report['mismatched']} mismatched, {report['stale']} stale (skipped), "
        f"{report['corrupt']} corrupt"
    )
    bad = report["mismatched"] + report["corrupt"]
    if bad:
        print("FAIL: cache holds entries that do not reproduce"
              + (" (deleted)" if args.fix else " (re-run with --fix to drop them)"))
    return 1 if bad else 0


def _cmd_bench(cache: RunCache, args: argparse.Namespace) -> int:
    """Run the quick experiment sweep twice under the cache and gate on
    the warm-run speedup (CI uses this after restoring ``objects/``)."""
    from repro.cli import QUICK_ARGS
    from repro.experiments import ALL_EXPERIMENTS

    def run_all() -> tuple[float, str]:
        t0 = time.perf_counter()
        tables = [
            ALL_EXPERIMENTS[e](jobs=args.jobs, **QUICK_ARGS[e]).format_table()
            for e in ALL_EXPERIMENTS
        ]
        return time.perf_counter() - t0, "\n".join(tables)

    with activate(cache):
        before = cache.stats.snapshot()
        first_wall, first_tables = run_all()
        first = cache.stats.delta(before)
        second_wall, second_tables = run_all()
    speedup = first_wall / max(second_wall, 1e-9)
    first_points = first["hits"] + first["misses"]
    first_warm = first["hits"] / first_points if first_points else 0.0
    print(f"first sweep:  {first_wall:.2f}s ({first['hits']} hits / "
          f"{first['misses']} misses)")
    print(f"second sweep: {second_wall:.2f}s ({speedup:.1f}x)")
    if first_tables != second_tables:
        print("FAIL: warm tables are not byte-identical to the first run")
        return 1
    # a restored CI cache can make the *first* run warm already — the
    # speedup gate only applies to a genuinely cold first sweep
    if first_warm >= 0.5:
        print(f"first sweep was already {first_warm:.0%} warm "
              "(restored cache); speedup gate skipped")
        return 0
    if speedup < args.min_speedup:
        print(f"FAIL: warm sweep only {speedup:.1f}x faster "
              f"(gate: >= {args.min_speedup}x)")
        return 1
    print(f"OK: tables byte-identical, warm speedup {speedup:.1f}x "
          f">= {args.min_speedup}x")
    return 0


def main(argv: list[str] | None = None) -> int:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--cache-dir", default=None, metavar="DIR",
                        help=f"cache location (default: ${CACHE_DIR_ENV} "
                        f"or {DEFAULT_CACHE_DIR!r})")
    ap = argparse.ArgumentParser(
        prog="python -m repro.perf.cache",
        description="Inspect and maintain the content-addressed run cache.",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)
    sub.add_parser("stats", parents=[common],
                   help="entry count, bytes, per-function breakdown")
    gcp = sub.add_parser("gc", parents=[common],
                         help="delete entries by age / byte budget")
    gcp.add_argument("--max-age-days", type=float, default=None)
    gcp.add_argument("--max-bytes", type=int, default=None)
    gcp.add_argument("--all", action="store_true", help="wipe the cache entirely")
    vp = sub.add_parser("verify", parents=[common],
                        help="re-run sampled entries and compare")
    vp.add_argument("--sample", type=int, default=5)
    vp.add_argument("--seed", type=int, default=0)
    vp.add_argument("--fix", action="store_true",
                    help="delete mismatched/corrupt entries")
    sub.add_parser("fingerprint", parents=[common],
                   help="print the repo-wide code fingerprint (CI cache key)")
    bp = sub.add_parser("bench", parents=[common],
                        help="quick sweep twice; gate warm speedup")
    bp.add_argument("--min-speedup", type=float, default=5.0)
    bp.add_argument("--jobs", type=int, default=1)
    args = ap.parse_args(argv)

    if args.cmd == "fingerprint":
        print(repo_fingerprint())
        return 0
    cache = RunCache(args.cache_dir)
    if args.cmd == "stats":
        return _cmd_stats(cache)
    if args.cmd == "gc":
        return _cmd_gc(cache, args)
    if args.cmd == "verify":
        return _cmd_verify(cache, args)
    return _cmd_bench(cache, args)


if __name__ == "__main__":  # pragma: no cover
    # `python -m repro.perf.cache` executes this file as `__main__`,
    # a *second* module object whose `_TLS` activation state would be invisible
    # to SweepRunner (which imports the canonical repro.perf.cache) —
    # delegate to the canonical module so activate() is seen
    from repro.perf.cache import main as _canonical_main

    sys.exit(_canonical_main())
