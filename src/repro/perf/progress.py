"""Thread-local sweep progress reporting.

A *progress callback* is a host-side observer of sweep execution: the
:class:`~repro.perf.sweep.SweepRunner` calls it (in the parent
process, as results land) with plain-dict events, so a service layer
can stream per-point completion without the experiment drivers
knowing anything about it. It follows the same thread-local
activation pattern as the run cache and the observation session, so
concurrent ``repro.serve`` job workers each observe only their own
sweeps::

    with progress.activate(on_event):
        fn(**kwargs)          # every sweep inside reports to on_event

Events (all host-side; simulated time never sees them):

* ``{"event": "sweep_start", "points": N, "cached": H}`` — a sweep of
  ``N`` points begins; ``H`` of them were answered by the run cache.
* ``{"event": "point", "index": i, "label": "mod:fn[i]",
  "cached": bool}`` — point ``i`` finished (replayed or executed).

Callbacks run on the sweep's parent thread. An exception raised by
the callback propagates out of ``SweepRunner.map`` — which is exactly
how the service's cooperative cancellation interrupts a job *between
sweep points* instead of only between phases.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

ProgressCallback = Callable[[dict[str, Any]], None]

_TLS = threading.local()


def current() -> ProgressCallback | None:
    """The calling thread's active progress callback, if any."""
    return getattr(_TLS, "callback", None)


@contextmanager
def activate(callback: ProgressCallback | None) -> Iterator[None]:
    """Install ``callback`` as the calling thread's progress observer
    for the duration of the block (None deactivates)."""
    prev = getattr(_TLS, "callback", None)
    _TLS.callback = callback
    try:
        yield
    finally:
        _TLS.callback = prev


def point_label(point: Any, index: int) -> str:
    """A human-readable label for one sweep point: the callable's
    name plus the point's position in the sweep."""
    fn = getattr(point, "fn", "")
    return f"{str(fn).partition(':')[2] or fn}[{index}]"
