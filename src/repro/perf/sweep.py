"""Parallel sweep execution for independent simulation points.

Every figure/table experiment is a *sweep*: a list of fully
independent simulations (one machine config + workload descriptor
each) whose results are merged into a table. The paper's own
evaluation farmed ASIM runs out across workstations for exactly this
reason — cycle-level simulation is compute-bound and sweep points
share nothing.

The contract here keeps parallel runs bit-identical to serial ones:

* A :class:`SweepPoint` carries a *descriptor* (module-qualified
  function name + plain-data kwargs), never a live simulator object,
  so points pickle cleanly into worker processes and every worker
  builds its machine from scratch exactly as a serial run would.
* Each point function is deterministic given its kwargs (seeds travel
  inside the kwargs), so where it runs cannot change what it returns.
* :meth:`SweepRunner.map` always returns results in the order of its
  input points (``multiprocessing.Pool.map`` preserves order), so the
  merge step — and therefore the rendered table — is byte-identical
  at any job count.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation in a sweep.

    ``fn`` is a ``"package.module:callable"`` spec; ``kwargs`` must be
    plain picklable data (ints, floats, strings, tuples) — machine
    configs and workloads are described, not instantiated, until the
    point actually runs.
    """

    fn: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    def resolve(self) -> Callable[..., Any]:
        modname, sep, attr = self.fn.partition(":")
        if not sep:
            raise ValueError(f"point fn {self.fn!r} is not 'module:callable'")
        fn = getattr(importlib.import_module(modname), attr)
        if not callable(fn):
            raise TypeError(f"{self.fn!r} resolved to non-callable {fn!r}")
        return fn


def run_point(point: SweepPoint) -> Any:
    """Execute one sweep point (also the worker-side entry point)."""
    return point.resolve()(**point.kwargs)


def default_jobs() -> int:
    """Job count when the caller says 'parallel' without a number."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


class SweepRunner:
    """Fan independent sweep points out over worker processes.

    ``jobs=1`` (the default) runs points in-process in order —
    the reference behaviour. ``jobs=N`` uses a ``multiprocessing``
    pool; ``jobs=None`` picks :func:`default_jobs`. Results come back
    in input order either way (deterministic ordered merge).
    """

    def __init__(self, jobs: int | None = 1) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))

    def map(self, points: Sequence[SweepPoint]) -> list[Any]:
        points = list(points)
        if self.jobs <= 1 or len(points) <= 1:
            # in-process: an active observation session sees each
            # machine directly through make_machine
            return [run_point(p) for p in points]
        import multiprocessing as mp

        from repro.obs.session import _obs_run_point, current as obs_current

        # never spin up more workers than there are points
        procs = min(self.jobs, len(points))
        sess = obs_current()
        if sess is None:
            with mp.Pool(processes=procs) as pool:
                # chunksize=1: sweep points are coarse (whole
                # simulations), so scheduling freedom beats batching
                return pool.map(run_point, points, chunksize=1)
        # observed parallel run: each worker opens its own session and
        # ships plain observation data back with its result; absorbing
        # in input order keeps the merge deterministic at any job count
        with mp.Pool(processes=procs) as pool:
            out = pool.map(
                _obs_run_point,
                [(sess.cfg, p) for p in points],
                chunksize=1,
            )
        results = []
        for result, data in out:
            results.append(result)
            sess.absorb(data)
        return results
