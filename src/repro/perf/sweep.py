"""Parallel + incremental sweep execution for independent simulation points.

Every figure/table experiment is a *sweep*: a list of fully
independent simulations (one machine config + workload descriptor
each) whose results are merged into a table. The paper's own
evaluation farmed ASIM runs out across workstations for exactly this
reason — cycle-level simulation is compute-bound and sweep points
share nothing.

The contract here keeps parallel and cached runs bit-identical to
serial ones:

* A :class:`SweepPoint` carries a *descriptor* (module-qualified
  function name + plain-data kwargs), never a live simulator object,
  so points pickle cleanly into worker processes and every worker
  builds its machine from scratch exactly as a serial run would.
* Each point function is deterministic given its kwargs (seeds travel
  inside the kwargs), so where it runs — or whether it is replayed
  from the content-addressed run cache (:mod:`repro.perf.cache`) —
  cannot change what it returns.
* :meth:`SweepRunner.map` always merges results back in the order of
  its input points, whatever order they executed in, so the rendered
  table is byte-identical at any job count and any cache hit ratio.

Three host-speed mechanisms live here:

* **Persistent worker pool.** Pools are process-global and reused
  across sweeps (and across the 8-experiment wallclock run) instead of
  being constructed and torn down per experiment; ``warm_pool``
  exposes the startup cost so benchmarks can report it separately.
* **Explicit chunking.** Misses go through ``Pool.imap`` with a
  chunksize derived from the point count (``_chunksize``), so large
  ablation sweeps amortize IPC without one slow chunk serializing the
  tail.
* **Cost-aware incremental execution.** With a run cache active
  (:func:`repro.perf.cache.activate`), cache hits return instantly and
  only misses execute — scheduled longest-recorded-cost-first so the
  parallel critical path shrinks.
"""

from __future__ import annotations

import atexit
import importlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation in a sweep.

    ``fn`` is a ``"package.module:callable"`` spec; ``kwargs`` must be
    plain picklable data (ints, floats, strings, tuples) — machine
    configs and workloads are described, not instantiated, until the
    point actually runs.
    """

    fn: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    def resolve(self) -> Callable[..., Any]:
        modname, sep, attr = self.fn.partition(":")
        if not sep:
            raise ValueError(f"point fn {self.fn!r} is not 'module:callable'")
        fn = getattr(importlib.import_module(modname), attr)
        if not callable(fn):
            raise TypeError(f"{self.fn!r} resolved to non-callable {fn!r}")
        return fn


def run_point(point: SweepPoint) -> Any:
    """Execute one sweep point (also the worker-side entry point)."""
    return point.resolve()(**point.kwargs)


def _timed_run_point(point: SweepPoint) -> tuple[Any, float]:
    """Worker entry that also measures the point's wall cost, which the
    cache records to drive longest-cost-first scheduling next time."""
    t0 = time.perf_counter()
    result = run_point(point)
    return result, time.perf_counter() - t0


def _timed_obs_run_point(arg: tuple[Any, SweepPoint]) -> tuple[Any, dict, float]:
    """Observed worker entry with wall-cost measurement."""
    from repro.obs.session import _obs_run_point

    t0 = time.perf_counter()
    result, data = _obs_run_point(arg)
    return result, data, time.perf_counter() - t0


def default_jobs() -> int:
    """Job count when the caller says 'parallel' without a number."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


PARALLEL_MIN_POINTS_ENV = "REPRO_PARALLEL_MIN_POINTS"

#: below this many runnable points, fan-out costs more than it saves:
#: BENCH_wallclock.json measured the 8-experiment quick sweep (35
#: points, 4 jobs) at 0.74x *slower* than serial — pool dispatch and
#: result IPC dominate when each sweep hands the pool only a handful
#: of points. Tables are byte-identical either way (ordered merge).
DEFAULT_PARALLEL_MIN_POINTS = 24


def parallel_min_points() -> int:
    """Point count at which a sweep is worth fanning out."""
    env = os.environ.get(PARALLEL_MIN_POINTS_ENV)
    if env:
        return max(2, int(env))
    return DEFAULT_PARALLEL_MIN_POINTS


def _chunksize(n_points: int, procs: int) -> int:
    """~4 chunks per worker, floor 1. Sweep points are coarse (whole
    simulations), so small sweeps keep chunksize 1 for scheduling
    freedom; large ablation sweeps batch to amortize pool IPC without
    letting one slow chunk serialize the tail."""
    return max(1, n_points // (max(1, procs) * 4))


# ----------------------------------------------------------------------
# Persistent worker pools (keyed by size, reused across sweeps)
# ----------------------------------------------------------------------
_POOLS: dict[int, Any] = {}


def _get_pool(procs: int):
    pool = _POOLS.get(procs)
    if pool is None:
        import multiprocessing as mp

        pool = mp.Pool(processes=procs)
        _POOLS[procs] = pool
    return pool


def warm_pool(procs: int) -> float:
    """Create the persistent ``procs``-wide pool if it does not exist
    yet; returns the startup cost in seconds (0.0 when already warm,
    or when ``procs <= 1`` needs no pool at all)."""
    if procs <= 1 or procs in _POOLS:
        return 0.0
    t0 = time.perf_counter()
    _get_pool(procs)
    return time.perf_counter() - t0


def shutdown_pools() -> None:
    """Tear down every persistent pool (atexit, and test isolation)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_pools)


class SweepRunner:
    """Fan independent sweep points out over worker processes, replaying
    cached points when a run cache is active.

    ``jobs=1`` (the default) runs points in-process in order —
    the reference behaviour. ``jobs=N`` uses a persistent
    ``multiprocessing`` pool; ``jobs=None`` picks :func:`default_jobs`.
    Results come back in input order either way (deterministic ordered
    merge)."""

    def __init__(self, jobs: int | None = 1) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))

    def _fan_out(self, n_runnable: int) -> bool:
        """Whether ``n_runnable`` points justify the worker pool. Tiny
        sweeps run inline: per-point dispatch + result IPC outweighs
        the parallelism (the wallclock bench measured 0.74x at this
        sweep scale), and the ordered merge keeps the resulting tables
        byte-identical either way."""
        return self.jobs > 1 and n_runnable >= parallel_min_points()

    def map(self, points: Sequence[SweepPoint]) -> list[Any]:
        points = list(points)
        from repro.obs.session import current as obs_current
        from repro.perf.cache import current as cache_current
        from repro.perf.progress import current as progress_current

        cache = cache_current()
        sess = obs_current()
        notify = progress_current()
        if cache is not None:
            return self._map_cached(points, cache, sess, notify)
        return self._map_plain(points, sess, notify)

    @staticmethod
    def _point_done(notify: Any, point: SweepPoint, i: int,
                    cached: bool = False) -> None:
        """Report one finished point to the active progress callback
        (host-side only; a raised exception aborts the sweep — the
        service's between-points cancellation hook)."""
        if notify is not None:
            from repro.perf.progress import point_label

            notify({
                "event": "point", "index": i,
                "label": point_label(point, i), "cached": cached,
            })

    # -- no cache: the reference parallel path -------------------------
    def _map_plain(
        self, points: list[SweepPoint], sess: Any, notify: Any = None
    ) -> list[Any]:
        if notify is not None:
            notify({"event": "sweep_start", "points": len(points), "cached": 0})
        if not self._fan_out(len(points)):
            # in-process: an active observation session sees each
            # machine directly through make_machine
            results = []
            for i, p in enumerate(points):
                results.append(run_point(p))
                self._point_done(notify, p, i)
            return results
        pool = _get_pool(self.jobs)
        cs = _chunksize(len(points), min(self.jobs, len(points)))
        if sess is None:
            results = []
            for i, result in enumerate(pool.imap(run_point, points, cs)):
                results.append(result)
                self._point_done(notify, points[i], i)
            return results
        # observed parallel run: each worker opens its own session and
        # ships plain observation data back with its result; absorbing
        # in input order keeps the merge deterministic at any job count
        from repro.obs.session import _obs_run_point

        results = []
        for result, data in pool.imap(
            _obs_run_point, [(sess.cfg, p) for p in points], cs
        ):
            results.append(result)
            sess.absorb(data)
            self._point_done(notify, points[len(results) - 1], len(results) - 1)
        return results

    # -- incremental path: replay hits, run misses cost-first ----------
    def _map_cached(
        self, points: list[SweepPoint], cache: Any, sess: Any,
        notify: Any = None,
    ) -> list[Any]:
        from repro.perf.cache import code_fingerprint

        n = len(points)
        obs_cfg = sess.cfg if (sess is not None and sess.cfg.enabled) else None
        obs_key = repr(obs_cfg) if obs_cfg is not None else ""
        before = cache.stats.snapshot()

        fps: dict[str, str] = {}

        def fingerprint_of(point: SweepPoint) -> str:
            mod = point.fn.partition(":")[0]
            fp = fps.get(mod)
            if fp is None:
                fp = fps[mod] = code_fingerprint(mod)
            return fp

        keys = [cache.key_for(p, fingerprint_of(p), obs_key) for p in points]
        results: list[Any] = [None] * n
        payloads: list[dict | None] = [None] * n
        misses: list[int] = []
        for i, point in enumerate(points):
            entry = cache.get(keys[i], point)
            if entry is not None:
                results[i] = entry["result"]
                payloads[i] = entry.get("obs")
            else:
                misses.append(i)

        if notify is not None:
            notify({
                "event": "sweep_start", "points": n,
                "cached": n - len(misses),
            })
            missing = set(misses)
            for i, point in enumerate(points):
                if i not in missing:
                    self._point_done(notify, point, i, cached=True)
        if misses:
            self._run_misses(
                points, misses, keys, cache, obs_cfg, obs_key,
                fingerprint_of, results, payloads, notify,
            )
        if obs_cfg is not None:
            # merge observation payloads (cached and fresh alike) in
            # input order — same determinism contract as _map_plain
            for data in payloads:
                if data:
                    sess.absorb(data)
        if sess is not None:
            sess.note_cache(cache.stats.delta(before))
        return results

    def _run_misses(
        self,
        points: list[SweepPoint],
        misses: list[int],
        keys: list[str],
        cache: Any,
        obs_cfg: Any,
        obs_key: str,
        fingerprint_of: Callable[[SweepPoint], str],
        results: list[Any],
        payloads: list[dict | None],
        notify: Any = None,
    ) -> None:
        def put(i: int, result: Any, data: dict | None, cost: float) -> None:
            results[i] = result
            if data is not None:
                payloads[i] = data
            cache.put(
                keys[i], points[i], fingerprint_of(points[i]), obs_key,
                result, data, cost,
            )
            # after the cache write: a callback-raised abort (the
            # service's cancellation path) never loses finished work
            self._point_done(notify, points[i], i)

        if self._fan_out(len(misses)):
            # longest-recorded-cost-first shrinks the parallel critical
            # path; points never seen before sort first (conservatively
            # "could be long"). Results land back by original index, so
            # the merge order is untouched.
            def rank(i: int) -> float:
                cost = cache.recorded_cost(points[i])
                return -cost if cost is not None else float("-inf")

            order = sorted(misses, key=rank)
            pool = _get_pool(self.jobs)
            cs = _chunksize(len(misses), min(self.jobs, len(misses)))
            if obs_cfg is None:
                it = pool.imap(
                    _timed_run_point, [points[i] for i in order], cs
                )
                for i, (result, cost) in zip(order, it):
                    put(i, result, None, cost)
            else:
                it = pool.imap(
                    _timed_obs_run_point,
                    [(obs_cfg, points[i]) for i in order], cs,
                )
                for i, (result, data, cost) in zip(order, it):
                    put(i, result, data, cost)
            return
        # serial misses keep input order (the reference behaviour);
        # under a session each point runs in a nested session so its
        # observation payload is captured per-point for the cache —
        # absorbed by the caller exactly like a worker payload
        for i in misses:
            if obs_cfg is None:
                result, cost = _timed_run_point(points[i])
                put(i, result, None, cost)
            else:
                result, data, cost = _timed_obs_run_point((obs_cfg, points[i]))
                put(i, result, data, cost)
