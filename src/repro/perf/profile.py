"""cProfile helpers for the host-speed work (CLI ``--profile``)."""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable


def run_profiled(
    fn: Callable[..., Any], *args: Any, label: str = "", top: int = 15, **kwargs: Any
) -> tuple[Any, str]:
    """Run ``fn`` under cProfile; returns ``(result, report)``.

    The report is the top-``top`` functions by cumulative time — the
    view that surfaces event-loop hot paths (heap ops, effect
    dispatch, coherence transactions) rather than leaf noise.
    """
    prof = cProfile.Profile()
    result = prof.runcall(fn, *args, **kwargs)
    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    header = f"-- cProfile top {top} (cumulative){': ' + label if label else ''} --"
    return result, header + "\n" + buf.getvalue()
