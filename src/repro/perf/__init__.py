"""Host-speed tooling: parallel + incremental sweep execution, the
content-addressed run cache, and profiling.

See ``docs/PERFORMANCE.md`` for the architecture.

``repro.perf.cache`` names are re-exported lazily (PEP 562) so that
``python -m repro.perf.cache`` does not import the module twice.
"""

from repro.perf.profile import run_profiled
from repro.perf.sweep import (
    SweepPoint,
    SweepRunner,
    default_jobs,
    run_point,
    shutdown_pools,
    warm_pool,
)

_CACHE_EXPORTS = {
    "RunCache",
    "activate",
    "code_fingerprint",
    "repo_fingerprint",
    "cache_current",
}


def __getattr__(name):
    if name in _CACHE_EXPORTS:
        from repro.perf import cache

        return getattr(cache, "current" if name == "cache_current" else name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SweepPoint",
    "SweepRunner",
    "RunCache",
    "activate",
    "cache_current",
    "code_fingerprint",
    "repo_fingerprint",
    "default_jobs",
    "run_point",
    "run_profiled",
    "shutdown_pools",
    "warm_pool",
]
