"""Host-speed tooling: parallel sweep execution and profiling.

See ``docs/PERFORMANCE.md`` for the architecture.
"""

from repro.perf.profile import run_profiled
from repro.perf.sweep import SweepPoint, SweepRunner, default_jobs, run_point

__all__ = ["SweepPoint", "SweepRunner", "default_jobs", "run_point", "run_profiled"]
