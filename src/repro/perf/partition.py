"""Partitioned parallel simulation: node-sharded engines with
conservative lookahead.

One machine is split across worker processes by contiguous node
ranges.  Every worker builds the *complete* machine from the same
config (full replica — caches and directories are sparse dicts, so
the non-owned replicas stay cold and cheap) but only its own nodes'
processors execute; the rest are inert.  Each worker drives its own
:class:`~repro.sim.engine.Simulator` over bounded-lag *windows*:

    window = [S, S + L - 1]      (inclusive)

where ``S`` is the global minimum next-event time across shards (so
idle gaps — e.g. a macro compute phase — are skipped in one hop) and
``L`` is the fabric's minimum cross-shard delivery latency::

    L = injection_latency + hop_latency        (>= 1 hop, no body)

A packet sent at cycle ``s >= S`` arrives no earlier than ``s + L >
S + L - 1``, i.e. strictly after the window in which it was sent —
so exchanging cross-shard packets only at window barriers can never
deliver one late.  The coordinator routes each shard's egress records
to the destination shard, sorted by ``(send_cycle, src_shard, seq)``
(the ordered-merge discipline from :mod:`repro.perf.sweep`), which
makes runs deterministic at any worker interleaving: granting the
same windows one shard at a time (``sequential=True``) is
byte-identical to granting them in parallel, and the golden tests
gate exactly that.

Protocol payloads are closures in the serial engine; crossing a
process boundary they are encoded structurally (requests, fills) or
as one-shot *tokens* registered at the sending shard (invalidate /
forward continuations) and popped when the ack routes back.  Word
values ride data-bearing packets as line snapshots deposited into the
destination shard's backing store at the window barrier, so race-free
programs observe exactly the serial values.

With ``partitions=1`` the single worker runs the pristine serial
drain — byte-identical to an unpartitioned run by construction.
"""

from __future__ import annotations

import gc
import os
import time
import traceback
from typing import Any, Callable

from repro.sim.engine import SimulationError

#: env override for the CI bench gate's job count (satellite of the
#: partition work: multi-core runners set it to exercise real fan-out)
BENCH_JOBS_ENV = "REPRO_BENCH_JOBS"


class PartitionError(SimulationError):
    """Raised for partition-protocol violations (lookahead, divergence)."""


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
class PartitionPlan:
    """Contiguous near-equal node ranges, one per shard."""

    __slots__ = ("n_nodes", "n_shards", "bounds")

    def __init__(self, n_nodes: int, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"partitions must be >= 1, got {n_shards}")
        if n_shards > n_nodes:
            raise ValueError(
                f"cannot split {n_nodes} nodes into {n_shards} partitions"
            )
        self.n_nodes = n_nodes
        self.n_shards = n_shards
        base, rem = divmod(n_nodes, n_shards)
        bounds = []
        lo = 0
        for s in range(n_shards):
            hi = lo + base + (1 if s < rem else 0)
            bounds.append((lo, hi))
            lo = hi
        self.bounds = tuple(bounds)

    def shard_of(self, node: int) -> int:
        for s, (lo, hi) in enumerate(self.bounds):
            if lo <= node < hi:
                return s
        raise ValueError(f"node {node} outside plan of {self.n_nodes}")


# ----------------------------------------------------------------------
# Cross-shard payload encoding
# ----------------------------------------------------------------------
class _RemoteToken:
    """Stand-in for a continuation closure held at its origin shard.

    Travels inside INVALIDATE/FORWARD payloads to the remote node and
    back in the matching INV_ACK/ACK_REPLY; the origin shard pops the
    real closure when the token returns.  ``line`` lets the returning
    data-bearing ack carry its line snapshot."""

    __slots__ = ("shard", "idx", "line")

    def __init__(self, shard: int, idx: int, line: int) -> None:
        self.shard = shard
        self.idx = idx
        self.line = line

    def __call__(self) -> None:  # pragma: no cover - defensive
        raise PartitionError("remote continuation token invoked locally")


class ShardView:
    """Worker-side handle: node ownership, cross-shard egress, and the
    window driver that :meth:`Machine.run` delegates to."""

    def __init__(self, plan: PartitionPlan, shard: int, conn: Any) -> None:
        self.plan = plan
        self.shard = shard
        self.conn = conn
        self.lo, self.hi = plan.bounds[shard]
        self.machine = None
        self.lookahead: int = 0
        self._egress: list[tuple] = []
        self._signals: list[tuple[int, str, Any]] = []
        self._signal_handlers: dict[str, Callable[[Any], None]] = {}
        self._tokens: dict[int, Callable[[], None]] = {}
        self._token_seq = 0
        self._seq = 0

    # -- ownership -----------------------------------------------------
    def owns(self, node: int) -> bool:
        return self.lo <= node < self.hi

    def owned_nodes(self) -> range:
        return range(self.lo, self.hi)

    def bind(self, machine: Any) -> None:
        """Attach to the (single) machine this worker builds."""
        if self.machine is not None:
            raise PartitionError(
                "partitioned runs support exactly one machine per run"
            )
        if machine.n_nodes != self.plan.n_nodes:
            raise PartitionError(
                f"machine has {machine.n_nodes} nodes, plan has "
                f"{self.plan.n_nodes}"
            )
        self.machine = machine
        net = machine.network
        self.lookahead = net.injection_latency + net.hop_latency
        if self.lookahead < 1:
            raise PartitionError(
                "partitioning needs injection_latency + hop_latency >= 1 "
                "(zero-latency links leave no conservative lookahead)"
            )

    # -- host-side collectives (usable outside machine.run) ------------
    def post_signal(self, key: str, value: Any = None) -> None:
        """Queue a host signal; delivered to every shard (self included,
        via its registered handler) at the next window barrier."""
        self._signals.append((self.shard, key, value))

    def on_signal(self, key: str, fn: Callable[[Any], None]) -> None:
        self._signal_handlers[key] = fn

    def allgather(self, tag: str, value: Any) -> list[Any]:
        """Exchange one picklable value per shard (shard order).  All
        shards must call this at the same point in their (replicated)
        host code."""
        self.conn.send(("reduce", self.shard, tag, value))
        msg = self.conn.recv()
        if msg[0] == "abort":
            raise PartitionError(msg[1])
        if msg[0] != "reduce_result" or msg[1] != tag:  # pragma: no cover
            raise PartitionError(f"allgather({tag!r}) got {msg[0]!r}")
        return msg[2]

    # -- egress (called from Network.send for cross-shard packets) -----
    def egress(self, net: Any, packet: Any, body_cycles: int) -> int:
        """Timing-walk a cross-shard packet over the locally-owned
        links of its route (real FIFO contention there; foreign links
        are charged uncontended) and queue its encoded record for the
        next window barrier.  Returns the arrival cycle."""
        sim = net.sim
        now = sim.now
        head = now + net.injection_latency
        hop = net.hop_latency
        tail = head
        lo, hi = self.lo, self.hi
        for a, b in net.mesh.route(packet.src, packet.dst):
            start = head + hop
            if lo <= a < hi:
                link = net._link(a, b)
                if link.busy_until > start:
                    start = link.busy_until
                link.busy_until = start + body_cycles
                link.total_busy += body_cycles
            head = start
            tail = start + body_cycles
        arrival = tail
        if arrival - now < self.lookahead:
            raise PartitionError(
                f"lookahead violated: {packet!r} would arrive in "
                f"{arrival - now} < L={self.lookahead} cycles"
            )
        packet.delivered_at = arrival
        stats = net.stats
        stats.packets += 1
        stats.words += packet.size_words
        stats.by_kind[packet.kind] += 1
        stats.total_latency += arrival - now
        spec, deposit = self._encode(packet)
        self._seq += 1
        self._egress.append((
            self._seq, now, arrival, packet.src, packet.dst,
            packet.kind.name, packet.size_words, spec, deposit,
        ))
        return arrival

    def _snap_line(self, line: int, src: int | None = None):
        """Snapshot a line for a cross-shard deposit.

        When ``src`` is the node *relinquishing* a MODIFIED line
        (forward-writeback, eviction writeback), its committed stores
        may still sit in the processor store buffer: serially
        ``store.write`` retires unconditionally a few cycles later and
        is shared-store-visible long before any remote load, but a
        replica snapshot taken at egress would miss it forever.
        Overlay the buffered values (oldest first, youngest wins) so
        the deposit carries the line's semantic value.
        """
        m = self.machine
        size = m.coherence.line_size
        snap = m.store.snapshot_range(line, size)
        if src is not None and m.coherence._mshr[src].get(line) is None:
            # no live MSHR txn for the line at src ⇒ every in-flight
            # store to it is committed (granted), merely unflushed; a
            # live txn would mean the store is still waiting for
            # exclusivity and its value must NOT leak early
            proc = m.processor(src)
            pending: dict[int, Any] = {}
            for slot in sorted(proc._store_buffer):
                addr, value = proc._store_buffer[slot]
                if line <= addr < line + size:
                    pending[addr - line] = value
            for addr, vals in proc._pending_writes.items():
                if vals and line <= addr < line + size:
                    pending[addr - line] = vals[-1]
            if pending:
                snap = [(o, v) for o, v in snap if o not in pending]
                snap.extend(sorted(pending.items()))
        return (line, size, snap)

    def _encode(self, packet: Any) -> tuple[tuple, Any]:
        """Encode a protocol payload structurally.  Exhaustive over the
        payload shapes the coherence engine and CMMU put on the wire;
        anything else is a loud error, not a silent wrong run."""
        from repro.memory.coherence import AccessKind, _Fill, _HomeReq
        from repro.network.packet import PacketKind

        kind = packet.kind
        p = packet.payload
        if isinstance(p, _HomeReq):
            k = p.kind.value if isinstance(p.kind, AccessKind) else p.kind
            deposit = (
                self._snap_line(p.line, src=packet.src)
                if kind is PacketKind.COH_WRITEBACK and p.was_modified
                else None
            )
            return ("req", k, p.node, p.line, p.was_modified), deposit
        if isinstance(p, _Fill):
            # src is the home; when the home node itself just
            # relinquished ownership its committed stores may still be
            # buffered (see _snap_line)
            deposit = (
                self._snap_line(p.line, src=packet.src)
                if kind is PacketKind.COH_DATA_REPLY
                else None
            )
            return ("fill", p.node, p.line, p.state.name), deposit
        if isinstance(p, _RemoteToken):
            # forward-writeback: the owner relinquishes the line, so the
            # deposit must include its still-buffered stores
            deposit = (
                self._snap_line(p.line, src=packet.src)
                if kind is PacketKind.COH_ACK_REPLY
                else None
            )
            return ("tok", p.shard, p.idx), deposit
        if kind is PacketKind.COH_INVALIDATE:
            line, home, on_ack = p
            return ("inv", line, home, self._register_token(on_ack)), None
        if kind is PacketKind.COH_FORWARD:
            mode, line, home, cont = p
            return ("fwd", mode, line, home, self._register_token(cont)), None
        if kind in (PacketKind.USER_MESSAGE, PacketKind.DMA_TRANSFER):
            try:
                import pickle

                pickle.dumps(p)
            except Exception as exc:
                raise PartitionError(
                    f"cross-shard message payload is not picklable: {p!r} "
                    f"({exc}) — host callbacks cannot cross shard boundaries"
                ) from exc
            return ("msg", p), None
        raise PartitionError(
            f"cannot encode cross-shard packet {packet!r} "
            f"(payload {type(p).__name__})"
        )

    def _register_token(self, fn: Callable[[], None]) -> int:
        self._token_seq += 1
        self._tokens[self._token_seq] = fn
        return self._token_seq

    # -- ingress (applied at window barriers) --------------------------
    def _inject(self, records: list[tuple]) -> None:
        m = self.machine
        sim = m.sim
        coh = m.coherence
        sinks = m.network._sinks
        from repro.memory.coherence import _Fill
        from repro.network.packet import Packet, PacketKind

        # Pass 1 — barrier effects: line-value deposits and the
        # reply-in-flight mark.  Both must precede every event of the
        # coming window: the deposit is the (serially: already visible)
        # write the reply carries, and the mark is what the serial
        # engine set synchronously at the home when the reply left —
        # any overtaking invalidate/forward arrives in a strictly later
        # window than the reply's send window, so marking at the
        # barrier is never late.
        for rec in records:
            deposit = rec[8]
            if deposit is not None:
                base, nbytes, snap = deposit
                m.store.write_snapshot(base, nbytes, snap)
            spec = rec[7]
            if spec[0] == "fill":
                txn = coh._mshr[spec[1]].get(spec[2])
                if txn is not None:
                    txn.reply_in_flight = True
        # Pass 2 — schedule the deliveries at their arrival cycles.
        for rec in records:
            _seq, send, arrival, src, dst, kind_name, words, spec, _dep = rec
            payload = self._decode(src, spec, coh)
            pkt = Packet(src, dst, PacketKind[kind_name], words, payload)
            pkt.launched_at = send
            pkt.delivered_at = arrival
            sink = sinks[dst]
            sim.call_at(arrival, lambda p=pkt, s=sink: s(p))

    def _decode(self, src: int, spec: tuple, coh: Any) -> Any:
        from repro.memory.cache import LineState
        from repro.memory.coherence import AccessKind, _Fill, _HomeReq

        tag = spec[0]
        if tag == "req":
            k = spec[1]
            try:
                k = AccessKind(k)
            except ValueError:
                pass  # "upgrade" / "writeback" stay strings
            return _HomeReq(k, spec[2], spec[3], spec[4])
        if tag == "fill":
            return _Fill(coh, spec[1], spec[2], LineState[spec[3]])
        if tag == "tok":
            if spec[1] != self.shard:  # pragma: no cover - routing bug
                raise PartitionError(
                    f"token for shard {spec[1]} delivered to {self.shard}"
                )
            return self._tokens.pop(spec[2])
        if tag == "inv":
            token = _RemoteToken(self.plan.shard_of(src), spec[3], spec[1])
            return (spec[1], spec[2], token)
        if tag == "fwd":
            token = _RemoteToken(self.plan.shard_of(src), spec[4], spec[2])
            return (spec[1], spec[2], spec[3], token)
        if tag == "msg":
            return spec[1]
        raise PartitionError(f"unknown record spec {spec!r}")  # pragma: no cover

    # -- the window driver (Machine.run delegates here) ----------------
    def drive_run(
        self,
        sim: Any,
        until: int | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> int:
        if until is not None or stop_when is not None:
            raise SimulationError(
                "until/stop_when are not supported with partitions>1 "
                "(window barriers own the clock)"
            )
        if self.plan.n_shards == 1:
            # Single shard: the pristine serial drain (including its
            # daemon semantics) — but keep the coordinator handshake so
            # collectives outside machine.run stay lockstep-trivial.
            return sim.run(max_events=max_events)
        conn = self.conn
        base_events = sim.events_processed
        while True:
            egress, self._egress = self._egress, []
            signals, self._signals = self._signals, []
            conn.send((
                "ready", self.shard, sim.now, sim.next_model_time(),
                sim.events_processed - base_events, egress, signals,
                self.lookahead,
            ))
            msg = conn.recv()
            kind = msg[0]
            if kind == "window":
                _, start, end, records, all_signals = msg
                for _shard, key, value in all_signals:
                    handler = self._signal_handlers.get(key)
                    if handler is not None:
                        handler(value)
                if records:
                    self._inject(records)
                sim.run_window(end)
            elif kind == "finish":
                final_now = msg[1]
                if final_now > sim.now:
                    sim.now = final_now
                return sim.now
            elif kind == "abort":
                raise PartitionError(msg[1])
            else:  # pragma: no cover - protocol bug
                raise PartitionError(f"unexpected directive {kind!r}")


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
_CURRENT: ShardView | None = None


def current_shard() -> ShardView | None:
    """The shard this process is simulating, if it is a partition
    worker (checked by ``make_machine`` and the runtime layers)."""
    return _CURRENT


def _worker_main(conn, fn_spec: str, kwargs: dict, plan: PartitionPlan,
                 shard: int, obs_cfg) -> None:
    global _CURRENT
    try:
        view = ShardView(plan, shard, conn)
        _CURRENT = view
        # the window drains allocate heavily and die young, like the
        # serial tight loop: pay no cyclic-GC passes mid-run
        gc.disable()
        from repro.perf.sweep import SweepPoint

        fn = SweepPoint(fn_spec, kwargs).resolve()
        if obs_cfg is not None and obs_cfg.enabled:
            from repro.obs.session import session as obs_session

            with obs_session(obs_cfg) as s:
                result = fn(**kwargs)
                payload = s.data()
            for rec in payload["records"]:
                rec["label"] = f"shard{shard}:{rec['label']}"
        else:
            result = fn(**kwargs)
            payload = None
        conn.send(("result", shard, result, payload))
    except BaseException:
        try:
            conn.send(("error", shard, traceback.format_exc()))
        except Exception:  # pragma: no cover - parent went away
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator (parent-process side)
# ----------------------------------------------------------------------
def validate_partitions(partitions: Any, n_nodes: int) -> int:
    """Shared strict validation for CLI / serve specs."""
    if isinstance(partitions, bool) or not isinstance(partitions, int):
        raise ValueError("'partitions' must be an integer")
    if not 1 <= partitions <= 64:
        raise ValueError(f"'partitions' must be in [1, 64], got {partitions}")
    if partitions > n_nodes:
        raise ValueError(
            f"'partitions' ({partitions}) cannot exceed n_nodes ({n_nodes})"
        )
    return partitions


class _Coordinator:
    """Window-barrier loop: gather one message per worker, route egress
    records, grant the next bounded-lag window (or finish)."""

    def __init__(self, conns: list, plan: PartitionPlan,
                 sequential: bool, notify=None) -> None:
        self.conns = conns
        self.plan = plan
        #: learned from the workers' ready messages (they compute it
        #: from the actual machine config, which may override the
        #: default network latencies)
        self.lookahead: int | None = None
        self.sequential = sequential
        self.notify = notify
        self.windows = 0
        self._last_notify = 0.0

    def _gather(self) -> list[tuple]:
        msgs = []
        for conn in self.conns:
            try:
                msgs.append(conn.recv())
            except EOFError:
                raise PartitionError(
                    "a partition worker died without reporting an error"
                ) from None
        for msg in msgs:
            if msg[0] == "error":
                self._abort(f"shard {msg[1]} failed")
                raise PartitionError(
                    f"shard {msg[1]} failed:\n{msg[2]}"
                )
        kinds = {m[0] for m in msgs}
        if len(kinds) > 1:
            self._abort("shards diverged")
            raise PartitionError(
                f"shards diverged: got mixed messages {sorted(kinds)} — "
                "replicated host code must reach collectives in lockstep"
            )
        return msgs

    def _abort(self, reason: str) -> None:
        for conn in self.conns:
            try:
                conn.send(("abort", reason))
            except Exception:
                pass

    def _send_directives(self, directives: list[tuple]) -> None:
        """Parallel mode broadcasts then gathers (the gather happens on
        the next loop turn); sequential-grant mode sends each shard its
        directive and *waits for its reply* before granting the next —
        same directives, serialized execution.  The replies it eats
        here are re-queued for the main loop via ``_staged``."""
        if not self.sequential:
            for conn, d in zip(self.conns, directives):
                conn.send(d)
            return
        staged = []
        for conn, d in zip(self.conns, directives):
            conn.send(d)
            if d[0] == "window":
                try:
                    staged.append(conn.recv())
                except EOFError:
                    raise PartitionError(
                        "a partition worker died without reporting an error"
                    ) from None
        # non-window directives collect no replies here; the main loop
        # must fall through to a fresh gather in that case
        self._staged = staged or None

    def run(self, max_events: int | None = None) -> tuple[list, list]:
        """Drive to completion; returns (results, obs payloads) in
        shard order."""
        n = len(self.conns)
        self._staged: list | None = None
        while True:
            if self._staged is not None:
                msgs, self._staged = self._staged, None
                for msg in msgs:
                    if msg[0] == "error":
                        self._abort(f"shard {msg[1]} failed")
                        raise PartitionError(f"shard {msg[1]} failed:\n{msg[2]}")
                kinds = {m[0] for m in msgs}
                if len(kinds) > 1:
                    self._abort("shards diverged")
                    raise PartitionError(
                        f"shards diverged: {sorted(kinds)}"
                    )
            else:
                msgs = self._gather()
            kind = msgs[0][0]
            if kind == "result":
                results = [None] * n
                payloads = [None] * n
                for msg in msgs:
                    results[msg[1]] = msg[2]
                    payloads[msg[1]] = msg[3]
                return results, payloads
            if kind == "reduce":
                tags = {m[2] for m in msgs}
                if len(tags) > 1:
                    self._abort("shards diverged")
                    raise PartitionError(
                        f"allgather tag mismatch across shards: {sorted(tags)}"
                    )
                values = [None] * n
                for msg in msgs:
                    values[msg[1]] = msg[3]
                tag = msgs[0][2]
                self._send_directives(
                    [("reduce_result", tag, values)] * n
                )
                if self.sequential:
                    self._staged = None  # reduce_result gets no reply here
                continue
            # kind == "ready"
            msgs.sort(key=lambda m: m[1])
            lookaheads = {m[7] for m in msgs}
            if len(lookaheads) > 1:
                self._abort("lookahead mismatch")
                raise PartitionError(
                    f"shards report different lookaheads {sorted(lookaheads)} "
                    "— machine configs must be replicated identically"
                )
            self.lookahead = msgs[0][7]
            nexts = [m[3] for m in msgs]
            nows = [m[2] for m in msgs]
            if max_events is not None:
                total = sum(m[4] for m in msgs)
                if total > max_events:
                    self._abort(
                        f"exceeded max_events={max_events} across "
                        f"{n} shards (runaway simulation?)"
                    )
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
            records = []
            signals = []
            for msg in msgs:
                records.extend(msg[5])
                signals.extend(msg[6])
            model_times = [t for t in nexts if t is not None]
            arrivals = [rec[2] for rec in records]
            if not model_times and not arrivals and not signals:
                final_now = max(nows)
                self._send_directives([("finish", final_now)] * n)
                self._staged = None
                continue  # workers answer with the next session/result
            if model_times or arrivals:
                start = min(model_times + arrivals)
            else:
                start = max(nows) + 1  # signal-only window
            end = start + self.lookahead - 1
            by_shard: list[list[tuple]] = [[] for _ in range(n)]
            for rec in sorted(records, key=lambda r: (r[1], self.plan.shard_of(r[3]), r[0])):
                by_shard[self.plan.shard_of(rec[4])].append(rec)
            self.windows += 1
            self._progress(nows)
            self._send_directives([
                ("window", start, end, by_shard[s], signals)
                for s in range(n)
            ])

    def _progress(self, nows: list[int]) -> None:
        """Rate-limited partition progress through the active sweep
        progress callback (doubles as the service's cancellation
        probe between windows)."""
        if self.notify is None:
            return
        t = time.monotonic()
        if t - self._last_notify < 0.25 and self.windows > 1:
            return
        self._last_notify = t
        self.notify({
            "event": "partition_window",
            "windows": self.windows,
            "shards": len(nows),
            "min_now": min(nows),
            "max_now": max(nows),
        })


def run_partitioned(
    fn_spec: str,
    kwargs: dict,
    n_nodes: int,
    partitions: int,
    obs_cfg=None,
    sequential: bool = False,
    max_events: int | None = None,
) -> Any:
    """Run ``fn_spec`` (a ``"module:callable"`` sweep-point spec whose
    callable builds one machine through ``make_machine``) split over
    ``partitions`` worker processes.  Returns the entry function's
    result (identical on every shard — verified).

    ``sequential=True`` grants each window one shard at a time — the
    serial reference used by the identity tests; results are
    byte-identical to the parallel grant order by construction.
    """
    import multiprocessing as mp

    partitions = validate_partitions(partitions, n_nodes)
    if obs_cfg is not None and obs_cfg.check:
        raise ValueError(
            "dynamic checkers need a global view and are not supported "
            "with partitions>1 (run the checked configuration serially)"
        )
    plan = PartitionPlan(n_nodes, partitions)
    from repro.obs.session import current as obs_current
    from repro.perf.progress import current as progress_current

    ctx = mp.get_context("fork")
    conns = []
    procs = []
    try:
        for shard in range(partitions):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, fn_spec, kwargs, plan, shard, obs_cfg),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        coord = _Coordinator(
            conns, plan, sequential, notify=progress_current()
        )
        results, payloads = coord.run(max_events=max_events)
    finally:
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join()
    first = results[0]
    for shard, result in enumerate(results[1:], start=1):
        try:
            same = bool(result == first)
        except Exception:  # pragma: no cover - exotic result types
            same = repr(result) == repr(first)
        if not same:
            raise PartitionError(
                f"shards diverged: shard {shard} returned {result!r}, "
                f"shard 0 returned {first!r}"
            )
    sess = obs_current()
    if sess is not None:
        for payload in payloads:
            if payload:
                sess.absorb(payload)
    return first
