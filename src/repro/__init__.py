"""alewife-py: reproduction of *Integrating Message-Passing and
Shared-Memory: Early Experience* (Kranz, Johnson, Agarwal,
Kubiatowicz & Lim — PPoPP 1993).

A cycle-approximate discrete-event model of the MIT Alewife machine —
mesh interconnect, LimitLESS directory-coherent caches, and the CMMU
message interface — plus the Alewife runtime system (lazy-task-
creation scheduling in shared-memory-only and hybrid flavours,
combining-tree barriers, remote thread invocation, DMA bulk transfer)
and the paper's applications and experiments.

Quick start::

    from repro import Machine, MachineConfig, Runtime, Compute

    m = Machine(MachineConfig(n_nodes=16))
    rt = Runtime(m, scheduler="hybrid")

    def tree(rt, node, depth):
        if depth == 0:
            yield Compute(100)
            return 1
        fut = yield from rt.fork(node, lambda rt, nd: tree(rt, nd, depth - 1))
        right = yield from tree(rt, node, depth - 1)
        left = yield from rt.join(node, fut)
        return left + right

    result, cycles = rt.run_to_completion(0, lambda rt, nd: tree(rt, nd, 8))
"""

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultRates,
    LinkOutage,
    NodeStall,
    lossy_plan,
)
from repro.machine import Machine, MachineConfig
from repro.params import CmmuParams, NetworkParams, ProcessorParams
from repro.memory import CoherenceParams
from repro.proc import (
    Compute,
    FetchOp,
    Load,
    Prefetch,
    Send,
    SetIMask,
    Store,
    Storeback,
    Suspend,
    Yield,
)
from repro.runtime import (
    BulkTransfer,
    Future,
    MPTreeBarrier,
    ReliableLayer,
    ReliableParams,
    Runtime,
    RuntimeParams,
    SMTreeBarrier,
    SpinLock,
)

__version__ = "1.0.0"

__all__ = [
    "BulkTransfer",
    "CmmuParams",
    "CoherenceParams",
    "Compute",
    "FaultInjector",
    "FaultPlan",
    "FaultRates",
    "FetchOp",
    "Future",
    "LinkOutage",
    "Load",
    "MPTreeBarrier",
    "Machine",
    "MachineConfig",
    "NetworkParams",
    "NodeStall",
    "Prefetch",
    "ProcessorParams",
    "ReliableLayer",
    "ReliableParams",
    "Runtime",
    "RuntimeParams",
    "SMTreeBarrier",
    "Send",
    "SetIMask",
    "SpinLock",
    "Store",
    "Storeback",
    "Suspend",
    "Yield",
    "__version__",
    "lossy_plan",
]
