"""Machine-wide statistics report.

Aggregates the counters every component keeps (caches, directories,
network, CMMUs, processors) into one structured summary — the
simulator-side equivalent of Alewife's performance-monitoring
readouts. Useful for explaining *why* an experiment behaved the way
it did (e.g. how many invalidations the SM barrier generated vs how
many messages the MP one sent).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.machine.machine import Machine
from repro.network.packet import PROTOCOL_KINDS


@dataclass
class MachineReport:
    """Snapshot of all counters after (or during) a run."""

    cycles: int
    n_nodes: int
    # caches
    cache_hits: int
    cache_misses: int
    invalidations_received: int
    writebacks: int
    # coherence
    transactions: int
    read_misses: int
    write_misses: int
    forwards: int
    invalidations_sent: int
    limitless_traps: int
    # network
    packets: int
    words: int
    protocol_packets: int
    software_packets: int
    mean_packet_latency: float
    # messaging
    messages_sent: int
    interrupts: int
    dma_transfers: int
    dma_words: int
    # processors
    handlers_run: int
    contexts_run: int
    effects: int
    per_node: list[dict] = field(default_factory=list)
    #: hottest links by busy cycles: [((a, b), busy_cycles), ...]
    hot_links: list = field(default_factory=list)
    #: injected faults (0 unless a FaultInjector was attached)
    faults_injected: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def format(self) -> str:
        rows = [
            {"metric": "simulated cycles", "value": self.cycles},
            {"metric": "cache hit rate", "value": round(self.cache_hit_rate, 3)},
            {"metric": "coherence transactions", "value": self.transactions},
            {"metric": "  read / write misses",
             "value": f"{self.read_misses} / {self.write_misses}"},
            {"metric": "  forwards (3-party)", "value": self.forwards},
            {"metric": "  invalidations", "value": self.invalidations_sent},
            {"metric": "  LimitLESS traps", "value": self.limitless_traps},
            {"metric": "network packets (proto/sw)",
             "value": f"{self.protocol_packets} / {self.software_packets}"},
            {"metric": "mean packet latency", "value": round(self.mean_packet_latency, 1)},
            {"metric": "messages sent", "value": self.messages_sent},
            {"metric": "message interrupts", "value": self.interrupts},
            {"metric": "DMA transfers / words",
             "value": f"{self.dma_transfers} / {self.dma_words}"},
            {"metric": "handlers / threads run",
             "value": f"{self.handlers_run} / {self.contexts_run}"},
            {"metric": "effects executed", "value": self.effects},
        ]
        if self.hot_links:
            hot = ", ".join(
                f"{a}->{b}:{busy}" for (a, b), busy in self.hot_links
            )
            rows.append({"metric": "hottest links (busy cyc)", "value": hot})
        if self.faults_injected:
            rows.append({"metric": "faults injected", "value": self.faults_injected})
        return format_table(
            f"machine report ({self.n_nodes} nodes)", ["metric", "value"], rows
        )


def collect(machine: Machine) -> MachineReport:
    """Aggregate all component counters of ``machine``."""
    net = machine.network.stats
    coh = machine.coherence.stats
    proto = sum(net.by_kind[k] for k in PROTOCOL_KINDS if k in net.by_kind)
    per_node = []
    totals = dict(
        cache_hits=0, cache_misses=0, inv_recv=0, wbacks=0,
        msgs=0, interrupts=0, dma=0, dma_words=0,
        handlers=0, contexts=0, effects=0, traps=0, inv_sent=0,
    )
    for node in machine.nodes:
        cs = node.cache.stats
        ds = node.directory.stats
        ms = node.cmmu.stats
        ps = node.processor.stats
        per_node.append(
            {
                "node": node.node_id,
                "hits": cs.hits,
                "misses": cs.misses,
                "messages": ms.messages_sent,
                "handlers": ps.handlers_run,
                "busy_cycles": ps.busy_cycles,
            }
        )
        totals["cache_hits"] += cs.hits
        totals["cache_misses"] += cs.misses
        totals["inv_recv"] += cs.invalidations_received
        totals["wbacks"] += cs.writebacks
        totals["msgs"] += ms.messages_sent
        totals["interrupts"] += ms.interrupts_raised
        totals["dma"] += ms.dma_transfers
        totals["dma_words"] += ms.data_words_sent
        totals["handlers"] += ps.handlers_run
        totals["contexts"] += ps.contexts_run
        totals["effects"] += ps.effects
        totals["traps"] += ds.software_traps
        totals["inv_sent"] += ds.invalidations_sent

    return MachineReport(
        cycles=machine.sim.now,
        n_nodes=machine.n_nodes,
        cache_hits=totals["cache_hits"],
        cache_misses=totals["cache_misses"],
        invalidations_received=totals["inv_recv"],
        writebacks=totals["wbacks"],
        transactions=coh.transactions,
        read_misses=coh.read_misses,
        write_misses=coh.write_misses,
        forwards=coh.forwards,
        invalidations_sent=totals["inv_sent"],
        limitless_traps=totals["traps"],
        packets=net.packets,
        words=net.words,
        protocol_packets=proto,
        software_packets=net.packets - proto,
        mean_packet_latency=net.mean_latency,
        messages_sent=totals["msgs"],
        interrupts=totals["interrupts"],
        dma_transfers=totals["dma"],
        dma_words=totals["dma_words"],
        handlers_run=totals["handlers"],
        contexts_run=totals["contexts"],
        effects=totals["effects"],
        per_node=per_node,
        hot_links=sorted(
            machine.network.link_utilization().items(),
            key=lambda kv: kv[1],
            reverse=True,
        )[:4],
        faults_injected=net.faults_injected,
    )
