"""Machine-wide statistics report.

Aggregates the counters every component keeps (caches, directories,
network, CMMUs, processors) into one structured summary — the
simulator-side equivalent of Alewife's performance-monitoring
readouts. Useful for explaining *why* an experiment behaved the way
it did (e.g. how many invalidations the SM barrier generated vs how
many messages the MP one sent).

Since the observability subsystem landed, :func:`collect` is a view
over the metrics registry: it freezes the machine into a
:class:`~repro.obs.metrics.MetricsSnapshot` (the same one
``--metrics-out`` writes) and reads every report field out of that,
so the human-readable report and the machine-readable ``run.json``
can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.machine.machine import Machine
from repro.network.packet import PROTOCOL_KINDS
from repro.obs.metrics import MetricsSnapshot, collect_machine


@dataclass
class MachineReport:
    """Snapshot of all counters after (or during) a run."""

    cycles: int
    n_nodes: int
    # caches
    cache_hits: int
    cache_misses: int
    invalidations_received: int
    writebacks: int
    # coherence
    transactions: int
    read_misses: int
    write_misses: int
    forwards: int
    invalidations_sent: int
    limitless_traps: int
    # network
    packets: int
    words: int
    protocol_packets: int
    software_packets: int
    mean_packet_latency: float
    # messaging
    messages_sent: int
    interrupts: int
    dma_transfers: int
    dma_words: int
    # processors
    handlers_run: int
    contexts_run: int
    effects: int
    per_node: list[dict] = field(default_factory=list)
    #: hottest links by busy cycles: [((a, b), busy_cycles), ...]
    hot_links: list = field(default_factory=list)
    #: injected faults (0 unless a FaultInjector was attached)
    faults_injected: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def format(self) -> str:
        rows = [
            {"metric": "simulated cycles", "value": self.cycles},
            {"metric": "cache hit rate", "value": round(self.cache_hit_rate, 3)},
            {"metric": "coherence transactions", "value": self.transactions},
            {"metric": "  read / write misses",
             "value": f"{self.read_misses} / {self.write_misses}"},
            {"metric": "  forwards (3-party)", "value": self.forwards},
            {"metric": "  invalidations", "value": self.invalidations_sent},
            {"metric": "  LimitLESS traps", "value": self.limitless_traps},
            {"metric": "network packets (proto/sw)",
             "value": f"{self.protocol_packets} / {self.software_packets}"},
            {"metric": "mean packet latency", "value": round(self.mean_packet_latency, 1)},
            {"metric": "messages sent", "value": self.messages_sent},
            {"metric": "message interrupts", "value": self.interrupts},
            {"metric": "DMA transfers / words",
             "value": f"{self.dma_transfers} / {self.dma_words}"},
            {"metric": "handlers / threads run",
             "value": f"{self.handlers_run} / {self.contexts_run}"},
            {"metric": "effects executed", "value": self.effects},
        ]
        if self.hot_links:
            hot = ", ".join(
                f"{a}->{b}:{busy}" for (a, b), busy in self.hot_links
            )
            rows.append({"metric": "hottest links (busy cyc)", "value": hot})
        if self.faults_injected:
            rows.append({"metric": "faults injected", "value": self.faults_injected})
        return format_table(
            f"machine report ({self.n_nodes} nodes)", ["metric", "value"], rows
        )


def collect(
    machine: Machine, snapshot: MetricsSnapshot | None = None
) -> MachineReport:
    """Build the report from the machine's metrics snapshot (collected
    here unless the caller already has one)."""
    snap = snapshot if snapshot is not None else collect_machine(machine)
    proto_kinds = {k.value for k in PROTOCOL_KINDS}
    proto = sum(
        r["value"]
        for r in snap.rows
        if r["name"] == "net.packets_by_kind" and r["labels"].get("kind") in proto_kinds
    )
    packets = snap.value("net.packets")
    per_node = [
        {
            "node": nid,
            "hits": snap.value("cache.hits", node=nid),
            "misses": snap.value("cache.misses", node=nid),
            "messages": snap.value("cmmu.messages_sent", node=nid),
            "handlers": snap.value("proc.handlers_run", node=nid),
            "busy_cycles": snap.value("proc.busy_cycles", node=nid),
        }
        for nid in range(machine.n_nodes)
    ]
    return MachineReport(
        cycles=snap.value("sim.cycles"),
        n_nodes=machine.n_nodes,
        cache_hits=snap.total("cache.hits"),
        cache_misses=snap.total("cache.misses"),
        invalidations_received=snap.total("cache.invalidations_received"),
        writebacks=snap.total("cache.writebacks"),
        transactions=snap.value("coh.transactions"),
        read_misses=snap.value("coh.read_misses"),
        write_misses=snap.value("coh.write_misses"),
        forwards=snap.value("coh.forwards"),
        invalidations_sent=snap.total("dir.invalidations_sent"),
        limitless_traps=snap.total("dir.software_traps"),
        packets=packets,
        words=snap.value("net.words"),
        protocol_packets=proto,
        software_packets=packets - proto,
        mean_packet_latency=snap.value("net.mean_packet_latency"),
        messages_sent=snap.total("cmmu.messages_sent"),
        interrupts=snap.total("cmmu.interrupts_raised"),
        dma_transfers=snap.total("cmmu.dma_transfers"),
        dma_words=snap.total("cmmu.data_words_sent"),
        handlers_run=snap.total("proc.handlers_run"),
        contexts_run=snap.total("proc.contexts_run"),
        effects=snap.total("proc.effects"),
        per_node=per_node,
        hot_links=sorted(
            machine.network.link_utilization().items(),
            key=lambda kv: kv[1],
            reverse=True,
        )[:4],
        faults_injected=snap.value("net.faults_injected"),
    )
