"""Unit conversions and derived metrics (33 MHz Alewife clock)."""

from __future__ import annotations

DEFAULT_CLOCK_MHZ = 33.0


def cycles_to_usec(cycles: float, clock_mhz: float = DEFAULT_CLOCK_MHZ) -> float:
    """One cycle at 33 MHz is ~30.3 ns."""
    if clock_mhz <= 0:
        raise ValueError("clock must be positive")
    return cycles / clock_mhz


def cycles_to_msec(cycles: float, clock_mhz: float = DEFAULT_CLOCK_MHZ) -> float:
    return cycles / (clock_mhz * 1000.0)


def mbytes_per_sec(
    nbytes: int, cycles: float, clock_mhz: float = DEFAULT_CLOCK_MHZ
) -> float:
    """Achieved bandwidth moving ``nbytes`` in ``cycles`` cycles."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return nbytes * clock_mhz / cycles


def speedup(sequential_cycles: float, parallel_cycles: float) -> float:
    if parallel_cycles <= 0:
        raise ValueError("parallel cycles must be positive")
    return sequential_cycles / parallel_cycles


def ratio_error(measured: float, paper: float) -> float:
    """Relative deviation of a measured value from the paper's value."""
    if paper == 0:
        raise ValueError("paper value must be nonzero")
    return (measured - paper) / paper
