"""Result containers and plain-text rendering for experiments.

Every experiment driver returns an :class:`ExperimentResult`; the
benchmark harness and the CLI render it as the table/series the paper
reports, side-by-side with the paper's numbers where the paper states
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    exp_id: str            # e.g. "fig7"
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, **kw: Any) -> None:
        missing = [c for c in self.columns if c not in kw]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append(kw)

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in {self.exp_id}")
        return [r[name] for r in self.rows]

    def format_table(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.notes)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3g}"
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)


def format_table(
    title: str, columns: Sequence[str], rows: Sequence[dict], notes: str = ""
) -> str:
    """Render rows as an aligned plain-text table."""
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
        for i, c in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    body = "\n".join(
        " | ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in cells
    )
    out = [f"== {title} ==", header, sep]
    if body:
        out.append(body)
    if notes:
        out.append(f"({notes})")
    return "\n".join(out)


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
) -> str:
    """Minimal ASCII scatter/line plot for terminal figures.

    ``series`` maps a label to ``(x, y)`` points; each series is drawn
    with its own glyph.
    """
    import math

    glyphs = "*o+x#@%&"
    pts_all = [(x, y) for pts in series.values() for x, y in pts]
    if not pts_all:
        raise ValueError("nothing to plot")

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    xs = [tx(x) for x, _ in pts_all]
    ys = [ty(y) for _, y in pts_all]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for gi, (label, pts) in enumerate(series.items()):
        g = glyphs[gi % len(glyphs)]
        for x, y in pts:
            cx = int((tx(x) - x0) / xr * (width - 1))
            cy = int((ty(y) - y0) / yr * (height - 1))
            grid[height - 1 - cy][cx] = g
    lines = []
    if title:
        lines.append(title)
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={label}" for i, label in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
