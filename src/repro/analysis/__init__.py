"""Analysis helpers: unit conversion, tables, ASCII figures."""

from repro.analysis.report import MachineReport, collect
from repro.analysis.metrics import (
    cycles_to_msec,
    cycles_to_usec,
    mbytes_per_sec,
    ratio_error,
    speedup,
)
from repro.analysis.tables import ExperimentResult, ascii_plot, format_table

__all__ = [
    "ExperimentResult",
    "MachineReport",
    "ascii_plot",
    "collect",
    "cycles_to_msec",
    "cycles_to_usec",
    "format_table",
    "mbytes_per_sec",
    "ratio_error",
    "speedup",
]
