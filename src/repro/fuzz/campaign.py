"""Campaign driver: seeds → scenarios → oracles → minimized bundles.

A campaign walks a seed range through :func:`repro.fuzz.scenario.run_scenario`
in batches over the :class:`~repro.perf.sweep.SweepRunner` pool, under
a wall-clock budget. Every failing result is *confirmed* by an
in-process replay (a worker-vs-host byte mismatch is itself a finding:
the ``divergence:parallel`` oracle — the sweep determinism contract),
then delta-debugged down to the smallest scenario that still produces
the same primary ``(oracle, kind)`` verdict, and filed into the
content-addressed corpus.

Caching is *disabled* by default inside a campaign
(:func:`repro.perf.cache.activate` with ``None``): fuzzing wants fresh
executions, and a billion one-shot scenario results would only bloat
the run cache. ``use_cache=True`` re-enables the ambient cache for
corpus re-replay workflows.

The whole campaign body runs under ``except BaseException:
shutdown_pools()`` — a crashing or interrupted fuzz run tears down the
persistent worker pools instead of leaking worker processes (they are
also registered atexit, but an abort inside a long-lived host process,
e.g. a serve daemon thread, must not wait for process exit).

Module-level :data:`STATS` aggregates across campaigns in-process;
``register_metrics`` exposes it as ``fuzz.*`` instruments wherever a
registry is built (the serve daemon's ``/metrics`` endpoint).
"""

from __future__ import annotations

import copy
import json
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable

from repro.fuzz.gen import (
    GEN_VERSION,
    _estimate_deadline,
    generate,
    validate_scenario,
)
from repro.fuzz.oracles import ORACLE_ORDER, classify, primary, signature_of
from repro.fuzz.scenario import canonical, run_scenario

POINT_FN = "repro.fuzz.scenario:run_scenario"


# ----------------------------------------------------------------------
# Stats (process-wide, thread-safe; feeds the serve /metrics endpoint)
# ----------------------------------------------------------------------
class FuzzStats:
    """Locked counters over every campaign run in this process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.campaigns = 0
        self.scenarios = 0
        self.wall_seconds = 0.0
        self.findings: dict[str, int] = {}
        self.minimize_runs = 0
        self.shrunk_from = 0
        self.shrunk_to = 0

    def note_batch(self, n: int, wall: float) -> None:
        with self._lock:
            self.scenarios += n
            self.wall_seconds += wall

    def note_campaign(self) -> None:
        with self._lock:
            self.campaigns += 1

    def note_finding(self, oracle: str) -> None:
        with self._lock:
            self.findings[oracle] = self.findings.get(oracle, 0) + 1

    def note_minimized(self, orig_bytes: int, min_bytes: int, runs: int) -> None:
        with self._lock:
            self.minimize_runs += runs
            self.shrunk_from += orig_bytes
            self.shrunk_to += min_bytes

    def rate(self) -> float:
        with self._lock:
            return self.scenarios / self.wall_seconds if self.wall_seconds else 0.0

    def shrink_ratio(self) -> float:
        """Minimized bytes over original bytes (1.0 = no shrinking)."""
        with self._lock:
            return self.shrunk_to / self.shrunk_from if self.shrunk_from else 1.0

    def register_metrics(self, reg: Any) -> None:
        reg.counter("fuzz.campaigns", lambda: self.campaigns)
        reg.counter("fuzz.scenarios", lambda: self.scenarios)
        reg.counter("fuzz.minimize_runs", lambda: self.minimize_runs)
        reg.gauge("fuzz.scenarios_per_sec", self.rate)
        reg.gauge("fuzz.minimizer_shrink_ratio", self.shrink_ratio)
        for oracle in ORACLE_ORDER:
            reg.counter(
                "fuzz.findings",
                lambda o=oracle: self.findings.get(o, 0),
                oracle=oracle,
            )


#: the process-wide tally `repro.serve` exports at /metrics
STATS = FuzzStats()


def register_metrics(reg: Any) -> None:
    """Register the process-wide fuzz counters on ``reg``."""
    STATS.register_metrics(reg)


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------
@dataclass
class CampaignConfig:
    """Everything a campaign needs; plain data (JSON-able)."""

    seeds: int = 200
    base_seed: int = 0
    #: wall-clock budget in seconds (None = run every seed)
    budget: float | None = 60.0
    jobs: int = 1
    corpus_dir: str | None = None
    #: arm the seeded bug (racy flag handoffs) — the self-test mode
    inject_bug: bool = False
    minimize: bool = True
    #: run-scenario invocations the minimizer may spend per finding
    minimize_budget: int = 80
    #: write run.json/trace.json replay artifacts into bundles
    bundle_artifacts: bool = True
    #: keep the ambient run cache active (default: disabled — fuzzing
    #: wants fresh executions, not a bloated cache)
    use_cache: bool = False


def run_campaign(
    cfg: CampaignConfig,
    progress: Callable[[dict], None] | None = None,
    should_cancel: Callable[[], bool] = lambda: False,
) -> dict:
    """Run one campaign; returns the plain-data campaign report.

    ``progress`` receives ``{"event": "fuzz", "done", "total",
    "findings", "phase"}`` dicts (the serve executor folds these into
    job progress / SSE); ``should_cancel`` is probed between batches
    and between minimizer runs and may raise to abort."""
    from repro.perf.cache import activate
    from repro.perf.sweep import shutdown_pools

    try:
        return _run(cfg, progress, should_cancel, activate)
    except BaseException:
        # never leak persistent pool workers on an aborted/crashed
        # campaign (KeyboardInterrupt, JobCancelled, any bug here)
        shutdown_pools()
        raise


def _emit(progress, done: int, total: int, found: int, phase: str) -> None:
    if progress is not None:
        progress({
            "event": "fuzz", "done": done, "total": total,
            "findings": found, "phase": phase,
        })


def _run(cfg, progress, should_cancel, activate) -> dict:
    from repro.fuzz.corpus import Corpus
    from repro.perf.sweep import SweepPoint, SweepRunner

    STATS.note_campaign()
    runner = SweepRunner(jobs=cfg.jobs)
    corpus = Corpus(cfg.corpus_dir) if cfg.corpus_dir else None
    cache_ctx = _ambient_cache(activate) if cfg.use_cache else activate(None)

    t0 = time.monotonic()
    deadline = t0 + cfg.budget if cfg.budget is not None else None
    batch_size = max(24, cfg.jobs * 8) if cfg.jobs > 1 else 16
    seeds = list(range(cfg.base_seed, cfg.base_seed + cfg.seeds))
    findings: list[dict] = []
    done = 0
    budget_exhausted = False

    with cache_ctx:
        _emit(progress, 0, len(seeds), 0, "generate")
        while done < len(seeds):
            if should_cancel():
                break
            if deadline is not None and time.monotonic() >= deadline:
                budget_exhausted = True
                break
            batch = seeds[done:done + batch_size]
            scenarios = [generate(s, inject_bug=cfg.inject_bug) for s in batch]
            points = [
                SweepPoint(POINT_FN, {"scenario": sc}) for sc in scenarios
            ]
            t_batch = time.monotonic()
            results = runner.map(points)
            STATS.note_batch(len(batch), time.monotonic() - t_batch)
            for seed, sc, result in zip(batch, scenarios, results):
                verdicts = classify(result)
                if not verdicts:
                    continue
                findings.append(_handle_failure(
                    cfg, seed, sc, result, verdicts, corpus, deadline,
                    should_cancel,
                ))
                _emit(progress, done + len(batch), len(seeds),
                      len(findings), "minimize")
            done += len(batch)
            _emit(progress, done, len(seeds), len(findings), "fuzz")

    elapsed = time.monotonic() - t0
    report = {
        "config": asdict(cfg),
        "gen": GEN_VERSION,
        "seeds_requested": len(seeds),
        "seeds_run": done,
        "budget_exhausted": budget_exhausted,
        "elapsed_seconds": round(elapsed, 3),
        "scenarios_per_sec": round(done / elapsed, 2) if elapsed else 0.0,
        "findings": findings,
    }
    _emit(progress, done, len(seeds), len(findings), "done")
    return report


def _ambient_cache(activate):
    """Keep whatever cache the caller's thread already activated."""
    from repro.perf.cache import current

    return activate(current())


def _handle_failure(
    cfg, seed, scenario, result, verdicts, corpus, deadline, should_cancel
) -> dict:
    # confirm in-process: a worker result that does not reproduce
    # byte-for-byte on the host is a determinism violation — the
    # divergence:parallel oracle (and the local result is the ground
    # truth the minimizer must chase)
    local = run_scenario(scenario)
    if canonical(local) != canonical(result):
        verdicts = classify(local) + [{
            "oracle": "divergence:parallel",
            "kind": "result",
            "detail": "worker result != in-process replay of the same scenario",
        }]
        result = local
    target = primary(verdicts)
    signature = signature_of(verdicts)
    for v in verdicts:
        STATS.note_finding(v["oracle"])

    minimized = scenario
    mruns = 0
    if cfg.minimize and target is not None:
        minimized, mruns = minimize_scenario(
            scenario, target,
            max_runs=cfg.minimize_budget,
            time_deadline=deadline,
            should_cancel=should_cancel,
        )
    orig_bytes = len(canonical(scenario))
    min_bytes = len(canonical(minimized))
    STATS.note_minimized(orig_bytes, min_bytes, mruns)

    finding = {
        "seed": seed,
        "gen": scenario["gen"],
        "primary": list(target) if target else None,
        "signature": signature,
        "verdicts": verdicts,
        "orig_bytes": orig_bytes,
        "min_bytes": min_bytes,
        "minimize_runs": mruns,
    }
    if corpus is not None:
        from repro.fuzz.corpus import reproducer_artifacts

        extra = {
            "original.json": canonical(scenario).encode() + b"\n",
        }
        if cfg.bundle_artifacts:
            extra.update(reproducer_artifacts(minimized))
        eid, created = corpus.add(minimized, signature, finding, extra)
        finding["corpus_id"] = eid
        finding["corpus_new"] = created
    finding["scenario"] = scenario
    finding["minimized"] = minimized
    return finding


# ----------------------------------------------------------------------
# Minimizer: structural delta-debugging over the scenario document
# ----------------------------------------------------------------------
def minimize_scenario(
    scenario: dict,
    target: tuple[str, str],
    max_runs: int = 80,
    time_deadline: float | None = None,
    should_cancel: Callable[[], bool] = lambda: False,
) -> tuple[dict, int]:
    """Smallest scenario (by canonical-JSON bytes) still producing the
    primary verdict ``target``; returns ``(scenario, runs_spent)``.

    Shrinks structurally — drop ops (ddmin), shrink the machine, zero
    fault machinery, floor op parameters — rather than replaying the
    generator's choice stream, so any hand-written scenario minimizes
    the same way a generated one does. Every candidate is re-validated
    and its event deadline re-estimated, so a shrunk reproducer keeps a
    tight hang budget."""
    state = {"runs": 0}
    target = tuple(target)

    def accepts(cand: dict) -> bool:
        if state["runs"] >= max_runs or should_cancel():
            return False
        if time_deadline is not None and time.monotonic() >= time_deadline:
            return False
        cand = copy.deepcopy(cand)
        cand["deadline_events"] = _estimate_deadline(cand)
        try:
            validate_scenario(cand)
        except ValueError:
            return False
        state["runs"] += 1
        got = primary(classify(run_scenario(cand)))
        if got == target:
            cand_str = canonical(cand)
            if len(cand_str) < len(canonical(state["best"])):
                state["best"] = cand
                return True
        return False

    state["best"] = scenario
    progressed = True
    while progressed and state["runs"] < max_runs:
        progressed = False
        best = state["best"]
        for cand in _candidates(best):
            if accepts(cand):
                progressed = True
                break  # restart strategies from the new best
    return state["best"], state["runs"]


def _candidates(sc: dict):
    """Shrink candidates in roughly decreasing payoff order."""
    # 1. drop program ops (halves first, then singles)
    if sc["mode"] == "spmd" and len(sc["program"]) > 1:
        prog = sc["program"]
        half = len(prog) // 2
        for keep in (prog[:half], prog[half:]):
            if keep:
                yield {**sc, "program": copy.deepcopy(keep)}
        for i in range(len(prog)):
            yield {**sc, "program": copy.deepcopy(prog[:i] + prog[i + 1:])}
    # 2. drop the fault plan, then its pieces
    if sc.get("faults"):
        yield {**sc, "faults": None}
        f = sc["faults"]
        for rate in ("drop", "duplicate", "delay", "reorder"):
            if f[rate]:
                yield {**sc, "faults": {**copy.deepcopy(f), rate: 0.0}}
        if f["stalls"]:
            yield {**sc, "faults": {**copy.deepcopy(f), "stalls": []}}
        if f["outages"]:
            yield {**sc, "faults": {**copy.deepcopy(f), "outages": []}}
    # 3. shrink the machine
    n = sc["machine"]["n_nodes"]
    for n_new in sorted({2, 3, 4, n // 2, n - 1}):
        if 2 <= n_new < n:
            cand = _shrink_nodes(sc, n_new)
            if cand is not None:
                yield cand
    mc = sc["machine"]
    for key, floor in (
        ("hw_contexts", 1), ("dir_hw_pointers", 5),
        ("cache_lines", 1024), ("line_size", 16),
    ):
        if mc[key] > floor:
            yield {**sc, "machine": {**mc, key: floor}}
    if mc["topology"] != "mesh":
        yield {**sc, "machine": {**mc, "topology": "mesh"}}
    # 4. drop the differential replay when it is not the verdict
    if sc.get("diff_macro"):
        yield {**sc, "diff_macro": False}
    # 5. floor op / tree parameters, one field at a time
    if sc["mode"] == "spmd":
        for i, op in enumerate(sc["program"]):
            for key, floor in _OP_FLOORS.get(op["op"], ()):
                if op.get(key, floor) > floor:
                    shrunk = copy.deepcopy(sc["program"])
                    shrunk[i] = {**op, key: floor}
                    yield {**sc, "program": shrunk}
            if op["op"] == "bulk" and len(op["pairs"]) > 1:
                shrunk = copy.deepcopy(sc["program"])
                shrunk[i] = {**op, "pairs": [list(op["pairs"][0])]}
                yield {**sc, "program": shrunk}
    else:
        tree = sc["tree"]
        for key, floor in (("depth", 1), ("leaf_cycles", 20)):
            if tree[key] > floor:
                yield {**sc, "tree": {**tree, key: floor}}


_OP_FLOORS: dict[str, tuple[tuple[str, int], ...]] = {
    "compute": (("cycles", 50),),
    "barrier": (("episodes", 1), ("width", 2)),
    "reduce": (("episodes", 1), ("width", 2)),
    "lock": (("iters", 1),),
    "bulk": (("nbytes", 64),),
    "channel": (("items", 1),),
    "handoff": (("words", 1),),
    "macro": (("elems", 8),),
}


def _shrink_nodes(sc: dict, n_new: int) -> dict | None:
    """``sc`` with fewer nodes; node references are clamped or dropped
    (a bulk op losing every pair drops entirely). None = not shrinkable
    this way."""
    cand = copy.deepcopy(sc)
    cand["machine"]["n_nodes"] = n_new
    if cand["mode"] == "spmd":
        program = []
        for op in cand["program"]:
            if op["op"] == "bulk":
                pairs = [p for p in op["pairs"] if p[0] < n_new and p[1] < n_new]
                if not pairs:
                    continue
                op["pairs"] = pairs
            elif op["op"] == "channel":
                if op["producer"] >= n_new or op["consumer"] >= n_new:
                    op["producer"], op["consumer"] = 0, n_new - 1
            program.append(op)
        if not program:
            return None
        cand["program"] = program
    if cand.get("faults"):
        f = cand["faults"]
        f["stalls"] = [s for s in f["stalls"] if s[0] < n_new]
        f["outages"] = [
            o for o in f["outages"] if o[0] < n_new and o[1] < n_new
        ]
    return cand


# ----------------------------------------------------------------------
# Report rendering (CLI + serve artifact)
# ----------------------------------------------------------------------
def format_report(report: dict) -> str:
    lines = [
        f"fuzz campaign: {report['seeds_run']}/{report['seeds_requested']} "
        f"seeds in {report['elapsed_seconds']}s "
        f"({report['scenarios_per_sec']}/s)"
        + (" [budget exhausted]" if report["budget_exhausted"] else ""),
        f"findings: {len(report['findings'])}",
    ]
    for f in report["findings"]:
        corpus = f" corpus={f['corpus_id']}" if f.get("corpus_id") else ""
        lines.append(
            f"  seed {f['seed']}: {f['primary'][0]}/{f['primary'][1]} "
            f"({f['orig_bytes']}B -> {f['min_bytes']}B in "
            f"{f['minimize_runs']} runs){corpus}"
        )
        lines.append(f"    {f['verdicts'][0]['detail'][:120]}")
    return "\n".join(lines)


def dump_report(report: dict) -> bytes:
    return json.dumps(report, indent=1, sort_keys=True).encode() + b"\n"
