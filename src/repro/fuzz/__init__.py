"""Push-button fuzzing campaigns (``repro.fuzz``).

The paper's claim is that the message-passing and shared-memory
mechanisms compose safely on one machine; this package attacks that
claim mechanically. A seeded generator (:mod:`repro.fuzz.gen`) draws
random-but-well-formed *scenarios* — machine configs, guest programs
composed from the runtime primitives (locks, barriers, reduces,
channels, bulk transfers, macro loops, fork/join trees), and fault
plans — every one fully determined by a single integer seed plus a
generator version, so replay is exact.

Each scenario runs through :func:`repro.fuzz.scenario.run_scenario`
under a stack of *oracles* (:mod:`repro.fuzz.oracles`): the dynamic
checkers of :mod:`repro.check` (race / coherence / deadlock), crash
and hang detection (event-budget watchdog), per-primitive self-checks
(lock counters, reduce totals, copied bytes), and two differential
oracles that the codebase gives us for free — macro-vs-micro cycle
identity (a checked run forces the per-element micro path; an
unchecked replay takes the batched macro path; the two must agree to
the cycle) and worker-vs-in-process result identity (the parallel
sweep contract).

The campaign driver (:mod:`repro.fuzz.campaign`) fans seeds out over
the :class:`~repro.perf.sweep.SweepRunner` pool under a wall-clock
budget, auto-minimizes every failure by delta-debugging the scenario
(drop ops, shrink nodes/parameters/fault events) while the verdict
reproduces, and files reproducer bundles into a content-addressed
corpus (:mod:`repro.fuzz.corpus`). Surviving corpus entries replay as
regression scenarios via ``tests/test_fuzz.py``.

Entry points::

    python -m repro.fuzz run --seeds 200 --budget 60
    python -m repro.fuzz replay scenario.json
    python -m repro.fuzz gen 42
    alewife-repro submit fuzz --params '{"seeds": 100}'   # serve job

See ``docs/FUZZING.md``.
"""

from repro.fuzz.gen import GEN_VERSION, generate, validate_scenario
from repro.fuzz.oracles import classify, signature_of
from repro.fuzz.scenario import run_scenario

__all__ = [
    "GEN_VERSION",
    "classify",
    "generate",
    "run_scenario",
    "signature_of",
    "validate_scenario",
]
