"""``python -m repro.fuzz`` — the push-button entry points.

    python -m repro.fuzz run --seeds 200 --budget 60 [--jobs N]
                             [--corpus DIR] [--inject-bug] [--cache]
    python -m repro.fuzz replay SCENARIO.json
    python -m repro.fuzz replay --corpus DIR [ID ...]
    python -m repro.fuzz gen SEED [--inject-bug]

``run`` exits 1 when the campaign found anything (CI smoke gates on
this); ``replay`` exits 1 when a replayed scenario's verdicts diverge
from what its bundle recorded (or, for a bare scenario file, when it
fails at all).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.fuzz.campaign import (
        CampaignConfig,
        dump_report,
        format_report,
        run_campaign,
    )

    cfg = CampaignConfig(
        seeds=args.seeds,
        base_seed=args.base_seed,
        budget=args.budget if args.budget > 0 else None,
        jobs=args.jobs,
        corpus_dir=args.corpus,
        inject_bug=args.inject_bug,
        minimize=not args.no_minimize,
        use_cache=args.cache,
    )

    def progress(event: dict) -> None:
        if not args.quiet and event["phase"] in ("fuzz", "done"):
            print(
                f"\r{event['done']}/{event['total']} seeds, "
                f"{event['findings']} finding(s)",
                end="", file=sys.stderr, flush=True,
            )

    report = run_campaign(cfg, progress=progress)
    if not args.quiet:
        print(file=sys.stderr)
    if args.json:
        sys.stdout.buffer.write(dump_report(report))
    else:
        print(format_report(report))
    return 1 if report["findings"] else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.fuzz.oracles import classify, signature_of
    from repro.fuzz.scenario import run_scenario

    failures = 0
    if args.corpus:
        from repro.fuzz.corpus import Corpus

        corpus = Corpus(args.corpus)
        ids = args.target or corpus.ids()
        if not ids:
            print(f"no bundles under {args.corpus}")
            return 0
        for eid in ids:
            bundle = corpus.load(eid)
            got = signature_of(classify(run_scenario(bundle["scenario"])))
            want = bundle["finding"]["signature"]
            ok = got == want
            print(f"{eid}: {'reproduced' if ok else 'DIVERGED'} "
                  f"{[tuple(p) for p in got]}")
            if not ok:
                print(f"  recorded: {[tuple(p) for p in want]}")
                failures += 1
        return 1 if failures else 0
    for path in args.target:
        scenario = json.loads(Path(path).read_bytes())
        verdicts = classify(run_scenario(scenario))
        if verdicts:
            failures += 1
            print(f"{path}: {len(verdicts)} verdict(s)")
            for v in verdicts:
                print(f"  {v['oracle']}/{v['kind']}: {v['detail'][:160]}")
        else:
            print(f"{path}: clean")
    return 1 if failures else 0


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.fuzz.gen import generate

    scenario = generate(args.seed, inject_bug=args.inject_bug)
    print(json.dumps(scenario, indent=1, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Seeded fuzzing campaigns over the simulator.",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)

    runp = sub.add_parser("run", help="run a fuzzing campaign")
    runp.add_argument("--seeds", type=int, default=200)
    runp.add_argument("--base-seed", type=int, default=0)
    runp.add_argument("--budget", type=float, default=60.0,
                      help="wall-clock budget in seconds (0 = unlimited)")
    runp.add_argument("--jobs", type=int, default=1)
    runp.add_argument("--corpus", default=None, metavar="DIR",
                      help="write reproducer bundles here")
    runp.add_argument("--inject-bug", action="store_true",
                      help="arm the seeded racy-handoff bug (self-test)")
    runp.add_argument("--no-minimize", action="store_true")
    runp.add_argument("--cache", action="store_true",
                      help="keep the ambient run cache active")
    runp.add_argument("--json", action="store_true",
                      help="print the full campaign report as JSON")
    runp.add_argument("--quiet", action="store_true")

    rp = sub.add_parser("replay", help="replay scenarios or corpus bundles")
    rp.add_argument("target", nargs="*",
                    help="scenario JSON files (or bundle ids with --corpus)")
    rp.add_argument("--corpus", default=None, metavar="DIR")

    gp = sub.add_parser("gen", help="print the scenario for one seed")
    gp.add_argument("seed", type=int)
    gp.add_argument("--inject-bug", action="store_true")

    args = ap.parse_args(argv)
    if args.cmd == "run":
        return _cmd_run(args)
    if args.cmd == "replay":
        return _cmd_replay(args)
    return _cmd_gen(args)


if __name__ == "__main__":
    sys.exit(main())
