"""Content-addressed reproducer corpus.

Every failure a campaign confirms becomes one *bundle* — a directory
named by a digest of the minimized scenario plus its oracle signature,
holding everything a human (or the regression suite) needs to replay
the bug without the generator:

    <corpus>/<id>/
        scenario.json   minimized scenario (canonical JSON)
        original.json   the scenario as generated, pre-minimization
        finding.json    seed, gen version, signature, verdicts, sizes
        result.json     canonical result of running scenario.json
        run.json        run manifest of an observed replay
        trace.json      Perfetto trace of the same replay

The id is content-addressed (same minimized scenario + same signature
→ same id), so campaigns dedupe across runs for free: a bug found by
fifty seeds files one bundle. Publication is atomic — bundles are
assembled in a temp directory and renamed into place, so a killed
campaign never leaves a half-written bundle that the pytest replay
hook would trip over.

``tests/test_fuzz.py`` replays every bundle under ``tests/corpus/``
(committed regressions) plus ``$REPRO_FUZZ_CORPUS`` (a local campaign
corpus) and asserts the stored signature still reproduces.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Iterator

CORPUS_DIR_ENV = "REPRO_FUZZ_CORPUS"

#: bundle files that must exist for an entry to count as published
REQUIRED = ("scenario.json", "finding.json")


def canonical(doc: Any) -> str:
    """Canonical JSON: the byte identity used everywhere in fuzzing."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def entry_id(scenario: dict, signature: list[list[str]]) -> str:
    """Content address of one reproducer: minimized scenario × oracle
    signature. 16 hex chars is plenty at corpus scale."""
    payload = canonical(scenario) + "\n" + canonical(signature)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class Corpus:
    """A directory of reproducer bundles."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- write ---------------------------------------------------------
    def add(
        self,
        scenario: dict,
        signature: list[list[str]],
        finding: dict,
        extra: dict[str, bytes] | None = None,
    ) -> tuple[str, bool]:
        """Publish one bundle; returns ``(id, created)`` where
        ``created`` is False when the bundle already existed (dedupe).

        ``finding`` is stored as finding.json (the id and signature are
        stamped in); ``extra`` maps further artifact names to bytes
        (original.json, result.json, run.json, trace.json)."""
        eid = entry_id(scenario, signature)
        dst = self.root / eid
        if (dst / "finding.json").is_file():
            return eid, False
        files: dict[str, bytes] = {
            "scenario.json": canonical(scenario).encode() + b"\n",
            "finding.json": json.dumps(
                {"id": eid, "signature": signature, **finding},
                indent=1, sort_keys=True,
            ).encode() + b"\n",
        }
        for name, blob in (extra or {}).items():
            if name in files or "/" in name or name.startswith("."):
                raise ValueError(f"bad bundle artifact name {name!r}")
            files[name] = blob
        tmp = self.root / f".tmp-{eid}-{os.getpid()}-{threading.get_ident()}"
        tmp.mkdir(parents=True, exist_ok=True)
        try:
            for name, blob in sorted(files.items()):
                (tmp / name).write_bytes(blob)
            try:
                os.rename(tmp, dst)
            except OSError:
                # racing publisher of the same content-addressed id
                if not (dst / "finding.json").is_file():
                    raise
                return eid, False
        finally:
            if tmp.is_dir():
                for leftover in tmp.iterdir():
                    leftover.unlink()
                tmp.rmdir()
        return eid, True

    # -- read ----------------------------------------------------------
    def ids(self) -> list[str]:
        if not self.root.is_dir():
            return []
        out = []
        for child in sorted(self.root.iterdir()):
            if child.name.startswith(".") or not child.is_dir():
                continue
            if all((child / name).is_file() for name in REQUIRED):
                out.append(child.name)
        return out

    def load(self, eid: str) -> dict:
        """One bundle's scenario + finding (raises on a broken entry)."""
        base = self.root / eid
        return {
            "id": eid,
            "scenario": json.loads((base / "scenario.json").read_bytes()),
            "finding": json.loads((base / "finding.json").read_bytes()),
        }

    def entries(self) -> Iterator[dict]:
        for eid in self.ids():
            yield self.load(eid)


def replay_corpora(paths: list[str | Path]) -> list[tuple[str, dict]]:
    """Every bundle from every existing corpus directory, as
    ``(label, bundle)`` pairs — the pytest parametrization source."""
    out: list[tuple[str, dict]] = []
    for path in paths:
        corpus = Corpus(path)
        for bundle in corpus.entries():
            out.append((f"{Path(path).name}:{bundle['id']}", bundle))
    return out


def reproducer_artifacts(scenario: dict) -> dict[str, bytes]:
    """run.json + trace.json + result.json for one scenario: replay it
    under a tracing observation session and export the standard
    artifacts, so a bundle opens in Perfetto like any service run."""
    from repro.check import CheckReport
    from repro.fuzz.scenario import run_scenario
    from repro.obs.export import build_perfetto, build_run_manifest
    from repro.obs.session import ObsConfig, session

    with session(ObsConfig(trace=True)) as s:
        result = run_scenario(scenario)
        if result.get("check") and s.check is None:
            # the scenario attaches its own CheckerSet rather than
            # going through the session config, so hand the report to
            # the session — data() then surfaces the per-checker
            # check.findings metric rows and the manifest's check
            # section exactly like a served experiment run
            s.check = CheckReport.from_dict(result["check"])
        data = s.data()
    manifest = build_run_manifest(
        experiment="fuzz.reproducer",
        params={"seed": scenario.get("seed"), "gen": scenario.get("gen")},
        timings={
            "wall_seconds": 0.0,
            "machines": len(data["records"]),
            "simulated_cycles": sum(r["cycles"] for r in data["records"]),
        },
        metrics=data["metrics"],
        cycle_attribution=data["cycle_attribution"],
        **({"check": data["check"]} if data.get("check") is not None else {}),
    )
    return {
        "result.json": canonical(result).encode() + b"\n",
        "run.json": _dump(manifest),
        "trace.json": _dump(build_perfetto(data["records"])),
    }


def _dump(doc: Any) -> bytes:
    return json.dumps(doc, indent=1, default=str).encode() + b"\n"
