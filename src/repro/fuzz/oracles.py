"""Verdict extraction: result dict -> ordered list of oracle findings.

Every oracle reads the *result* of a scenario run — never the live
machine — so classification is a pure function of plain data and the
campaign can classify worker-returned, cached, and replayed results
identically.

Oracles, in severity order (the first one present is the *primary*
verdict, which is what the minimizer must preserve while shrinking):

``crash``
    any exception out of the simulation (kind = exception type);
``hang``
    the event-budget deadline fired, the runtime's root task never
    completed, or the event queue drained with node programs stuck
    (kind = ``timeout`` / ``deadlock`` / ``quiesced``);
``self-check``
    a primitive's own invariant failed — lock counter off, reduce
    total wrong, bulk bytes corrupt, channel sum wrong;
``checker:race`` / ``checker:coherence`` / ``checker:deadlock``
    findings from the dynamic checkers of :mod:`repro.check`;
``divergence:micro-macro``
    the unchecked (macro-path) replay disagreed with the checked
    (micro-path) run on cycles or results — a batch-runner
    equivalence bug;
``divergence:parallel``
    attached by the campaign when a worker-returned result and an
    in-process replay of the same scenario differ — a violation of
    the sweep determinism contract (this one never appears from
    :func:`classify` itself; the campaign synthesizes it after a
    byte-level comparison).
"""

from __future__ import annotations

#: fixed severity order; also the tie-break for the primary verdict
ORACLE_ORDER = (
    "crash",
    "hang",
    "self-check",
    "checker:race",
    "checker:coherence",
    "checker:deadlock",
    "divergence:micro-macro",
    "divergence:parallel",
)


def classify(result: dict) -> list[dict]:
    """All oracle verdicts for one result, severity-ordered. Each is
    ``{"oracle", "kind", "detail"}`` — plain JSON."""
    verdicts: list[dict] = []
    if result.get("error"):
        kind = str(result["error"]).split(":", 1)[0]
        verdicts.append(
            {"oracle": "crash", "kind": kind, "detail": result["error"]}
        )
    if result.get("hang"):
        verdicts.append({
            "oracle": "hang",
            "kind": result["hang"]["kind"],
            "detail": result["hang"]["detail"],
        })
    for line in result.get("self_check") or ():
        kind = str(line).split(":", 1)[0].split("(", 1)[0].strip()
        verdicts.append({"oracle": "self-check", "kind": kind, "detail": line})
    check = result.get("check")
    if check:
        by_checker: dict[str, dict] = {}
        for f in check.get("findings", ()):
            by_checker.setdefault(f["checker"], f)
        for checker, n in sorted((check.get("counts") or {}).items()):
            if not n:
                continue
            first = by_checker.get(checker)
            verdicts.append({
                "oracle": f"checker:{checker}",
                "kind": first["kind"] if first else "unknown",
                "detail": (
                    f"{n} finding(s); first: {first['message']}"
                    if first else f"{n} finding(s)"
                ),
            })
    div = result.get("divergence")
    if div:
        verdicts.append({
            "oracle": f"divergence:{div.get('oracle', 'micro-macro')}",
            "kind": div.get("field", "result"),
            "detail": f"micro={div.get('micro')!r} macro={div.get('macro')!r}",
        })
    verdicts.sort(key=lambda v: (_rank(v["oracle"]), v["kind"], v["detail"]))
    return verdicts


def signature_of(verdicts: list[dict]) -> list[list[str]]:
    """The stable identity of a failure: sorted unique (oracle, kind)
    pairs. The minimizer accepts a shrunk candidate only if its
    *primary* pair survives; the corpus dedupes on the full signature."""
    pairs = sorted({(v["oracle"], v["kind"]) for v in verdicts})
    return [list(p) for p in pairs]


def primary(verdicts: list[dict]) -> tuple[str, str] | None:
    """(oracle, kind) of the most severe verdict, or None if clean."""
    if not verdicts:
        return None
    v = verdicts[0]
    return (v["oracle"], v["kind"])


def _rank(oracle: str) -> int:
    try:
        return ORACLE_ORDER.index(oracle)
    except ValueError:
        return len(ORACLE_ORDER)
