"""Scenario execution: one fuzz input -> one plain result dict.

:func:`run_scenario` is the sweep-point entry the campaign fans out
(``SweepPoint("repro.fuzz.scenario:run_scenario", {"scenario": s})``).
It builds the machine, attaches the dynamic checkers, interprets the
scenario's program, and returns a JSON-clean result dict — no live
objects — so workers ship it back byte-identically and two runs of the
same scenario can be compared with ``==`` (the differential oracles
depend on this).

Execution model: every op in an SPMD program installs its shared
state (allocations, primitive instances, message handlers) *before*
any thread runs, then each node executes the op sequence in order in
one thread. Ops synchronize internally (barriers, handoffs) or not at
all; nodes drift freely between ops, which is exactly the cross-
primitive overlap the fuzzer is after.

Three outcomes short-circuit to a verdict:

- **crash** — any exception out of the simulation;
- **hang** — the event-budget deadline (``SimulationError`` from
  ``max_events``) or the event queue draining with node programs
  unfinished (a true deadlock: nothing left to wake them);
- otherwise the run completed and the result carries checker findings,
  per-primitive self-check failures, and (when the scenario asks)
  the macro-vs-micro differential comparison.

Macro-vs-micro: a checked run instance-patches ``Processor._execute``,
which forces the batch runner down the per-element micro path; the
unchecked replay takes the macro path. The two are guaranteed
cycle-identical, so ``diff_macro`` replays the scenario without
checkers and compares cycles and results — any daylight is a bug in
the batch runner's equivalence, found for free.
"""

from __future__ import annotations

import json
import operator
from typing import Any, Callable, Generator

from repro.check import CheckerSet
from repro.experiments.common import make_machine
from repro.ext.channels import Channel
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRates, LinkOutage, NodeStall
from repro.fuzz.gen import validate_scenario
from repro.machine.machine import Machine
from repro.params import NetworkParams, ProcessorParams
from repro.proc.effects import (
    Compute,
    ComputeLoad,
    Load,
    LoadComputeStore,
    Repeat,
    SpinUntilGE,
    Store,
    StoreRelease,
    StoreRun,
)
from repro.runtime.barrier import MPTreeBarrier, SMTreeBarrier
from repro.runtime.bulk import BulkTransfer
from repro.runtime.mcs import MCSLock
from repro.runtime.reduce import MPTreeReduce, SMTreeReduce
from repro.runtime.reliable import ReliableLayer
from repro.runtime.rt import Runtime
from repro.runtime.sync import SpinLock
from repro.sim.engine import SimulationError

#: findings kept per run (counts keep growing past the cap); small so
#: a pathological scenario cannot bloat the sweep result
MAX_FINDINGS = 64

#: consecutive-poll watchdog limit. Generated programs let nodes
#: drift between ops, so one node legitimately spins at a barrier
#: while another grinds through a bulk transfer; the event-budget
#: deadline, not the bounded-spin heuristic, is the fuzzer's
#: livelock oracle.
SPIN_LIMIT = 500_000


def run_scenario(scenario: dict) -> dict:
    """Execute one scenario; returns the plain result dict."""
    validate_scenario(scenario)
    checks = tuple(scenario.get("checks") or ())
    result = _execute(scenario, checks)
    if (
        scenario.get("diff_macro")
        and checks
        and result["error"] is None
        and result["hang"] is None
    ):
        result["divergence"] = _diff_macro(scenario, result)
    return result


def replay_equal(a: dict, b: dict) -> bool:
    """Byte-level equality of two results (JSON-canonical, so tuple/
    list representation differences between pickled worker returns and
    JSON-roundtripped corpus entries don't matter)."""
    return canonical(a) == canonical(b)


def canonical(doc: Any) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# core execution
# ----------------------------------------------------------------------
def _execute(scenario: dict, checks: tuple[str, ...]) -> dict:
    mc = scenario["machine"]
    m = make_machine(
        n_nodes=mc["n_nodes"],
        line_size=mc["line_size"],
        cache_lines=mc["cache_lines"],
        dir_hw_pointers=mc["dir_hw_pointers"],
        network=NetworkParams(topology=mc["topology"]),
        processor=ProcessorParams(hw_contexts=mc["hw_contexts"]),
    )
    if scenario["faults"] is not None:
        FaultInjector(m, _build_plan(scenario["faults"]))
    checkers = (
        CheckerSet(m, checks=checks, max_findings=MAX_FINDINGS,
                   spin_limit=SPIN_LIMIT)
        if checks else None
    )
    result: dict = {
        "gen": scenario["gen"],
        "seed": scenario["seed"],
        "error": None,
        "hang": None,
        "self_check": [],
        "unfinished": [],
        "result": None,
        "divergence": None,
    }
    try:
        if scenario["mode"] == "tasks":
            _run_tasks(m, scenario, result)
        else:
            _run_spmd(m, scenario, result)
    except SimulationError as exc:
        msg = str(exc)
        if "max_events" in msg:
            result["hang"] = {"kind": "timeout", "detail": msg}
        elif "never completed" in msg:
            result["hang"] = {"kind": "deadlock", "detail": msg}
        else:
            result["error"] = f"SimulationError: {msg}"
    except Exception as exc:  # noqa: BLE001 — crashes are findings
        result["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        report = checkers.finalize() if checkers is not None else None
    result["cycles"] = m.sim.now
    result["check"] = (
        json.loads(json.dumps(report.as_dict())) if report is not None else None
    )
    result["ok"] = not (
        result["error"] or result["hang"] or result["self_check"]
        or result["unfinished"]
        or (report is not None and report.total)
    )
    return result


def _diff_macro(scenario: dict, micro: dict) -> dict | None:
    """Unchecked (macro-path) replay vs the checked (micro-path) run."""
    macro = _execute(scenario, checks=())
    for key in ("cycles", "result", "self_check", "unfinished",
                "error", "hang"):
        if canonical(macro[key]) != canonical(micro[key]):
            return {
                "oracle": "micro-macro",
                "field": key,
                "micro": micro[key],
                "macro": macro[key],
            }
    return None


def _build_plan(faults: dict) -> FaultPlan:
    return FaultPlan(
        rates=FaultRates(
            drop=faults["drop"],
            duplicate=faults["duplicate"],
            delay=faults["delay"],
            reorder=faults["reorder"],
        ),
        stalls=[NodeStall(n, s, d) for n, s, d in faults["stalls"]],
        outages=[LinkOutage(a, b, s, e) for a, b, s, e in faults["outages"]],
        seed=faults["seed"],
    )


# ----------------------------------------------------------------------
# tasks mode
# ----------------------------------------------------------------------
def _run_tasks(m: Machine, scenario: dict, result: dict) -> None:
    tree = scenario["tree"]
    reliable = ReliableLayer(m) if tree.get("reliable") else None
    rt = Runtime(
        m, scheduler=tree["scheduler"], seed=scenario["seed"],
        reliable=reliable,
    )
    depth, leaf = tree["depth"], tree["leaf_cycles"]

    def body(rt: Runtime, node: int, d: int) -> Generator:
        yield Compute(12)
        if d == 0:
            yield Compute(leaf)
            return 1
        fut = yield from rt.fork(node, lambda r, nd: body(r, nd, d - 1))
        right = yield from body(rt, node, d - 1)
        left = yield from rt.join(node, fut)
        return left + right

    leaves, _cycles = rt.run_to_completion(
        0, lambda r, nd: body(r, nd, depth),
        max_events=scenario["deadline_events"],
    )
    result["result"] = {"leaves": leaves}
    if leaves != (1 << depth):
        result["self_check"].append(
            f"task_tree: {leaves} leaves, expected {1 << depth}"
        )


# ----------------------------------------------------------------------
# SPMD mode
# ----------------------------------------------------------------------
def _run_spmd(m: Machine, scenario: dict, result: dict) -> None:
    n = m.n_nodes
    reliable: list[ReliableLayer | None] = [None]

    def shared_reliable() -> ReliableLayer:
        if reliable[0] is None:
            reliable[0] = ReliableLayer(m)
        return reliable[0]

    impls = [
        _build_op(m, op, shared_reliable) for op in scenario["program"]
    ]
    finished: set[int] = set()
    for node in range(n):
        m.processor(node).run_thread(
            _participant(node, impls),
            on_finish=lambda _v, nd=node: finished.add(nd),
            label=f"fuzz-n{node}",
        )
    m.run(max_events=scenario["deadline_events"])
    result["unfinished"] = sorted(set(range(n)) - finished)
    if result["unfinished"]:
        # queue drained with programs stuck: nothing can wake them
        result["hang"] = {
            "kind": "quiesced",
            "detail": f"nodes {result['unfinished']} never finished",
        }
        return
    summaries = []
    for impl in impls:
        result["self_check"].extend(impl.post())
        summaries.append(impl.summary())
    result["result"] = summaries


def _participant(node: int, impls: list["_OpImpl"]) -> Generator:
    for impl in impls:
        gen = impl.body(node)
        if gen is not None:
            yield from gen
    # generators must yield at least once before finishing
    yield Compute(1)


class _OpImpl:
    """One program op: shared state + per-node body + post-run check."""

    def __init__(
        self,
        op: dict,
        body: Callable[[int], Generator | None],
        post: Callable[[], list[str]] | None = None,
        summarize: Callable[[], Any] | None = None,
    ) -> None:
        self.op = op
        self.body = body
        self._post = post
        self._summarize = summarize

    def post(self) -> list[str]:
        return self._post() if self._post is not None else []

    def summary(self) -> Any:
        extra = self._summarize() if self._summarize is not None else None
        return {"op": self.op["op"], "data": extra}


def _build_op(
    m: Machine, op: dict, shared_reliable: Callable[[], ReliableLayer]
) -> _OpImpl:
    builder = _BUILDERS[op["op"]]
    return builder(m, op, shared_reliable)


# -- individual ops ----------------------------------------------------
def _op_compute(m: Machine, op: dict, _rel) -> _OpImpl:
    cycles = op["cycles"]

    def body(node: int) -> Generator:
        # skewed per node so downstream ops meet drifted neighbours
        yield Compute(cycles + (node * 13) % 50)

    return _OpImpl(op, body)


def _op_barrier(m: Machine, op: dict, rel) -> _OpImpl:
    if op["kind"] == "sm":
        bar = SMTreeBarrier(m, arity=op["width"])
    else:
        bar = MPTreeBarrier(
            m, fanout=op["width"],
            reliable=rel() if op.get("reliable") else None,
        )
    episodes = op["episodes"]

    def body(node: int) -> Generator:
        for _ in range(episodes):
            yield from bar.enter(node)

    return _OpImpl(op, body)


def _op_reduce(m: Machine, op: dict, _rel) -> _OpImpl:
    n = m.n_nodes
    episodes = op["episodes"]
    expected = n * (n + 1) // 2
    errors: list[str] = []
    if op["kind"] == "sm":
        red = SMTreeReduce(m, arity=op["width"])

        def body(node: int) -> Generator:
            for ep in range(episodes):
                total = yield from red.reduce(node, node + 1, operator.add)
                if total != expected:
                    errors.append(
                        f"reduce(sm) ep{ep} n{node}: {total} != {expected}"
                    )
    else:
        red = MPTreeReduce(m, operator.add, fanout=op["width"])

        def body(node: int) -> Generator:
            for ep in range(episodes):
                total = yield from red.reduce(node, node + 1)
                if total != expected:
                    errors.append(
                        f"reduce(mp) ep{ep} n{node}: {total} != {expected}"
                    )

    return _OpImpl(op, body, post=lambda: sorted(errors))


def _op_lock(m: Machine, op: dict, _rel) -> _OpImpl:
    n = m.n_nodes
    iters = op["iters"]
    counter = m.alloc(0, 8)
    m.store.write(counter, 0)
    if op["kind"] == "spin":
        lock_addr = m.alloc(0, 8)
        m.store.write(lock_addr, 0)
        lock = SpinLock(lock_addr)

        def body(node: int) -> Generator:
            for _ in range(iters):
                yield from lock.acquire()
                v = yield Load(counter)
                yield Compute(4)
                yield Store(counter, v + 1)
                yield from lock.release()
    else:
        lock = MCSLock(m, home=0)

        def body(node: int) -> Generator:
            for _ in range(iters):
                yield from lock.acquire(node)
                v = yield Load(counter)
                yield Compute(4)
                yield Store(counter, v + 1)
                yield from lock.release(node)

    def post() -> list[str]:
        got = m.store.read(counter)
        want = n * iters
        if got != want:
            return [f"lock({op['kind']}): counter {got} != {want}"]
        return []

    return _OpImpl(op, body, post=post,
                   summarize=lambda: m.store.read(counter))


def _op_bulk(m: Machine, op: dict, rel) -> _OpImpl:
    nbytes = op["nbytes"]
    words = nbytes // 8
    layer = rel() if op.get("reliable") else None
    bulk = BulkTransfer(m, reliable=layer)
    buffers: dict[int, tuple[int, int, int]] = {}  # src -> (src_addr, dst_addr, dst)
    for i, (s, d) in enumerate(op["pairs"]):
        src_addr = m.alloc(s, nbytes)
        dst_addr = m.alloc(d, nbytes)
        for w in range(words):
            m.store.write(src_addr + w * 8, (i << 16) | (w + 1))
        buffers[s] = (src_addr, dst_addr, d)

    def body(node: int) -> Generator | None:
        if node not in buffers:
            return None
        src_addr, dst_addr, d = buffers[node]

        def gen() -> Generator:
            yield from bulk.send(
                d, src_addr, dst_addr, nbytes,
                wait_ack=True, src_node=node,
            )

        return gen()

    def post() -> list[str]:
        out = []
        for i, (s, _d) in enumerate(op["pairs"]):
            _src, dst_addr, _dn = buffers[s]
            for w in range(words):
                got = m.store.read(dst_addr + w * 8)
                want = (i << 16) | (w + 1)
                if got != want:
                    out.append(
                        f"bulk pair{i} word{w}: {got!r} != {want}"
                    )
                    break
        return out

    return _OpImpl(op, body, post=post)


def _op_channel(m: Machine, op: dict, _rel) -> _OpImpl:
    ch = Channel(m, op["producer"], op["consumer"], mechanism="mp")
    items = op["items"]
    expected = sum(100 + i for i in range(items))
    box: dict[str, int] = {}

    def body(node: int) -> Generator | None:
        if node == op["producer"]:
            def produce() -> Generator:
                for i in range(items):
                    yield from ch.put(100 + i)
                    yield Compute(8)
            return produce()
        if node == op["consumer"]:
            def consume() -> Generator:
                total = 0
                for _ in range(items):
                    v = yield from ch.get()
                    total += v
                box["sum"] = total
            return consume()
        return None

    def post() -> list[str]:
        got = box.get("sum")
        if got != expected:
            return [f"channel: sum {got!r} != {expected}"]
        return []

    return _OpImpl(op, body, post=post)


def _op_handoff(m: Machine, op: dict, _rel) -> _OpImpl:
    """Ring flag handoff: node ``i`` writes ``words`` values into a
    buffer homed at node ``i+1`` and raises a flag; the consumer spins
    on its flag, then reads the buffer. ``racy=True`` strips the
    release/acquire annotations — the deleted happens-before edge the
    race detector exists to find (the campaign's seeded bug)."""
    n = m.n_nodes
    words = op["words"]
    racy = bool(op.get("racy"))
    flags = [m.alloc(c, 8) for c in range(n)]
    data = [m.alloc(c, 8 * words) for c in range(n)]
    for c in range(n):
        m.store.write(flags[c], 0)
    errors: list[str] = []

    def body(node: int) -> Generator:
        consumer = (node + 1) % n
        for w in range(words):
            yield Store(data[consumer] + w * 8, node * 1000 + w)
        if racy:
            yield Store(flags[consumer], 1)
            while True:
                v = yield Load(flags[node])
                if v >= 1:
                    break
                yield Compute(12)
        else:
            yield StoreRelease(flags[consumer], 1)
            yield SpinUntilGE(flags[node], 1, backoff=12)
        producer = (node - 1) % n
        for w in range(words):
            got = yield Load(data[node] + w * 8)
            want = producer * 1000 + w
            if got != want:
                errors.append(f"handoff n{node} word{w}: {got!r} != {want}")

    return _OpImpl(op, body, post=lambda: sorted(errors))


def _op_macro(m: Machine, op: dict, _rel) -> _OpImpl:
    """Private per-node macro-effect loops — pure batch-runner stress
    (the macro-vs-micro differential oracle's favourite food)."""
    n = m.n_nodes
    elems = op["elems"]
    kind = op["kind"]
    base = [m.alloc(node, 8 * elems) for node in range(n)]
    aux = [m.alloc(node, 8 * elems) for node in range(n)]
    for node in range(n):
        for i in range(elems):
            m.store.write(base[node] + i * 8, node * 7 + i)
    errors: list[str] = []

    def body(node: int) -> Generator:
        if kind == "compute_load":
            vals = yield ComputeLoad(base[node], elems, stride=8, compute=2)
            want = [node * 7 + i for i in range(elems)]
            if list(vals) != want:
                errors.append(f"macro(compute_load) n{node}: wrong values")
        elif kind == "copy":
            yield LoadComputeStore(base[node], aux[node], elems, stride=8)
        elif kind == "store_run":
            yield StoreRun(aux[node], [node + i for i in range(elems)])
        else:  # repeat
            yield Repeat(elems, (
                Compute(2),
                Store(aux[node], node),
                Load(aux[node]),
            ))

    def post() -> list[str]:
        out = sorted(errors)
        if kind == "copy":
            for node in range(n):
                for i in range(elems):
                    got = m.store.read(aux[node] + i * 8)
                    if got != node * 7 + i:
                        out.append(f"macro(copy) n{node} elem{i}: {got!r}")
                        break
        elif kind == "store_run":
            for node in range(n):
                for i in range(elems):
                    got = m.store.read(aux[node] + i * 8)
                    if got != node + i:
                        out.append(f"macro(store_run) n{node} elem{i}: {got!r}")
                        break
        return out

    return _OpImpl(op, body, post=post)


_BUILDERS: dict[str, Callable[..., _OpImpl]] = {
    "compute": _op_compute,
    "barrier": _op_barrier,
    "reduce": _op_reduce,
    "lock": _op_lock,
    "bulk": _op_bulk,
    "channel": _op_channel,
    "handoff": _op_handoff,
    "macro": _op_macro,
}
