"""Simulation-as-a-service: a long-lived daemon over the sweep runner.

``repro.serve`` wraps the deterministic experiment drivers, the
persistent worker pool (:mod:`repro.perf.sweep`), and the
content-addressed run cache (:mod:`repro.perf.cache`) in a job
service:

* :mod:`repro.serve.store` — the **run store**: completed runs keyed
  by descriptor-hash × code-fingerprint × observation key, artifacts
  (``run.json``, report text, table rows, Perfetto trace) published
  atomically.
* :mod:`repro.serve.orchestrator` — the **job orchestrator**: a
  priority queue feeding worker threads, a per-job state machine
  (queued → running → done/failed/cancelled), dedup against the run
  store, and graceful shutdown that drains in-flight jobs.
* :mod:`repro.serve.journal` — the **job journal**: an append-only
  JSONL event log of every lifecycle transition, replayed on startup
  so queued jobs survive a daemon restart and any job's history can
  be reconstructed offline.
* :mod:`repro.serve.executor` — turns a job spec into an experiment
  run (under the shared run cache and an observation session) and its
  artifact set, streaming per-sweep-point progress back to the
  orchestrator and stitching host-side spans into the job's trace.
* :mod:`repro.serve.api` / :mod:`repro.serve.server` — the REST
  routing table and the stdlib ``ThreadingHTTPServer`` carrying it.
* :mod:`repro.serve.client` — a stdlib HTTP client for the API (the
  ``alewife-repro submit/status/fetch`` subcommands).

Everything is stdlib: the daemon adds no dependency beyond what the
package already ships.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.executor import ExperimentExecutor
from repro.serve.journal import JobJournal, default_journal_path
from repro.serve.orchestrator import (
    Job,
    JobCancelled,
    JobOrchestrator,
    OrchestratorClosed,
)
from repro.serve.store import RunStore

__all__ = [
    "ExperimentExecutor",
    "Job",
    "JobCancelled",
    "JobJournal",
    "JobOrchestrator",
    "OrchestratorClosed",
    "RunStore",
    "ServeClient",
    "ServeError",
    "default_journal_path",
]
