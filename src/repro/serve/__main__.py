"""``python -m repro.serve`` — offline maintenance of the run store.

    python -m repro.serve store stats [--store-dir D]
    python -m repro.serve store gc    [--max-age-days N] [--max-bytes B] [--all]

Mirrors ``python -m repro.perf.cache`` for the service's run store:
``gc`` deletes whole published runs by age and then oldest-first down
to a byte budget. Safe against a live daemon on the same store — runs
are deleted entry-first, so a concurrent reader sees a deleted run as
absent (and simply recomputes it), never as half-published.
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.store import DEFAULT_STORE_DIR, STORE_DIR_ENV, RunStore


def _cmd_stats(store: RunStore) -> int:
    by_exp: dict[str, int] = {}
    n = 0
    for key in store.keys():
        n += 1
        entry = store.get(key)
        exp = (entry or {}).get("experiment", "?")
        by_exp[exp] = by_exp.get(exp, 0) + 1
    print(f"store dir: {store.root}")
    print(f"runs:      {n} ({store.total_bytes():,} bytes)")
    for exp, count in sorted(by_exp.items(), key=lambda kv: -kv[1]):
        print(f"  {count:>5}  {exp}")
    return 0


def _cmd_gc(store: RunStore, args: argparse.Namespace) -> int:
    removed = store.gc(
        max_age_days=args.max_age_days,
        max_bytes=args.max_bytes,
        everything=args.all,
    )
    print(f"removed {removed} runs from {store.root}")
    return 0


def main(argv: list[str] | None = None) -> int:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--store-dir", default=None, metavar="DIR",
                        help=f"store location (default: ${STORE_DIR_ENV} "
                        f"or {DEFAULT_STORE_DIR!r})")
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Inspect and maintain the service run store.",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)
    storep = sub.add_parser("store", help="run-store maintenance")
    storesub = storep.add_subparsers(dest="store_cmd", required=True)
    storesub.add_parser("stats", parents=[common],
                        help="run count, bytes, per-experiment breakdown")
    gcp = storesub.add_parser("gc", parents=[common],
                              help="delete runs by age / byte budget")
    gcp.add_argument("--max-age-days", type=float, default=None)
    gcp.add_argument("--max-bytes", type=int, default=None)
    gcp.add_argument("--all", action="store_true",
                     help="wipe every published run")
    args = ap.parse_args(argv)

    store = RunStore(args.store_dir)
    if args.store_cmd == "stats":
        return _cmd_stats(store)
    return _cmd_gc(store, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
