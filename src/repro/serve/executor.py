"""Turning a job spec into an experiment run and its artifact set.

A *spec* is the plain-JSON description a client submits::

    {
      "experiment": "fig8",          # required, one of ALL_EXPERIMENTS
      "quick": true,                 # start from the CLI's --quick args
      "nodes": 16,                   # machine-size override (where legal)
      "params": {"block_sizes": [64, 256]},   # driver kwargs
      "trace": false,                # capture a Perfetto trace artifact
      "sample_interval": 0,          # time-series sampling period
      "check": ["race", "deadlock"]  # dynamic checkers to attach
    }

Resolution is strict — unknown experiments, unknown parameter names,
and malformed values are rejected at submission time (HTTP 400), not
discovered by a failed job. Lists arriving from JSON are normalized
to tuples so a spec resolves to exactly the kwargs a direct
``repro.cli`` invocation would produce, and so the run key below is
canonical.

The **run key** is the service-level twin of the run cache's key:

    sha256( descriptor(schema, experiment, sorted kwargs)
            × code_fingerprint(experiment module)
            × repr(ObsConfig) )

Identical submissions from any number of clients therefore collapse
onto one key; editing any code the experiment can reach changes the
fingerprint and honestly re-runs. Execution happens under the shared
:class:`~repro.perf.cache.RunCache` (activated on the worker's
thread), so even two *different* jobs overlapping in sweep points
share point-level results.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import time
from typing import Any, Callable

from repro.serve.orchestrator import JobCancelled

#: bump when the spec → kwargs resolution or artifact set changes
#: incompatibly (orphans every stored run)
EXECUTOR_SCHEMA = 1

_SPEC_KEYS = {
    "experiment", "quick", "nodes", "params", "trace", "sample_interval",
    "check", "partitions",
}

#: legal keys inside a {"fuzz": {...}} spec, with bounds-checked types
_FUZZ_KEYS = {
    "seeds": int, "base_seed": int, "budget": (int, float),
    "inject_bug": bool, "minimize": bool,
}


def _normalize(value: Any) -> Any:
    """JSON params → canonical kwargs (lists become tuples, recursively),
    matching the tuple-valued parameterizations the CLI uses."""
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    return value


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class ExperimentExecutor:
    """Resolve specs to keys and execute them into artifact sets."""

    def __init__(self, cache: Any = None, jobs: int = 1) -> None:
        #: shared RunCache (or None) activated per executing thread
        self.cache = cache
        #: sweep-level worker-pool width handed to experiment drivers
        self.jobs = max(1, int(jobs))

    # -- spec resolution ----------------------------------------------
    def resolve(self, spec: dict) -> tuple[str, dict[str, Any], Any]:
        """Validate ``spec`` → (experiment id, driver kwargs, ObsConfig).

        Raises ValueError on anything malformed."""
        from repro.cli import NODES_KW, QUICK_ARGS
        from repro.experiments import ALL_EXPERIMENTS
        from repro.obs.session import ObsConfig

        if not isinstance(spec, dict):
            raise ValueError("job spec must be a JSON object")
        if "fuzz" in spec:
            raise ValueError("fuzz specs resolve via resolve_fuzz")
        unknown = set(spec) - _SPEC_KEYS
        if unknown:
            raise ValueError(f"unknown spec keys: {sorted(unknown)}")
        exp_id = spec.get("experiment")
        if exp_id not in ALL_EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {exp_id!r}; "
                f"one of {sorted(ALL_EXPERIMENTS)}"
            )
        fn = ALL_EXPERIMENTS[exp_id]
        kwargs: dict[str, Any] = dict(QUICK_ARGS[exp_id]) if spec.get("quick") else {}
        params = spec.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError("spec 'params' must be an object")
        legal = set(inspect.signature(fn).parameters) - {"jobs"}
        bad = set(params) - legal
        if bad:
            raise ValueError(
                f"experiment {exp_id!r} has no parameters {sorted(bad)}; "
                f"legal: {sorted(legal)}"
            )
        kwargs.update({k: _normalize(v) for k, v in params.items()})
        nodes = spec.get("nodes")
        if nodes is not None:
            kw = NODES_KW.get(exp_id)
            if kw is None:
                raise ValueError(
                    f"experiment {exp_id!r} does not take a node count"
                )
            kwargs[kw] = int(nodes)
        sample_interval = int(spec.get("sample_interval") or 0)
        if sample_interval < 0:
            raise ValueError("'sample_interval' must be >= 0")
        checks: tuple[str, ...] = ()
        if spec.get("check"):
            from repro.check import validate_checks

            checks = validate_checks(spec["check"])
        if "partitions" in params:
            raise ValueError(
                "'partitions' is a top-level spec key, not a param"
            )
        if spec.get("partitions") is not None:
            from repro.perf.partition import validate_partitions

            if "partitions" not in inspect.signature(fn).parameters:
                raise ValueError(
                    f"experiment {exp_id!r} does not support 'partitions'"
                )
            if checks:
                raise ValueError(
                    "'partitions' cannot be combined with 'check' "
                    "(dynamic checkers need a global view)"
                )
            nkw = NODES_KW.get(exp_id)
            if nkw:
                default_n = inspect.signature(fn).parameters[nkw].default
                n_plan = int(kwargs.get(nkw, default_n))
            else:
                n_plan = 64
            kwargs["partitions"] = validate_partitions(
                spec["partitions"], n_plan
            )
        obs_cfg = ObsConfig(
            sample_interval=sample_interval,
            trace=bool(spec.get("trace")),
            check=checks,
        )
        return exp_id, kwargs, obs_cfg

    def resolve_fuzz(self, spec: dict) -> dict[str, Any]:
        """Validate a ``{"fuzz": {...}}`` spec → campaign kwargs."""
        body = spec.get("fuzz")
        if not isinstance(body, dict):
            raise ValueError("spec 'fuzz' must be an object")
        extra_top = set(spec) - {"fuzz"}
        if extra_top:
            raise ValueError(
                f"fuzz spec takes no other top-level keys: {sorted(extra_top)}"
            )
        unknown = set(body) - set(_FUZZ_KEYS)
        if unknown:
            raise ValueError(f"unknown fuzz keys: {sorted(unknown)}")
        kwargs: dict[str, Any] = {}
        for key, typ in _FUZZ_KEYS.items():
            if key not in body:
                continue
            value = body[key]
            if isinstance(value, bool) and typ is not bool:
                raise ValueError(f"fuzz {key!r} must be a number")
            if not isinstance(value, typ):
                raise ValueError(f"fuzz {key!r} has the wrong type")
            kwargs[key] = value
        if kwargs.get("seeds", 1) < 1:
            raise ValueError("fuzz 'seeds' must be >= 1")
        if kwargs.get("budget", 1) <= 0:
            raise ValueError("fuzz 'budget' must be > 0")
        return kwargs

    # -- keying --------------------------------------------------------
    def key_for(self, spec: dict) -> str:
        """The run key: descriptor × code fingerprint × obs key."""
        from repro.perf.cache import code_fingerprint

        if isinstance(spec, dict) and "fuzz" in spec:
            kwargs = self.resolve_fuzz(spec)
            descriptor = repr((EXECUTOR_SCHEMA, "fuzz", sorted(kwargs.items())))
            fingerprint = code_fingerprint("repro.fuzz.campaign")
            payload = f"{descriptor}\n{fingerprint}\n"
            return hashlib.sha256(payload.encode()).hexdigest()

        from repro.experiments import ALL_EXPERIMENTS

        exp_id, kwargs, obs_cfg = self.resolve(spec)
        # 'partitions' is an execution strategy, not an input: a
        # partitioned run produces the same results/artifacts as the
        # serial run of the same spec (gated by the cycle-identity
        # tests), so both dedupe onto one store entry.
        kwargs.pop("partitions", None)
        descriptor = repr((EXECUTOR_SCHEMA, exp_id, sorted(kwargs.items())))
        fingerprint = code_fingerprint(ALL_EXPERIMENTS[exp_id].__module__)
        payload = f"{descriptor}\n{fingerprint}\n{obs_cfg!r}"
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- execution -----------------------------------------------------
    def execute(
        self, spec: dict,
        should_cancel: Callable[[], bool] = lambda: False,
        progress: Callable[[dict], None] | None = None,
        job_info: dict | None = None,
    ) -> tuple[dict, dict[str, bytes]]:
        """Run the experiment and build its artifacts; returns
        ``(meta, artifacts)`` for :meth:`RunStore.publish`.

        ``progress`` (when given) receives aggregated sweep progress
        dicts — ``{"done", "total", "cache_hits", "point"}`` — once
        per completed sweep point, on this thread. The same per-point
        hook doubles as the cooperative cancellation probe, so a
        cancel interrupts between sweep points, not just between
        phases. ``job_info`` carries the service-side correlation
        context (trace id, submission timestamps) stamped into the
        Perfetto trace artifact as host-side spans.
        """
        from repro.experiments import ALL_EXPERIMENTS
        from repro.obs.export import build_perfetto, build_run_manifest
        from repro.obs.session import session as obs_session
        from repro.perf import progress as perf_progress
        from repro.perf.cache import activate, code_fingerprint

        if "fuzz" in spec:
            return self._execute_fuzz(spec, should_cancel, progress)

        exp_id, kwargs, obs_cfg = self.resolve(spec)
        fn = ALL_EXPERIMENTS[exp_id]
        if should_cancel():
            raise JobCancelled()
        run_kwargs = dict(kwargs)
        if "jobs" in inspect.signature(fn).parameters:
            run_kwargs["jobs"] = self.jobs

        # host-side sweep observer: aggregates per-sweep events into
        # job-level progress, records per-point wall times for the
        # trace's host spans, and probes cancellation between points
        tally = {"done": 0, "total": 0, "cache_hits": 0}
        point_log: list[dict[str, Any]] = []

        def on_sweep_event(event: dict) -> None:
            if event["event"] == "sweep_start":
                tally["total"] += event["points"]
            elif event["event"] == "point":
                tally["done"] += 1
                if event.get("cached"):
                    tally["cache_hits"] += 1
                point_log.append({
                    "label": event.get("label", ""),
                    "mono": time.monotonic(),
                    "cached": bool(event.get("cached")),
                })
            elif event["event"] == "partition_window":
                # per-shard progress from a partitioned run: stream it
                # through the same SSE channel (and cancellation probe)
                # without advancing the point tally
                if should_cancel():
                    raise JobCancelled()
                if progress is not None:
                    progress({
                        **tally,
                        "point": f"window {event['windows']} "
                                 f"(shards {event['shards']}, "
                                 f"cycle {event['min_now']})",
                        "partition": {
                            "windows": event["windows"],
                            "shards": event["shards"],
                            "min_now": event["min_now"],
                            "max_now": event["max_now"],
                        },
                    })
                return
            if should_cancel():
                raise JobCancelled()
            if progress is not None:
                progress({**tally, "point": event.get("label")})

        t0 = time.time()
        t0_mono = time.monotonic()
        with activate(self.cache):
            cache_before = (
                self.cache.stats.snapshot() if self.cache is not None else None
            )
            with obs_session(obs_cfg) as s, perf_progress.activate(
                on_sweep_event
            ):
                result = fn(**run_kwargs)
                data = s.data()
        wall = time.time() - t0
        if should_cancel():
            raise JobCancelled()

        params = _jsonable(kwargs)
        timings = {
            "wall_seconds": round(wall, 3),
            "machines": len(data["records"]),
            "simulated_cycles": sum(r["cycles"] for r in data["records"]),
        }
        extra: dict[str, Any] = {}
        if data.get("check") is not None:
            extra["check"] = data["check"]
        if data.get("cache") is not None:
            extra["cache"] = data["cache"]
        manifest = build_run_manifest(
            experiment=exp_id,
            params=params,
            timings=timings,
            metrics=data["metrics"],
            cycle_attribution=data["cycle_attribution"],
            samples=[r["samples"] for r in data["records"] if "samples" in r],
            **extra,
        )
        table = {
            "exp_id": result.exp_id,
            "title": result.title,
            "columns": result.columns,
            "rows": result.rows,
            "notes": result.notes,
        }
        artifacts = {
            "report.txt": (result.format_table() + "\n").encode(),
            "table.json": _dump(table),
            "run.json": _dump(manifest),
        }
        if obs_cfg.trace:
            host_events = _host_trace_events(
                exp_id, job_info, t0_mono, time.monotonic(), point_log
            )
            artifacts["trace.json"] = _dump(build_perfetto(
                data["records"],
                host_events=host_events,
                trace_id=(job_info or {}).get("trace_id"),
            ))
        meta = {
            "experiment": exp_id,
            "params": params,
            "wall_seconds": timings["wall_seconds"],
            "fingerprint": code_fingerprint(fn.__module__),
            "obs_key": repr(obs_cfg),
            "trace_id": (job_info or {}).get("trace_id"),
            "cache": (
                self.cache.stats.delta(cache_before)
                if cache_before is not None
                else None
            ),
        }
        return meta, artifacts

    def _execute_fuzz(
        self, spec: dict,
        should_cancel: Callable[[], bool],
        progress: Callable[[dict], None] | None,
    ) -> tuple[dict, dict[str, bytes]]:
        """Run a fuzzing campaign as a daemon job. Campaign progress
        events fold into the job's SSE progress (seeds done / findings
        so far); the campaign runs with caching disabled (its own
        default) and ``jobs`` from the executor, and its report lands
        as campaign.json / findings.json / report.txt artifacts."""
        from repro.fuzz.campaign import (
            CampaignConfig,
            dump_report,
            format_report,
            run_campaign,
        )
        from repro.perf.cache import code_fingerprint

        kwargs = self.resolve_fuzz(spec)
        cfg = CampaignConfig(jobs=self.jobs, corpus_dir=None,
                             bundle_artifacts=False, **kwargs)

        def on_fuzz_event(event: dict) -> None:
            if should_cancel():
                raise JobCancelled()
            if progress is not None:
                progress({
                    "done": event["done"], "total": event["total"],
                    "findings": event["findings"],
                    "point": f"fuzz:{event['phase']}",
                })

        t0 = time.time()
        report = run_campaign(
            cfg, progress=on_fuzz_event, should_cancel=should_cancel
        )
        if should_cancel():
            raise JobCancelled()
        meta = {
            "experiment": "fuzz",
            "params": kwargs,
            "wall_seconds": round(time.time() - t0, 3),
            "fingerprint": code_fingerprint("repro.fuzz.campaign"),
            "obs_key": "",
            "findings": len(report["findings"]),
        }
        artifacts = {
            "report.txt": (format_report(report) + "\n").encode(),
            "campaign.json": dump_report(report),
            "findings.json": _dump(report["findings"]),
        }
        return meta, artifacts


def _host_trace_events(
    exp_id: str,
    job_info: dict | None,
    t0_mono: float,
    t1_mono: float,
    point_log: list[dict[str, Any]],
) -> list[dict]:
    """Host-side spans for the job's Perfetto trace: the daemon's
    queued wait, the executor's run, and one span per sweep point
    (bounded by consecutive parent-side completion times).

    Timestamps are microseconds of *wall time since submission* on the
    dedicated host process track; the sim-side tracks stay in
    simulated cycles. One trace.json then shows daemon → orchestrator
    → executor → sim-engine attribution in a single Perfetto load,
    correlated by the trace id stamped on every host event.
    """
    from repro.obs.export import host_span_events

    info = job_info or {}
    base = info.get("submitted_mono", t0_mono)

    def us(mono: float) -> int:
        return max(0, int((mono - base) * 1e6))

    spans: list[dict[str, Any]] = []
    started_mono = info.get("started_mono")
    if started_mono is not None:
        spans.append({
            "name": "job.queued", "tid": 0,
            "ts0": us(base), "ts1": us(started_mono),
        })
    spans.append({
        "name": f"job.execute:{exp_id}", "tid": 1,
        "ts0": us(t0_mono), "ts1": us(t1_mono),
    })
    prev = t0_mono
    for point in point_log:
        spans.append({
            "name": point["label"] or "point", "tid": 2,
            "ts0": us(prev), "ts1": us(point["mono"]),
            "args": {"cached": point["cached"]},
        })
        prev = point["mono"]
    return host_span_events(spans, trace_id=info.get("trace_id"))


def _dump(doc: Any) -> bytes:
    return json.dumps(doc, indent=1, default=str).encode() + b"\n"
