"""The run store: completed service runs, content-addressed on disk.

A *run* is one executed job: an experiment id plus fully-resolved
kwargs. Its key (computed by
:meth:`repro.serve.executor.ExperimentExecutor.key_for`) is the same
three-part identity the run cache uses — descriptor hash × code
fingerprint × observation key — so two clients submitting the same
work against the same code are, by construction, asking for the same
run. The store is what lets the service answer the second client
instantly.

Layout::

    <store>/runs/<key[:2]>/<key>/
        report.txt      rendered experiment table
        table.json      exp_id / title / columns / rows / notes
        run.json        the standard run manifest (repro-run/1)
        trace.json      Perfetto trace (only when the job traced)
        entry.json      metadata, written last

Publication protocol: every artifact is written via write-to-temp +
atomic rename, and ``entry.json`` is renamed into place *last* — a
run exists iff its ``entry.json`` decodes and every artifact it lists
is present. Two workers materializing the same key concurrently (the
dedup window between submit and publish) each write identical,
deterministic bytes; whoever renames last wins and nobody ever
observes a half-published run.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterator

STORE_DIR_ENV = "REPRO_STORE_DIR"
DEFAULT_STORE_DIR = ".repro_store"

#: bump to orphan every existing run (schema migrations)
STORE_SCHEMA = 1

ENTRY_NAME = "entry.json"

#: artifact name -> content type served over HTTP
ARTIFACT_TYPES = {
    "report.txt": "text/plain; charset=utf-8",
    "table.json": "application/json",
    "run.json": "application/json",
    "trace.json": "application/json",
    "campaign.json": "application/json",
    "findings.json": "application/json",
}


class RunStore:
    """Content-addressed store of completed service runs."""

    _tmp_seq = itertools.count()

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(
            root or os.environ.get(STORE_DIR_ENV) or DEFAULT_STORE_DIR
        )

    def run_dir(self, key: str) -> Path:
        return self.root / "runs" / key[:2] / key

    # -- write ---------------------------------------------------------
    def _write_atomic(self, path: Path, blob: bytes) -> None:
        tmp = path.parent / (
            f".{path.name}.{os.getpid()}.{threading.get_ident()}"
            f".{next(self._tmp_seq)}.tmp"
        )
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def publish(
        self, key: str, meta: dict[str, Any], artifacts: dict[str, bytes]
    ) -> dict[str, Any]:
        """Publish one completed run: artifacts first, entry last.

        Returns the entry as :meth:`get` would. Safe against a
        concurrent publisher of the same key (identical deterministic
        content; per-file atomic rename)."""
        if ENTRY_NAME in artifacts:
            raise ValueError(f"{ENTRY_NAME!r} is reserved for run metadata")
        run_dir = self.run_dir(key)
        run_dir.mkdir(parents=True, exist_ok=True)
        for name, blob in sorted(artifacts.items()):
            if "/" in name or name.startswith("."):
                raise ValueError(f"bad artifact name {name!r}")
            self._write_atomic(run_dir / name, blob)
        entry = {
            "schema": STORE_SCHEMA,
            "key": key,
            "artifacts": sorted(artifacts),
            "published": time.time(),
            **meta,
        }
        self._write_atomic(
            run_dir / ENTRY_NAME,
            json.dumps(entry, indent=1, sort_keys=True).encode() + b"\n",
        )
        return entry

    # -- read ----------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The run's entry, or None if absent / half-published /
        schema-mismatched. A run whose listed artifacts are missing is
        treated as absent (it will simply be recomputed)."""
        try:
            entry = json.loads((self.run_dir(key) / ENTRY_NAME).read_bytes())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != STORE_SCHEMA:
            return None
        if entry.get("key") != key:
            return None
        names = entry.get("artifacts")
        if not isinstance(names, list):
            return None
        run_dir = self.run_dir(key)
        if any(not (run_dir / name).is_file() for name in names):
            return None
        return entry

    def artifact_path(self, key: str, name: str) -> Path | None:
        """Path of one artifact of a *published* run, else None."""
        entry = self.get(key)
        if entry is None or name not in entry["artifacts"]:
            return None
        return self.run_dir(key) / name

    def read_artifact(self, key: str, name: str) -> bytes:
        path = self.artifact_path(key, name)
        if path is None:
            raise KeyError(f"run {key[:12]}… has no artifact {name!r}")
        return path.read_bytes()

    # -- maintenance ---------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Keys of every published run."""
        runs = self.root / "runs"
        if not runs.is_dir():
            return
        for entry_path in sorted(runs.glob(f"*/*/{ENTRY_NAME}")):
            key = entry_path.parent.name
            if self.get(key) is not None:
                yield key

    def count(self) -> int:
        return sum(1 for _ in self.keys())

    def total_bytes(self) -> int:
        """On-disk bytes across every file under the runs tree
        (entries and artifacts; half-published temp files included —
        this is a capacity gauge, not a content audit)."""
        runs = self.root / "runs"
        if not runs.is_dir():
            return 0
        total = 0
        for path in runs.rglob("*"):
            try:
                if path.is_file():
                    total += path.stat().st_size
            except OSError:  # racing publisher/GC: skip
                continue
        return total

    def _run_bytes(self, key: str) -> int:
        total = 0
        for path in self.run_dir(key).rglob("*"):
            try:
                if path.is_file():
                    total += path.stat().st_size
            except OSError:
                continue
        return total

    def delete(self, key: str) -> None:
        """Remove one run, entry first — a reader racing the deletion
        sees the run as absent (get() requires entry.json), never as
        half-complete."""
        run_dir = self.run_dir(key)
        (run_dir / ENTRY_NAME).unlink(missing_ok=True)
        for path in sorted(run_dir.glob("*")):
            path.unlink(missing_ok=True)
        try:
            run_dir.rmdir()
            run_dir.parent.rmdir()  # drop the fan-out dir when emptied
        except OSError:
            pass

    def gc(
        self,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
        everything: bool = False,
    ) -> int:
        """Delete runs by publication age, then oldest-first down to a
        byte budget (the ``repro.perf.cache gc`` policy applied to
        whole runs); returns the number of runs removed."""
        removed = 0
        runs = [
            (entry.get("published", 0.0), key)
            for key in self.keys()
            if (entry := self.get(key)) is not None
        ]
        if everything:
            max_bytes = -1
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            for published, key in list(runs):
                if published < cutoff:
                    self.delete(key)
                    runs.remove((published, key))
                    removed += 1
        if max_bytes is not None:
            runs.sort()  # oldest first
            sizes = {key: self._run_bytes(key) for _, key in runs}
            total = sum(sizes.values())
            while runs and total > max_bytes:
                _, key = runs.pop(0)
                total -= sizes[key]
                self.delete(key)
                removed += 1
        return removed
