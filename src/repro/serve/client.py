"""Stdlib HTTP client for the repro-serve API.

Powers the ``alewife-repro submit / status / fetch`` subcommands and
the tests; any HTTP client (curl, a browser) speaks the same surface —
see docs/SERVICE.md for the raw API.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any

SERVE_URL_ENV = "REPRO_SERVE_URL"
DEFAULT_SERVE_URL = "http://127.0.0.1:8787"

TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


def default_url() -> str:
    return os.environ.get(SERVE_URL_ENV) or DEFAULT_SERVE_URL


class ServeError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Minimal blocking client over ``urllib``."""

    def __init__(self, base_url: str | None = None, timeout: float = 30.0) -> None:
        self.base_url = (base_url or default_url()).rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict | None = None,
        raw: bool = False,
    ) -> Any:
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                payload = resp.read()
                ctype = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            try:
                message = json.loads(payload).get(
                    "error", payload.decode(errors="replace")
                )
            except ValueError:
                message = payload.decode(errors="replace")
            raise ServeError(exc.code, message) from None
        if not raw and ctype.startswith("application/json"):
            return json.loads(payload)
        return payload

    # -- API -----------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def submit(self, spec: dict, priority: int = 0) -> dict:
        return self._request(
            "POST", "/v1/jobs", {"spec": spec, "priority": priority}
        )

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def artifacts(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/artifacts")

    def fetch(self, job_id: str, name: str) -> bytes:
        """Raw artifact bytes, exactly as published (bit-identical for
        deduplicated resubmissions)."""
        return self._request(
            "GET", f"/v1/jobs/{job_id}/artifacts/{name}", raw=True
        )

    def wait(
        self, job_id: str, timeout: float | None = None, poll: float = 0.25
    ) -> dict:
        """Poll until the job is terminal; raises TimeoutError."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll)

    def events(self, job_id: str, timeout: float | None = None):
        """Follow the job's live SSE event stream
        (``GET /v1/jobs/<id>/events``), yielding one decoded event
        dict per server-sent event until the job is terminal (the
        server closes the stream) or ``timeout`` seconds pass
        server-side."""
        path = f"/v1/jobs/{job_id}/events"
        if timeout is not None:
            path += f"?timeout={timeout}"
        req = urllib.request.Request(f"{self.base_url}{path}")
        try:
            resp = urllib.request.urlopen(req, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            try:
                message = json.loads(payload).get(
                    "error", payload.decode(errors="replace")
                )
            except ValueError:
                message = payload.decode(errors="replace")
            raise ServeError(exc.code, message) from None
        with resp:
            for raw in resp:
                line = raw.decode("utf-8", errors="replace").strip()
                if line.startswith("data:"):
                    try:
                        yield json.loads(line[len("data:"):].strip())
                    except ValueError:
                        continue
