"""The daemon: a stdlib ``ThreadingHTTPServer`` carrying ServeApp.

HTTP threads only parse requests and shovel bytes — every decision
lives in :class:`~repro.serve.api.ServeApp`, and every experiment runs
on the orchestrator's worker threads, so a slow simulation never
blocks health checks or status polls. Streaming responses (the SSE
job-event endpoint) are sent with chunked transfer encoding, one
chunk per event, flushed as they land.

Logging goes through the stdlib ``repro.serve`` logger — every
request is one structured line (method, path, status, duration in
milliseconds) at INFO, ``http.server``'s own chatter at DEBUG —
configured by ``--log-level``/``--log-file`` (stderr by default).

Startup/shutdown contract (``alewife-repro serve``):

1. build the run store, the job journal, the shared run cache, the
   executor, and the orchestrator; **replay the journal** (queued jobs
   from the previous process re-queue, interrupted runs are marked);
   start the workers;
2. serve until SIGINT/SIGTERM;
3. graceful shutdown: stop accepting HTTP, then
   ``orchestrator.shutdown(drain=True)`` — in-flight jobs finish and
   publish, queued jobs stay queued *and journaled*, so the next
   daemon on this store picks them up exactly where this one stopped.
"""

from __future__ import annotations

import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.api import ServeApp
from repro.serve.executor import ExperimentExecutor
from repro.serve.journal import JobJournal, default_journal_path
from repro.serve.orchestrator import JobOrchestrator
from repro.serve.store import RunStore

#: request body cap: job specs are small JSON documents
MAX_BODY_BYTES = 1 << 20

logger = logging.getLogger("repro.serve")


def configure_logging(
    level: str = "info", log_file: str | None = None
) -> None:
    """Point the ``repro.serve`` logger at stderr (or ``log_file``)
    with structured single-line records. Idempotent per process —
    reconfiguring replaces the previous handler."""
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    handler: logging.Handler
    if log_file:
        handler = logging.FileHandler(log_file)
    else:
        handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(
        "%(asctime)s %(levelname)s %(name)s %(message)s"
    ))
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # http.server's own request lines (and errors) go to the leveled
    # logger instead of being swallowed or splattered on stderr
    def log_message(self, fmt: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), fmt % args)

    def log_error(self, fmt: str, *args) -> None:
        logger.warning("%s %s", self.address_string(), fmt % args)

    def _respond(self) -> None:
        app: ServeApp = self.server.app  # type: ignore[attr-defined]
        t0 = time.perf_counter()
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            resp = None
            body, status = b'{"error": "request body too large"}\n', 413
            content_type = "application/json"
        else:
            resp = app.handle(
                self.command, self.path, self.rfile.read(length)
            )
            body, status, content_type = resp.body, resp.status, resp.content_type
        try:
            if resp is not None and resp.stream is not None:
                status = self._send_stream(resp, status, content_type)
            else:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
        finally:
            logger.info(
                "request method=%s path=%s status=%d duration_ms=%.1f",
                self.command, self.path, status,
                (time.perf_counter() - t0) * 1e3,
            )

    def _send_stream(self, resp, status: int, content_type: str) -> int:
        """Send a streaming response chunk-by-chunk (HTTP/1.1 chunked
        transfer encoding), flushing each chunk so SSE clients see
        events live. A client hanging up just ends the stream."""
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Cache-Control", "no-store")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for chunk in resp.stream:
                if not chunk:
                    continue
                self.wfile.write(f"{len(chunk):x}\r\n".encode())
                self.wfile.write(chunk)
                self.wfile.write(b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        return status

    do_GET = do_POST = _respond


class ServeServer(ThreadingHTTPServer):
    """HTTP shell owning the app; one daemon thread per connection."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app: ServeApp,
                 verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.app = app
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]


def build_app(
    store_dir: str | None = None,
    cache_dir: str | None = None,
    no_cache: bool = False,
    workers: int = 1,
    jobs: int = 1,
    journal_path: str | None = None,
    recover: bool = True,
) -> ServeApp:
    """Wire store + journal + cache + executor + orchestrator into one
    app (workers not yet started). The journal lives next to the run
    store by default, is replayed here (``recover=True``) so queued
    jobs from a previous daemon survive, and keeps appending for the
    life of the app."""
    from repro.perf.cache import RunCache

    store = RunStore(store_dir)
    journal = JobJournal(journal_path or default_journal_path(store.root))
    cache = None if no_cache else RunCache(cache_dir)
    executor = ExperimentExecutor(cache=cache, jobs=jobs)
    orchestrator = JobOrchestrator(
        executor, store, workers=workers, journal=journal
    )
    if recover:
        recovered = orchestrator.recover()
        if any(recovered.values()):
            logger.info(
                "journal recovery: %d re-queued, %d interrupted, "
                "%d terminal re-registered",
                recovered["requeued"], recovered["interrupted"],
                recovered["terminal"],
            )
    return ServeApp(orchestrator, store)


def serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    store_dir: str | None = None,
    cache_dir: str | None = None,
    no_cache: bool = False,
    workers: int = 1,
    jobs: int = 1,
    verbose: bool = False,
    log_level: str | None = None,
    log_file: str | None = None,
    journal_path: str | None = None,
) -> int:
    """Run the daemon until SIGINT/SIGTERM; returns an exit code."""
    configure_logging(
        log_level or ("debug" if verbose else "info"), log_file
    )
    app = build_app(
        store_dir=store_dir, cache_dir=cache_dir, no_cache=no_cache,
        workers=workers, jobs=jobs, journal_path=journal_path,
    )
    app.orchestrator.start()
    server = ServeServer((host, port), app, verbose=verbose)
    stop = threading.Event()

    def _signalled(signum, frame) -> None:
        stop.set()
        # shutdown() must come from another thread than serve_forever
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _signalled)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    print(
        f"repro-serve listening on http://{host}:{server.port} "
        f"(store: {app.store.root}, workers: {app.orchestrator.n_workers})",
        flush=True,
    )
    logger.info(
        "listening host=%s port=%d store=%s journal=%s workers=%d",
        host, server.port, app.store.root,
        app.orchestrator.journal.path, app.orchestrator.n_workers,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.server_close()
        print("repro-serve draining in-flight jobs...", flush=True)
        logger.info("draining in-flight jobs")
        app.orchestrator.shutdown(drain=True)
        app.orchestrator.journal.close()
        print("repro-serve stopped", flush=True)
        logger.info("stopped")
    return 0
