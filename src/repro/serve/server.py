"""The daemon: a stdlib ``ThreadingHTTPServer`` carrying ServeApp.

HTTP threads only parse requests and shovel bytes — every decision
lives in :class:`~repro.serve.api.ServeApp`, and every experiment runs
on the orchestrator's worker threads, so a slow simulation never
blocks health checks or status polls.

Startup/shutdown contract (``alewife-repro serve``):

1. build the run store, the shared run cache, the executor, and the
   orchestrator; start the workers;
2. serve until SIGINT/SIGTERM;
3. graceful shutdown: stop accepting HTTP, then
   ``orchestrator.shutdown(drain=True)`` — in-flight jobs finish and
   publish, queued jobs stay queued (and dedup makes resubmission
   after a restart free for anything already materialized).
"""

from __future__ import annotations

import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.api import ServeApp
from repro.serve.executor import ExperimentExecutor
from repro.serve.orchestrator import JobOrchestrator
from repro.serve.store import RunStore

#: request body cap: job specs are small JSON documents
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # quiet by default; `serve --verbose` restores request logging
    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            sys.stderr.write(
                f"[serve] {self.address_string()} {fmt % args}\n"
            )

    def _respond(self) -> None:
        app: ServeApp = self.server.app  # type: ignore[attr-defined]
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            body, status = b'{"error": "request body too large"}\n', 413
            content_type = "application/json"
        else:
            resp = app.handle(
                self.command, self.path, self.rfile.read(length)
            )
            body, status, content_type = resp.body, resp.status, resp.content_type
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = _respond


class ServeServer(ThreadingHTTPServer):
    """HTTP shell owning the app; one daemon thread per connection."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app: ServeApp,
                 verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.app = app
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]


def build_app(
    store_dir: str | None = None,
    cache_dir: str | None = None,
    no_cache: bool = False,
    workers: int = 1,
    jobs: int = 1,
) -> ServeApp:
    """Wire store + cache + executor + orchestrator into one app
    (workers not yet started)."""
    from repro.perf.cache import RunCache

    store = RunStore(store_dir)
    cache = None if no_cache else RunCache(cache_dir)
    executor = ExperimentExecutor(cache=cache, jobs=jobs)
    orchestrator = JobOrchestrator(executor, store, workers=workers)
    return ServeApp(orchestrator, store)


def serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    store_dir: str | None = None,
    cache_dir: str | None = None,
    no_cache: bool = False,
    workers: int = 1,
    jobs: int = 1,
    verbose: bool = False,
) -> int:
    """Run the daemon until SIGINT/SIGTERM; returns an exit code."""
    app = build_app(
        store_dir=store_dir, cache_dir=cache_dir, no_cache=no_cache,
        workers=workers, jobs=jobs,
    )
    app.orchestrator.start()
    server = ServeServer((host, port), app, verbose=verbose)
    stop = threading.Event()

    def _signalled(signum, frame) -> None:
        stop.set()
        # shutdown() must come from another thread than serve_forever
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _signalled)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    print(
        f"repro-serve listening on http://{host}:{server.port} "
        f"(store: {app.store.root}, workers: {app.orchestrator.n_workers})",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.server_close()
        print("repro-serve draining in-flight jobs...", flush=True)
        app.orchestrator.shutdown(drain=True)
        print("repro-serve stopped", flush=True)
    return 0
