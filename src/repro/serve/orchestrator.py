"""The job orchestrator: priority queue, state machine, dedup, drain.

Jobs move through a strict state machine::

    queued ──────────► running ──► done
       │                  │   └──► failed
       └──► cancelled ◄───┘

* **Submission** first consults the run store: if the job's key is
  already published, the job is born ``done`` with ``dedup=True`` —
  it never touches the queue or the worker pool (the acceptance
  contract: a resubmitted sweep costs a directory read, not a
  recompute).
* **Priority**: higher ``priority`` runs first; ties run in
  submission order (a monotone sequence number keeps the heap
  deterministic and starvation-free within a priority band).
* **Cancellation** of a queued job is immediate. Cancellation of a
  running job is cooperative: the worker's ``should_cancel`` probe is
  checked by the executor between phases, and a cancel that lands too
  late to interrupt simply discards the result instead of publishing
  it (the run store never sees a cancelled run).
* **Graceful shutdown** (``shutdown(drain=True)``) stops workers from
  *starting* anything new, lets in-flight jobs run to completion and
  publish, and leaves still-queued jobs queued — the daemon's exit
  path, so a busy service never tears a half-run experiment down.

* **Durability + observability** ride one mechanism: every lifecycle
  transition is appended to the :class:`~repro.serve.journal.JobJournal`
  (when one is attached) *and* to the job's in-memory event list that
  :meth:`JobOrchestrator.stream_events` serves live to SSE clients.
  On startup :meth:`JobOrchestrator.recover` replays the journal:
  queued jobs are re-queued (priority order preserved), jobs that
  were running when the daemon died are marked interrupted, terminal
  jobs are re-registered so their ids keep answering status and
  artifact requests.

Workers are threads, not processes: one experiment's sweep points
already fan out over the shared ``repro.perf`` process pool when the
sweep is large enough, so the orchestrator only needs enough workers
to overlap small jobs with big ones. The thread-local activation
switches in :mod:`repro.perf.cache` / :mod:`repro.obs.session` /
:mod:`repro.perf.progress` keep concurrent workers' cache,
observation, and progress contexts independent.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL = frozenset({DONE, FAILED, CANCELLED})


class JobCancelled(Exception):
    """Raised inside a worker when its job's cancellation was
    requested; the job lands in ``cancelled`` and nothing is
    published."""


class OrchestratorClosed(RuntimeError):
    """Submission after :meth:`JobOrchestrator.shutdown` began."""


class Executor(Protocol):  # pragma: no cover - typing only
    def key_for(self, spec: dict) -> str: ...

    def execute(
        self, spec: dict, should_cancel: Any, **observers: Any
    ) -> tuple[dict, dict[str, bytes]]: ...


@dataclass
class Job:
    """One submission and its lifecycle.

    Two clocks per transition: ``*_at`` wall-clock epochs (humans,
    cross-host correlation) and ``*_mono`` monotonic stamps (duration
    arithmetic that survives NTP steps). ``created``/``started``/
    ``finished`` remain as wall-clock aliases for older clients."""

    id: str
    spec: dict
    key: str
    priority: int
    state: str = QUEUED
    created: float = field(default_factory=time.time)
    created_mono: float = field(default_factory=time.monotonic)
    started: float | None = None
    started_mono: float | None = None
    finished: float | None = None
    finished_mono: float | None = None
    error: str | None = None
    #: answered from the run store without dispatching any work
    dedup: bool = False
    #: correlation id carried into journal events and the Perfetto
    #: trace (host spans and sim spans land under one trace)
    trace_id: str = ""
    #: live sweep progress: done / total / cache_hits / point
    progress: dict[str, Any] | None = None
    #: recovered from a journal after a daemon restart
    recovered: bool = False
    #: append-only lifecycle event log (what stream_events serves)
    events: list = field(default_factory=list, repr=False)
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False
    )

    def __post_init__(self) -> None:
        if not self.trace_id:
            self.trace_id = self.id

    def queue_seconds(self) -> float | None:
        """Submission → start latency (monotonic; None while queued)."""
        if self.started_mono is None:
            return None
        return self.started_mono - self.created_mono

    def run_seconds(self) -> float | None:
        """Start → finish latency (monotonic; None until terminal)."""
        if self.started_mono is None or self.finished_mono is None:
            return None
        return self.finished_mono - self.started_mono

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "key": self.key,
            "spec": self.spec,
            "priority": self.priority,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "submitted_at": self.created,
            "submitted_mono": self.created_mono,
            "started_at": self.started,
            "started_mono": self.started_mono,
            "finished_at": self.finished,
            "finished_mono": self.finished_mono,
            "queue_seconds": self.queue_seconds(),
            "run_seconds": self.run_seconds(),
            "error": self.error,
            "dedup": self.dedup,
            "trace_id": self.trace_id,
            "progress": dict(self.progress) if self.progress else None,
            "recovered": self.recovered,
        }


#: queue/run latency histogram bounds (seconds)
LATENCY_BOUNDS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)


def _accepted_observers(executor: Any) -> frozenset:
    """Which optional observer kwargs (``progress``, ``job_info``)
    this executor's ``execute`` accepts — older/minimal executors with
    the plain ``(spec, should_cancel)`` signature still work."""
    import inspect

    try:
        params = inspect.signature(executor.execute).parameters
    except (TypeError, ValueError):  # builtins/C callables: assume none
        return frozenset()
    if any(p.kind is p.VAR_KEYWORD for p in params.values()):
        return frozenset({"progress", "job_info"})
    return frozenset(
        name for name in ("progress", "job_info") if name in params
    )


class JobOrchestrator:
    """Priority-ordered job execution over a run store."""

    def __init__(
        self, executor: Executor, store: Any, workers: int = 1,
        journal: Any = None,
    ) -> None:
        from repro.obs.metrics import Histogram

        self.executor = executor
        self.store = store
        self.journal = journal
        self._executor_observers = _accepted_observers(executor)
        self.n_workers = max(1, int(workers))
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, str]] = []
        self._jobs: dict[str, Job] = {}
        self._seq = itertools.count()
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self.counters = {
            "submitted": 0,
            "dedup_hits": 0,
            "executed": 0,
            "failed": 0,
            "cancelled": 0,
            "recovered": 0,
            "interrupted": 0,
        }
        #: queued→start and start→done latency distributions (observed
        #: under the lock; exposed via register_metrics / GET /metrics)
        self.queue_latency = Histogram(
            "serve.job_queue_seconds", LATENCY_BOUNDS, {}
        )
        self.run_latency = Histogram(
            "serve.job_run_seconds", LATENCY_BOUNDS, {}
        )

    # -- events --------------------------------------------------------
    def _emit(self, job: Job, event_type: str, **fields: Any) -> None:
        """Append one lifecycle event to the job's live event log and
        the journal (if attached), then wake streamers/waiters. Caller
        must hold the condition lock."""
        event = {"event": event_type, "wall": time.time(), **fields}
        job.events.append(event)
        if self.journal is not None:
            self.journal.record(event_type, job=job.id, **fields)
        self._cond.notify_all()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._threads:
                return
            self._stopping = False
            self._threads = [
                threading.Thread(
                    target=self._worker, name=f"serve-worker-{i}", daemon=True
                )
                for i in range(self.n_workers)
            ]
        for t in self._threads:
            t.start()

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the workers. ``drain=True`` lets running jobs finish
        (and publish); ``drain=False`` also requests cancellation of
        everything in flight. Queued jobs stay queued either way —
        shutdown loses no submissions, it only stops serving them."""
        with self._cond:
            self._stopping = True
            if not drain:
                for job in self._jobs.values():
                    if job.state == RUNNING:
                        job.cancel_event.set()
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout)
        with self._lock:
            self._threads = []

    # -- submission / queries ------------------------------------------
    def submit(self, spec: dict, priority: int = 0) -> Job:
        key = self.executor.key_for(spec)
        with self._cond:
            if self._stopping:
                raise OrchestratorClosed("orchestrator is shutting down")
            job = Job(
                id=uuid.uuid4().hex[:12], spec=spec, key=key,
                priority=int(priority),
            )
            self.counters["submitted"] += 1
            self._jobs[job.id] = job
            self._record_submitted(job)
            if self.store.get(key) is not None:
                # already materialized: answer from the store, never
                # touching the queue or the worker pool
                job.state = DONE
                job.dedup = True
                job.finished = job.created
                job.finished_mono = job.created_mono
                self.counters["dedup_hits"] += 1
                self._emit(job, DONE, dedup=True)
            else:
                self._enqueue(job)
            return job

    def _record_submitted(self, job: Job) -> None:
        from repro.serve.journal import spec_hash

        self._emit(
            job, "submitted", key=job.key, spec=job.spec,
            priority=job.priority, trace_id=job.trace_id,
            spec_hash=spec_hash(job.spec), dedup=job.dedup,
            recovered=job.recovered,
        )

    def _enqueue(self, job: Job) -> None:
        import heapq

        heapq.heappush(
            self._heap, (-job.priority, next(self._seq), job.id)
        )
        self._cond.notify()

    # -- restart recovery ----------------------------------------------
    def recover(self) -> dict[str, int]:
        """Replay the attached journal into this (fresh) orchestrator.

        * jobs whose last journaled state was **queued** are re-queued
          with their original priority, in original submission order
          within each priority band — a daemon restart loses no
          accepted work;
        * jobs that were **running** when the daemon died are marked
          interrupted (state ``failed``, error says so) — their specs
          are preserved, so resubmitting retries them;
        * **terminal** jobs are re-registered in their final state so
          their ids keep answering status and artifact requests.

        Returns counts per category. Call before :meth:`start`.
        """
        counts = {"requeued": 0, "interrupted": 0, "terminal": 0}
        if self.journal is None:
            return counts
        records = self.journal.reconstruct()
        self.journal.mark_daemon_start()
        with self._cond:
            for rec in records.values():
                job = Job(
                    id=rec["job"],
                    spec=rec.get("spec") or {},
                    key=rec.get("key") or "",
                    priority=int(rec.get("priority") or 0),
                    created=rec.get("submitted_wall") or time.time(),
                    trace_id=rec.get("trace_id") or rec["job"],
                    dedup=bool(rec.get("dedup")),
                    recovered=True,
                )
                job.started = rec.get("started_wall")
                job.finished = rec.get("finished_wall")
                job.progress = rec.get("progress")
                job.error = rec.get("error")
                state = rec["state"]
                if state == QUEUED:
                    job.state = QUEUED
                    self.counters["recovered"] += 1
                    self._enqueue(job)
                    counts["requeued"] += 1
                elif state == RUNNING:
                    # the daemon died mid-run: the journal has no
                    # terminal event, so the run never published
                    job.state = FAILED
                    job.error = "interrupted by daemon restart"
                    job.finished = time.time()
                    self.counters["interrupted"] += 1
                    self._emit(
                        job, "interrupted",
                        error="interrupted by daemon restart",
                    )
                    counts["interrupted"] += 1
                else:
                    job.state = state
                    counts["terminal"] += 1
                self._jobs[job.id] = job
        return counts

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job. Queued → cancelled immediately; running →
        cancellation requested (takes effect at the executor's next
        probe, or at completion by discarding the result). Terminal
        jobs are returned unchanged (cancel is idempotent)."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id!r}")
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished = time.time()
                job.finished_mono = time.monotonic()
                self.counters["cancelled"] += 1
                self._emit(job, CANCELLED)
            elif job.state == RUNNING:
                job.cancel_event.set()
            return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id!r}")
            while job.state not in TERMINAL:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(remaining)
            return job

    # -- live event streaming ------------------------------------------
    def queue_position(self, job_id: str) -> int | None:
        """1-based position of a queued job among queued jobs (heap
        order: priority desc, then submission order); None when the
        job is not queued."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != QUEUED:
                return None
            queued = sorted(
                (
                    (-j.priority, j.created_mono, j.id)
                    for j in self._jobs.values()
                    if j.state == QUEUED
                ),
            )
            for pos, (_, _, jid) in enumerate(queued, start=1):
                if jid == job_id:
                    return pos
            return None  # pragma: no cover - state raced terminal

    def stream_events(
        self, job_id: str, poll: float = 0.5,
        timeout: float | None = None, heartbeat: float = 10.0,
    ) -> Iterator[dict[str, Any]]:
        """Yield the job's lifecycle events live, in order.

        First yields a ``snapshot`` event (current job state + queue
        position), then every event already logged, then new events as
        they land; ends once the job is terminal (after yielding its
        terminal event) or ``timeout`` seconds pass. ``poll`` bounds
        how long a waiter sleeps between condition checks — streamers
        are woken eagerly by ``_emit``, the poll is only a backstop.
        A ``heartbeat`` event is injected when nothing has been
        yielded for that many seconds (a deep-queued job would
        otherwise starve SSE clients into read timeouts).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id!r}")
        yield {
            "event": "snapshot",
            "wall": time.time(),
            "job": job.as_dict(),
            "queue_position": self.queue_position(job_id),
        }
        cursor = 0
        last_yield = time.monotonic()
        while True:
            with self._cond:
                events = list(job.events[cursor:])
                cursor += len(events)
                terminal = job.state in TERMINAL
                if not events and not terminal:
                    remaining = poll
                    if deadline is not None:
                        remaining = min(poll, deadline - time.monotonic())
                        if remaining <= 0:
                            return
                    self._cond.wait(remaining)
            if not events and not terminal:
                if time.monotonic() - last_yield >= heartbeat:
                    last_yield = time.monotonic()
                    yield {
                        "event": "heartbeat",
                        "wall": time.time(),
                        "queue_position": self.queue_position(job_id),
                    }
                continue
            for event in events:
                yield event
            last_yield = time.monotonic()
            if terminal:
                return

    # -- introspection (the serve.* metrics read these) ----------------
    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == QUEUED)

    def jobs_by_state(self) -> dict[str, int]:
        """Job counts per state; every state key is present (all zero
        when no job was ever submitted)."""
        with self._lock:
            counts = dict.fromkeys(STATES, 0)
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def dedup_hit_ratio(self) -> float:
        """Dedup hits / submissions; 0.0 (not NaN/ZeroDivisionError)
        when nothing was ever submitted."""
        with self._lock:
            submitted = self.counters["submitted"]
            if not submitted:
                return 0.0
            return self.counters["dedup_hits"] / submitted

    def register_metrics(self, registry: Any) -> None:
        """Register the orchestrator's instruments on a
        :class:`~repro.obs.metrics.MetricsRegistry` — the single
        definition both ``GET /v1/metrics`` (snapshot JSON) and
        ``GET /metrics`` (Prometheus text) collect from."""
        registry.gauge("serve.queue_depth", self.queue_depth)
        for state in STATES:
            registry.gauge(
                "serve.jobs",
                lambda s=state: self.jobs_by_state()[s],
                state=state,
            )
        for name in self.counters:
            registry.counter(
                f"serve.{name}", lambda n=name: self.counters[n]
            )
        registry.gauge("serve.dedup_hit_ratio", self.dedup_hit_ratio)
        registry.attach(self.queue_latency)
        registry.attach(self.run_latency)

    # -- the worker loop -----------------------------------------------
    def _next_job(self) -> Job | None:
        """Pop the highest-priority queued job; None = stop. Holds the
        condition while waiting."""
        import heapq

        with self._cond:
            while True:
                if self._stopping:
                    # never *start* work while stopping — queued jobs
                    # stay queued for a future restart
                    return None
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    job = self._jobs[job_id]
                    if job.state == QUEUED:  # skip lazily-cancelled entries
                        job.state = RUNNING
                        job.started = time.time()
                        job.started_mono = time.monotonic()
                        self.queue_latency.observe(job.queue_seconds() or 0.0)
                        self._emit(job, "started")
                        return job
                if self._stopping:
                    return None
                self._cond.wait()

    def _finish(self, job: Job, state: str, error: str | None = None) -> None:
        with self._cond:
            job.state = state
            job.error = error
            job.finished = time.time()
            job.finished_mono = time.monotonic()
            counter = {DONE: "executed", FAILED: "failed", CANCELLED: "cancelled"}
            self.counters[counter[state]] += 1
            run_seconds = job.run_seconds()
            if run_seconds is not None:
                self.run_latency.observe(run_seconds)
            self._emit(job, state, **({"error": error} if error else {}))

    def _note_progress(self, job: Job, update: dict[str, Any]) -> None:
        """Executor-side progress callback target: update the job's
        live progress and fan the event out to streamers/journal."""
        with self._cond:
            job.progress = dict(update)
            self._emit(job, "progress", **update)

    def _worker(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            try:
                if job.cancel_event.is_set():
                    raise JobCancelled()
                observers: dict[str, Any] = {}
                if "progress" in self._executor_observers:
                    observers["progress"] = (
                        lambda update, job=job: self._note_progress(
                            job, update
                        )
                    )
                if "job_info" in self._executor_observers:
                    observers["job_info"] = {
                        "trace_id": job.trace_id,
                        "job_id": job.id,
                        "submitted_wall": job.created,
                        "submitted_mono": job.created_mono,
                        "started_mono": job.started_mono,
                    }
                meta, artifacts = self.executor.execute(
                    job.spec,
                    should_cancel=job.cancel_event.is_set,
                    **observers,
                )
                if job.cancel_event.is_set():
                    # cancelled too late to interrupt: discard, never
                    # publish a run the client asked to kill
                    raise JobCancelled()
                self.store.publish(job.key, meta, artifacts)
            except JobCancelled:
                self._finish(job, CANCELLED)
            except Exception:
                self._finish(job, FAILED, error=traceback.format_exc(limit=8))
            else:
                self._finish(job, DONE)
