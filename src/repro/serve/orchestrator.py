"""The job orchestrator: priority queue, state machine, dedup, drain.

Jobs move through a strict state machine::

    queued ──────────► running ──► done
       │                  │   └──► failed
       └──► cancelled ◄───┘

* **Submission** first consults the run store: if the job's key is
  already published, the job is born ``done`` with ``dedup=True`` —
  it never touches the queue or the worker pool (the acceptance
  contract: a resubmitted sweep costs a directory read, not a
  recompute).
* **Priority**: higher ``priority`` runs first; ties run in
  submission order (a monotone sequence number keeps the heap
  deterministic and starvation-free within a priority band).
* **Cancellation** of a queued job is immediate. Cancellation of a
  running job is cooperative: the worker's ``should_cancel`` probe is
  checked by the executor between phases, and a cancel that lands too
  late to interrupt simply discards the result instead of publishing
  it (the run store never sees a cancelled run).
* **Graceful shutdown** (``shutdown(drain=True)``) stops workers from
  *starting* anything new, lets in-flight jobs run to completion and
  publish, and leaves still-queued jobs queued — the daemon's exit
  path, so a busy service never tears a half-run experiment down.

Workers are threads, not processes: one experiment's sweep points
already fan out over the shared ``repro.perf`` process pool when the
sweep is large enough, so the orchestrator only needs enough workers
to overlap small jobs with big ones. The thread-local activation
switches in :mod:`repro.perf.cache` / :mod:`repro.obs.session` keep
concurrent workers' cache and observation contexts independent.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Any, Protocol

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL = frozenset({DONE, FAILED, CANCELLED})


class JobCancelled(Exception):
    """Raised inside a worker when its job's cancellation was
    requested; the job lands in ``cancelled`` and nothing is
    published."""


class OrchestratorClosed(RuntimeError):
    """Submission after :meth:`JobOrchestrator.shutdown` began."""


class Executor(Protocol):  # pragma: no cover - typing only
    def key_for(self, spec: dict) -> str: ...

    def execute(
        self, spec: dict, should_cancel: Any
    ) -> tuple[dict, dict[str, bytes]]: ...


@dataclass
class Job:
    """One submission and its lifecycle."""

    id: str
    spec: dict
    key: str
    priority: int
    state: str = QUEUED
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    #: answered from the run store without dispatching any work
    dedup: bool = False
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False
    )

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "key": self.key,
            "spec": self.spec,
            "priority": self.priority,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "dedup": self.dedup,
        }


class JobOrchestrator:
    """Priority-ordered job execution over a run store."""

    def __init__(
        self, executor: Executor, store: Any, workers: int = 1
    ) -> None:
        self.executor = executor
        self.store = store
        self.n_workers = max(1, int(workers))
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, str]] = []
        self._jobs: dict[str, Job] = {}
        self._seq = itertools.count()
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self.counters = {
            "submitted": 0,
            "dedup_hits": 0,
            "executed": 0,
            "failed": 0,
            "cancelled": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._threads:
                return
            self._stopping = False
            self._threads = [
                threading.Thread(
                    target=self._worker, name=f"serve-worker-{i}", daemon=True
                )
                for i in range(self.n_workers)
            ]
        for t in self._threads:
            t.start()

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the workers. ``drain=True`` lets running jobs finish
        (and publish); ``drain=False`` also requests cancellation of
        everything in flight. Queued jobs stay queued either way —
        shutdown loses no submissions, it only stops serving them."""
        with self._cond:
            self._stopping = True
            if not drain:
                for job in self._jobs.values():
                    if job.state == RUNNING:
                        job.cancel_event.set()
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout)
        with self._lock:
            self._threads = []

    # -- submission / queries ------------------------------------------
    def submit(self, spec: dict, priority: int = 0) -> Job:
        key = self.executor.key_for(spec)
        with self._cond:
            if self._stopping:
                raise OrchestratorClosed("orchestrator is shutting down")
            job = Job(
                id=uuid.uuid4().hex[:12], spec=spec, key=key,
                priority=int(priority),
            )
            self.counters["submitted"] += 1
            if self.store.get(key) is not None:
                # already materialized: answer from the store, never
                # touching the queue or the worker pool
                job.state = DONE
                job.dedup = True
                job.finished = job.created
                self.counters["dedup_hits"] += 1
            else:
                import heapq

                heapq.heappush(
                    self._heap, (-job.priority, next(self._seq), job.id)
                )
                self._cond.notify()
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job. Queued → cancelled immediately; running →
        cancellation requested (takes effect at the executor's next
        probe, or at completion by discarding the result). Terminal
        jobs are returned unchanged (cancel is idempotent)."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id!r}")
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished = time.time()
                self.counters["cancelled"] += 1
                self._cond.notify_all()
            elif job.state == RUNNING:
                job.cancel_event.set()
            return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id!r}")
            while job.state not in TERMINAL:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(remaining)
            return job

    # -- introspection (the serve.* metrics read these) ----------------
    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == QUEUED)

    def jobs_by_state(self) -> dict[str, int]:
        with self._lock:
            counts = dict.fromkeys(STATES, 0)
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def dedup_hit_ratio(self) -> float:
        with self._lock:
            submitted = self.counters["submitted"]
            if not submitted:
                return 0.0
            return self.counters["dedup_hits"] / submitted

    # -- the worker loop -----------------------------------------------
    def _next_job(self) -> Job | None:
        """Pop the highest-priority queued job; None = stop. Holds the
        condition while waiting."""
        import heapq

        with self._cond:
            while True:
                if self._stopping:
                    # never *start* work while stopping — queued jobs
                    # stay queued for a future restart
                    return None
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    job = self._jobs[job_id]
                    if job.state == QUEUED:  # skip lazily-cancelled entries
                        job.state = RUNNING
                        job.started = time.time()
                        return job
                if self._stopping:
                    return None
                self._cond.wait()

    def _finish(self, job: Job, state: str, error: str | None = None) -> None:
        with self._cond:
            job.state = state
            job.error = error
            job.finished = time.time()
            counter = {DONE: "executed", FAILED: "failed", CANCELLED: "cancelled"}
            self.counters[counter[state]] += 1
            self._cond.notify_all()

    def _worker(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            try:
                if job.cancel_event.is_set():
                    raise JobCancelled()
                meta, artifacts = self.executor.execute(
                    job.spec, should_cancel=job.cancel_event.is_set
                )
                if job.cancel_event.is_set():
                    # cancelled too late to interrupt: discard, never
                    # publish a run the client asked to kill
                    raise JobCancelled()
                self.store.publish(job.key, meta, artifacts)
            except JobCancelled:
                self._finish(job, CANCELLED)
            except Exception:
                self._finish(job, FAILED, error=traceback.format_exc(limit=8))
            else:
                self._finish(job, DONE)
