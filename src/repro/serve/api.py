"""REST routes and handlers, independent of the HTTP plumbing.

:class:`ServeApp` owns the orchestrator, store, and executor, and maps
``(method, path)`` onto handlers returning plain responses — the
``ThreadingHTTPServer`` handler in :mod:`repro.serve.server` is a thin
byte-shoveling shell around :meth:`ServeApp.handle`, and the tests
drive the routes directly.

Routes::

    GET  /healthz                      liveness + version + fingerprint
    GET  /metrics                      Prometheus text exposition
    GET  /v1/metrics                   serve.* metrics snapshot (JSON)
    GET  /v1/jobs                      all jobs (newest last)
    POST /v1/jobs                      submit {"spec": {...}, "priority": N}
    GET  /v1/jobs/<id>                 one job
    GET  /v1/jobs/<id>/events          SSE live lifecycle/progress stream
    POST /v1/jobs/<id>/cancel          cancel (idempotent)
    GET  /v1/jobs/<id>/artifacts       artifact names of a done job
    GET  /v1/jobs/<id>/artifacts/<n>   raw artifact bytes

The ``serve.*`` metrics ride the same
:class:`~repro.obs.metrics.MetricsRegistry` machinery the simulator
uses — queue depth, jobs by state, submission/dedup counters, the
dedup hit ratio, queue/run latency histograms, store size, and the
shared run cache's counters — registered once
(:meth:`_registry`) and rendered two ways: the JSON snapshot at
``/v1/metrics`` and Prometheus exposition text at ``/metrics``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterator

from repro import __version__
from repro.serve.orchestrator import (  # noqa: F401 (STATES re-export)
    STATES,
    JobOrchestrator,
    OrchestratorClosed,
)
from repro.serve.store import ARTIFACT_TYPES, RunStore

JSON_TYPE = "application/json"
SSE_TYPE = "text/event-stream; charset=utf-8"


class Response:
    """One HTTP response: status, body bytes, content type — or, when
    ``stream`` is set, an iterator of body chunks the server sends
    with chunked transfer encoding (the SSE endpoint)."""

    def __init__(
        self, status: int, body: Any, content_type: str = JSON_TYPE,
        stream: Iterator[bytes] | None = None,
    ) -> None:
        self.status = status
        self.content_type = content_type
        self.stream = stream
        if stream is not None:
            self.body = b""
        elif isinstance(body, bytes):
            self.body = body
        else:
            self.body = json.dumps(body, indent=1, default=str).encode() + b"\n"

    def json(self) -> Any:
        """Decode the body (test convenience)."""
        return json.loads(self.body)


def _error(status: int, message: str) -> Response:
    return Response(status, {"error": message})


class ServeApp:
    """The service behind the REST surface."""

    def __init__(
        self,
        orchestrator: JobOrchestrator,
        store: RunStore,
    ) -> None:
        self.orchestrator = orchestrator
        self.store = store
        self.started = time.time()

    # -- handlers ------------------------------------------------------
    def healthz(self) -> Response:
        from repro.perf.cache import repo_fingerprint

        return Response(200, {
            "status": "ok",
            "version": __version__,
            "code_fingerprint": repo_fingerprint(),
            "uptime_seconds": round(time.time() - self.started, 3),
            "queue_depth": self.orchestrator.queue_depth(),
            "jobs": self.orchestrator.jobs_by_state(),
            "counters": dict(self.orchestrator.counters),
        })

    def _registry(self):
        """The service metrics registry: orchestrator instruments
        (queue depth, jobs by state, counters, dedup hit ratio,
        latency histograms), store gauges, and run-cache counters —
        built fresh per scrape so every read is current."""
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        self.orchestrator.register_metrics(reg)
        reg.gauge("serve.store_runs", self.store.count)
        reg.gauge("serve.store_bytes", self.store.total_bytes)
        cache = getattr(self.orchestrator.executor, "cache", None)
        if cache is not None:
            for field in cache.stats.snapshot():
                reg.counter(
                    f"serve.cache.{field}",
                    lambda f=field, c=cache: c.stats.snapshot()[f],
                )
        from repro.fuzz.campaign import register_metrics as fuzz_metrics

        fuzz_metrics(reg)
        return reg

    def metrics(self) -> Response:
        return Response(200, self._registry().collect().as_dict())

    def metrics_prometheus(self) -> Response:
        from repro.obs.promexport import CONTENT_TYPE, render_prometheus

        text = render_prometheus(self._registry().collect())
        return Response(200, text.encode(), CONTENT_TYPE)

    def job_events(self, job_id: str, timeout: float | None = None) -> Response:
        """SSE stream of one job's lifecycle: a snapshot (including
        queue position while queued), then every event — started,
        per-sweep-point progress, terminal — as it lands."""
        orch = self.orchestrator
        with orch._lock:
            if orch.get(job_id) is None:
                return _error(404, f"no job {job_id!r}")

        def sse() -> Iterator[bytes]:
            for event in orch.stream_events(job_id, timeout=timeout):
                payload = json.dumps(event, default=str)
                yield (
                    f"event: {event.get('event', 'message')}\n"
                    f"data: {payload}\n\n"
                ).encode()

        return Response(200, b"", SSE_TYPE, stream=sse())

    def submit(self, body: dict) -> Response:
        if not isinstance(body, dict):
            return _error(400, "request body must be a JSON object")
        spec = body.get("spec")
        priority = body.get("priority", 0)
        if not isinstance(priority, int):
            return _error(400, "'priority' must be an integer")
        try:
            job = self.orchestrator.submit(spec, priority=priority)
        except ValueError as exc:
            return _error(400, str(exc))
        except OrchestratorClosed as exc:
            return _error(503, str(exc))
        return Response(202 if not job.dedup else 200, job.as_dict())

    def list_jobs(self) -> Response:
        return Response(
            200, {"jobs": [j.as_dict() for j in self.orchestrator.jobs()]}
        )

    def job_status(self, job_id: str) -> Response:
        job = self.orchestrator.get(job_id)
        if job is None:
            return _error(404, f"no job {job_id!r}")
        return Response(200, job.as_dict())

    def cancel(self, job_id: str) -> Response:
        try:
            job = self.orchestrator.cancel(job_id)
        except KeyError as exc:
            return _error(404, str(exc))
        return Response(200, job.as_dict())

    def artifacts(self, job_id: str) -> Response:
        job = self.orchestrator.get(job_id)
        if job is None:
            return _error(404, f"no job {job_id!r}")
        entry = self.store.get(job.key)
        if entry is None:
            return _error(
                409, f"job {job_id!r} is {job.state}; no artifacts published"
            )
        return Response(200, {
            "job": job.id,
            "key": job.key,
            "artifacts": entry["artifacts"],
            "meta": {k: v for k, v in entry.items() if k != "artifacts"},
        })

    def artifact(self, job_id: str, name: str) -> Response:
        job = self.orchestrator.get(job_id)
        if job is None:
            return _error(404, f"no job {job_id!r}")
        path = self.store.artifact_path(job.key, name)
        if path is None:
            return _error(404, f"job {job_id!r} has no artifact {name!r}")
        return Response(
            200,
            path.read_bytes(),
            ARTIFACT_TYPES.get(name, "application/octet-stream"),
        )

    # -- routing -------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        """Dispatch one request; never raises (500 on handler bugs)."""
        try:
            return self._route(method, path, body)
        except Exception as exc:  # the daemon must outlive a bad request
            return _error(500, f"{type(exc).__name__}: {exc}")

    def _route(self, method: str, path: str, body: bytes) -> Response:
        from urllib.parse import parse_qs, urlsplit

        split = urlsplit(path)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        parts = [p for p in split.path.split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            return self.healthz()
        if method == "GET" and parts == ["metrics"]:
            return self.metrics_prometheus()
        if method == "GET" and parts == ["v1", "metrics"]:
            return self.metrics()
        if parts[:2] == ["v1", "jobs"]:
            rest = parts[2:]
            if method == "POST" and not rest:
                try:
                    payload = json.loads(body or b"{}")
                except ValueError:
                    return _error(400, "request body is not valid JSON")
                return self.submit(payload)
            if method == "GET" and not rest:
                return self.list_jobs()
            if method == "GET" and len(rest) == 1:
                return self.job_status(rest[0])
            if method == "GET" and len(rest) == 2 and rest[1] == "events":
                timeout = None
                if "timeout" in query:
                    try:
                        timeout = float(query["timeout"])
                    except ValueError:
                        return _error(400, "'timeout' must be a number")
                return self.job_events(rest[0], timeout=timeout)
            if method == "POST" and len(rest) == 2 and rest[1] == "cancel":
                return self.cancel(rest[0])
            if method == "GET" and len(rest) == 2 and rest[1] == "artifacts":
                return self.artifacts(rest[0])
            if method == "GET" and len(rest) == 3 and rest[1] == "artifacts":
                return self.artifact(rest[0], rest[2])
        return _error(404, f"no route {method} {path}")
