"""REST routes and handlers, independent of the HTTP plumbing.

:class:`ServeApp` owns the orchestrator, store, and executor, and maps
``(method, path)`` onto handlers returning plain responses — the
``ThreadingHTTPServer`` handler in :mod:`repro.serve.server` is a thin
byte-shoveling shell around :meth:`ServeApp.handle`, and the tests
drive the routes directly.

Routes::

    GET  /healthz                      liveness + version + fingerprint
    GET  /v1/metrics                   serve.* metrics snapshot
    GET  /v1/jobs                      all jobs (newest last)
    POST /v1/jobs                      submit {"spec": {...}, "priority": N}
    GET  /v1/jobs/<id>                 one job
    POST /v1/jobs/<id>/cancel          cancel (idempotent)
    GET  /v1/jobs/<id>/artifacts       artifact names of a done job
    GET  /v1/jobs/<id>/artifacts/<n>   raw artifact bytes

The ``serve.*`` metrics ride the same
:class:`~repro.obs.metrics.MetricsRegistry` machinery the simulator
uses — queue depth, jobs by state, submission/dedup counters, the
dedup hit ratio, and the shared run cache's counters — so one
snapshot format covers machine and service observability alike.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro import __version__
from repro.serve.orchestrator import STATES, JobOrchestrator, OrchestratorClosed
from repro.serve.store import ARTIFACT_TYPES, RunStore

JSON_TYPE = "application/json"


class Response:
    """One HTTP response: status, body bytes, content type."""

    def __init__(
        self, status: int, body: Any, content_type: str = JSON_TYPE
    ) -> None:
        self.status = status
        self.content_type = content_type
        if isinstance(body, bytes):
            self.body = body
        else:
            self.body = json.dumps(body, indent=1, default=str).encode() + b"\n"

    def json(self) -> Any:
        """Decode the body (test convenience)."""
        return json.loads(self.body)


def _error(status: int, message: str) -> Response:
    return Response(status, {"error": message})


class ServeApp:
    """The service behind the REST surface."""

    def __init__(
        self,
        orchestrator: JobOrchestrator,
        store: RunStore,
    ) -> None:
        self.orchestrator = orchestrator
        self.store = store
        self.started = time.time()

    # -- handlers ------------------------------------------------------
    def healthz(self) -> Response:
        from repro.perf.cache import repo_fingerprint

        return Response(200, {
            "status": "ok",
            "version": __version__,
            "code_fingerprint": repo_fingerprint(),
            "uptime_seconds": round(time.time() - self.started, 3),
            "queue_depth": self.orchestrator.queue_depth(),
            "jobs": self.orchestrator.jobs_by_state(),
            "counters": dict(self.orchestrator.counters),
        })

    def metrics(self) -> Response:
        from repro.obs.metrics import MetricsRegistry

        orch = self.orchestrator
        reg = MetricsRegistry()
        reg.gauge("serve.queue_depth", orch.queue_depth)
        counts = orch.jobs_by_state()
        for state in STATES:
            reg.gauge("serve.jobs", lambda s=state: counts[s], state=state)
        for name, value in orch.counters.items():
            reg.counter(f"serve.{name}", lambda v=value: v)
        reg.gauge("serve.dedup_hit_ratio", orch.dedup_hit_ratio)
        reg.gauge("serve.store_runs", self.store.count)
        cache = getattr(orch.executor, "cache", None)
        if cache is not None:
            for field, value in cache.stats.snapshot().items():
                reg.counter(f"serve.cache.{field}", lambda v=value: v)
        return Response(200, reg.collect().as_dict())

    def submit(self, body: dict) -> Response:
        if not isinstance(body, dict):
            return _error(400, "request body must be a JSON object")
        spec = body.get("spec")
        priority = body.get("priority", 0)
        if not isinstance(priority, int):
            return _error(400, "'priority' must be an integer")
        try:
            job = self.orchestrator.submit(spec, priority=priority)
        except ValueError as exc:
            return _error(400, str(exc))
        except OrchestratorClosed as exc:
            return _error(503, str(exc))
        return Response(202 if not job.dedup else 200, job.as_dict())

    def list_jobs(self) -> Response:
        return Response(
            200, {"jobs": [j.as_dict() for j in self.orchestrator.jobs()]}
        )

    def job_status(self, job_id: str) -> Response:
        job = self.orchestrator.get(job_id)
        if job is None:
            return _error(404, f"no job {job_id!r}")
        return Response(200, job.as_dict())

    def cancel(self, job_id: str) -> Response:
        try:
            job = self.orchestrator.cancel(job_id)
        except KeyError as exc:
            return _error(404, str(exc))
        return Response(200, job.as_dict())

    def artifacts(self, job_id: str) -> Response:
        job = self.orchestrator.get(job_id)
        if job is None:
            return _error(404, f"no job {job_id!r}")
        entry = self.store.get(job.key)
        if entry is None:
            return _error(
                409, f"job {job_id!r} is {job.state}; no artifacts published"
            )
        return Response(200, {
            "job": job.id,
            "key": job.key,
            "artifacts": entry["artifacts"],
            "meta": {k: v for k, v in entry.items() if k != "artifacts"},
        })

    def artifact(self, job_id: str, name: str) -> Response:
        job = self.orchestrator.get(job_id)
        if job is None:
            return _error(404, f"no job {job_id!r}")
        path = self.store.artifact_path(job.key, name)
        if path is None:
            return _error(404, f"job {job_id!r} has no artifact {name!r}")
        return Response(
            200,
            path.read_bytes(),
            ARTIFACT_TYPES.get(name, "application/octet-stream"),
        )

    # -- routing -------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        """Dispatch one request; never raises (500 on handler bugs)."""
        try:
            return self._route(method, path, body)
        except Exception as exc:  # the daemon must outlive a bad request
            return _error(500, f"{type(exc).__name__}: {exc}")

    def _route(self, method: str, path: str, body: bytes) -> Response:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            return self.healthz()
        if method == "GET" and parts == ["v1", "metrics"]:
            return self.metrics()
        if parts[:2] == ["v1", "jobs"]:
            rest = parts[2:]
            if method == "POST" and not rest:
                try:
                    payload = json.loads(body or b"{}")
                except ValueError:
                    return _error(400, "request body is not valid JSON")
                return self.submit(payload)
            if method == "GET" and not rest:
                return self.list_jobs()
            if method == "GET" and len(rest) == 1:
                return self.job_status(rest[0])
            if method == "POST" and len(rest) == 2 and rest[1] == "cancel":
                return self.cancel(rest[0])
            if method == "GET" and len(rest) == 2 and rest[1] == "artifacts":
                return self.artifacts(rest[0])
            if method == "GET" and len(rest) == 3 and rest[1] == "artifacts":
                return self.artifact(rest[0], rest[2])
        return _error(404, f"no route {method} {path}")
