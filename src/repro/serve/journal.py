"""The job event journal: append-only JSONL, observability artifact
and durability mechanism in one.

Every job lifecycle transition the orchestrator makes is appended as
one JSON line *before* the daemon acts on it being durable:

    {"t": "submitted", "wall": ..., "mono": ..., "job": "ab12...",
     "key": "...", "spec": {...}, "priority": 0, "spec_hash": "...",
     "trace_id": "..."}
    {"t": "started",  "wall": ..., "mono": ..., "job": "ab12..."}
    {"t": "progress", "wall": ..., "mono": ..., "job": "ab12...",
     "done": 3, "total": 8, "cache_hits": 1, "point": "fig8[3]"}
    {"t": "done" | "failed" | "cancelled" | "interrupted", ...}

plus a ``daemon_start`` boundary marker per process so restarts are
visible in the record. Two clocks ride every event: ``wall``
(``time.time``, for humans and cross-host correlation) and ``mono``
(``time.monotonic``, for durations that survive NTP steps). Within
one daemon process the two share an epoch pair, so queue/run latency
is exact; across restarts only ``wall`` is comparable.

**Replay** (:meth:`JobJournal.reconstruct`) folds the event stream
into the last-known state of every job, which is how the orchestrator
survives a restart: jobs whose final event leaves them ``queued`` are
re-queued (original priority, original submission order within a
priority band), jobs that were ``running`` when the daemon died are
marked ``interrupted`` (state ``failed``, the spec preserved so a
resubmission retries), and terminal jobs are re-registered so their
ids — and their run-store keys — keep answering ``GET /v1/jobs/<id>``
and artifact fetches after the restart.

The journal is the source of truth for "what happened": a job's full
lifecycle (submit → queue → per-sweep-point progress → done) is
reconstructable from this file alone, with no daemon running.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterator

JOURNAL_NAME = "journal.jsonl"

#: journal line schema version (bump on incompatible event changes)
JOURNAL_SCHEMA = 1

#: event types that mark a job terminal in replay
TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled", "interrupted"})


def spec_hash(spec: Any) -> str:
    """A stable short hash of a job spec (sorted-key JSON), carried on
    every ``submitted`` event so journals can be grepped by workload
    without parsing specs."""
    blob = json.dumps(spec, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class JobJournal:
    """Append-only JSONL journal of job lifecycle events.

    Thread-safe: orchestrator workers and the submit path append
    concurrently under one lock, each event flushed as a complete
    line, so a reader (``alewife-repro tail``, ``tail -f``) never sees
    a torn record and a crash loses at most the line being written.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh: io.TextIOWrapper | None = None

    # -- write ---------------------------------------------------------
    def _handle(self) -> io.TextIOWrapper:
        if self._fh is None or self._fh.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def record(self, event_type: str, **fields: Any) -> dict[str, Any]:
        """Append one event (stamped with wall + monotonic clocks);
        returns the event as written."""
        event = {
            "t": event_type,
            "wall": time.time(),
            "mono": time.monotonic(),
            **fields,
        }
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            fh = self._handle()
            fh.write(line + "\n")
            fh.flush()
        return event

    def mark_daemon_start(self) -> dict[str, Any]:
        """The per-process boundary marker (schema, pid)."""
        return self.record(
            "daemon_start", schema=JOURNAL_SCHEMA, pid=os.getpid()
        )

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.close()

    # -- read ----------------------------------------------------------
    def replay(self) -> Iterator[dict[str, Any]]:
        """Yield every decodable event in append order. A torn final
        line (crash mid-write) is skipped, not fatal."""
        if not self.path.is_file():
            return
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn/corrupt line: skip
                if isinstance(event, dict) and "t" in event:
                    yield event

    def reconstruct(self) -> dict[str, dict[str, Any]]:
        """Fold the journal into per-job last-known state.

        Returns ``{job_id: record}`` in first-submission order, where
        each record carries ``state`` (a journal event type:
        ``submitted``/``started``/``progress`` collapse to the
        lifecycle position; terminal events stick), the submission
        fields (``spec``, ``key``, ``priority``, ``trace_id``), the
        event timestamps, and the last ``progress`` payload seen.
        """
        jobs: dict[str, dict[str, Any]] = {}
        for event in self.replay():
            job_id = event.get("job")
            if job_id is None:
                continue  # daemon_start and other markers
            t = event["t"]
            if t == "submitted":
                jobs[job_id] = {
                    "job": job_id,
                    "state": "queued",
                    "spec": event.get("spec"),
                    "key": event.get("key"),
                    "priority": event.get("priority", 0),
                    "trace_id": event.get("trace_id", job_id),
                    "dedup": bool(event.get("dedup")),
                    "submitted_wall": event["wall"],
                    "submitted_mono": event["mono"],
                    "progress": None,
                    "error": None,
                }
                continue
            rec = jobs.get(job_id)
            if rec is None:
                continue  # event for a job submitted before this file
            if t == "started":
                rec["state"] = "running"
                rec["started_wall"] = event["wall"]
                rec["started_mono"] = event["mono"]
            elif t == "progress":
                rec["progress"] = {
                    k: event[k]
                    for k in ("done", "total", "cache_hits", "point")
                    if k in event
                }
            elif t in TERMINAL_EVENTS:
                rec["state"] = "failed" if t == "interrupted" else t
                rec["finished_wall"] = event["wall"]
                rec["finished_mono"] = event["mono"]
                rec["error"] = event.get("error")
                if t == "interrupted":
                    rec["interrupted"] = True
        return jobs


def default_journal_path(store_root: str | Path) -> Path:
    """The journal's home: alongside the run store it describes."""
    return Path(store_root) / JOURNAL_NAME
