"""Machine configuration: every timing knob in one validated place.

Defaults are calibrated against the absolute numbers the paper quotes
(33 MHz clock, 5-cycle message-handler entry, copy bandwidths of
Fig. 7, barrier latencies of §4.2); see DESIGN.md "calibration
anchors" and ``tests/test_calibration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.coherence import CoherenceParams


@dataclass
class NetworkParams:
    """Interconnect timing and topology."""

    hop_latency: int = 2
    bandwidth_bytes_per_cycle: float = 4.0
    local_loopback_latency: int = 2
    injection_latency: int = 1
    #: "mesh" (Alewife's 2-D mesh) or "torus" (wraparound links)
    topology: str = "mesh"

    def __post_init__(self) -> None:
        if self.topology not in ("mesh", "torus"):
            raise ValueError(
                f"topology must be 'mesh' or 'torus', got {self.topology!r}"
            )


@dataclass
class CmmuParams:
    """Network-coprocessor (CMMU) message-interface timing."""

    #: fixed descriptor setup before per-word register writes
    describe_base: int = 2
    #: one coprocessor register write per explicit operand (cached-write speed)
    describe_per_operand: int = 1
    #: writing one address-length pair
    describe_per_block: int = 2
    #: the atomic launch instruction
    launch_cycles: int = 1
    #: paper §3: "It takes 5 cycles to get into the message handler"
    interrupt_entry: int = 5
    #: returning from the handler / dispatching deferred work
    interrupt_exit: int = 3
    #: reading one word of the 16-word receive window
    window_read: int = 1
    #: issuing a storeback instruction
    storeback_cycles: int = 2
    #: DMA streaming rate; 2 cycles/word = 2 bytes/cycle, which sets the
    #: large-block bulk-transfer bandwidth (~55 MB/s at 33 MHz, Fig. 7)
    dma_cycles_per_word: int = 2
    #: flushing one dirty cache line around a DMA transfer
    dma_flush_per_line: int = 2
    #: tail latency for the destination DMA drain after the last flit
    dma_drain_tail: int = 8
    #: message header words (destination + type)
    header_words: int = 2
    #: receive-window size in words (paper: 16-word sliding window)
    window_words: int = 16

    def describe_cost(self, n_operands: int, n_blocks: int) -> int:
        return (
            self.describe_base
            + n_operands * self.describe_per_operand
            + n_blocks * self.describe_per_block
        )


@dataclass
class ProcessorParams:
    """Per-effect base costs for the (Sparcle-like) processor."""

    #: ALU-ish work charged per Compute(1)
    compute_unit: int = 1
    #: atomic fetch-and-op adds this on top of the store timing
    atomic_extra: int = 2
    #: thread switch performed by the runtime scheduler
    context_switch: int = 10
    #: Sparcle hardware contexts: with >1, a thread that takes a cache
    #: miss is switched out (in ``miss_switch_cost`` cycles — Sparcle's
    #: 14-cycle fast switch) and the processor runs other ready work
    #: while the miss is outstanding. 1 = block on misses (default,
    #: matching the paper's experiments, which predate multithreaded
    #: operation of the prototype).
    hw_contexts: int = 1
    miss_switch_cost: int = 14
    #: weak ordering: stores retire asynchronously through a buffer of
    #: this depth; 0 (default) = sequentially-consistent blocking
    #: stores, as the paper's experiments assume. Racing programs must
    #: Fence before publishing flags when this is enabled.
    store_buffer_depth: int = 0
    #: processor-visible cost of issuing a buffered store
    store_issue_cost: int = 2

    def __post_init__(self) -> None:
        if self.hw_contexts < 1:
            raise ValueError(f"hw_contexts must be >= 1, got {self.hw_contexts}")
        if self.store_buffer_depth < 0:
            raise ValueError(
                f"store_buffer_depth must be >= 0, got {self.store_buffer_depth}"
            )


@dataclass
class MachineConfig:
    """Full Alewife machine description."""

    n_nodes: int = 64
    clock_mhz: float = 33.0
    line_size: int = 16
    cache_lines: int = 4096  # 64 KB / 16 B
    dir_hw_pointers: int = 5
    network: NetworkParams = field(default_factory=NetworkParams)
    coherence: CoherenceParams = field(default_factory=CoherenceParams)
    cmmu: CmmuParams = field(default_factory=CmmuParams)
    processor: ProcessorParams = field(default_factory=ProcessorParams)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.cache_lines <= 0:
            raise ValueError("cache_lines must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    # ------------------------------------------------------------------
    def cycles_to_usec(self, cycles: float) -> float:
        return cycles / self.clock_mhz

    def cycles_to_msec(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1000.0)

    def mbytes_per_sec(self, nbytes: int, cycles: float) -> float:
        """Achieved bandwidth for moving ``nbytes`` in ``cycles``."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return nbytes * self.clock_mhz / cycles
