"""CMMU: the integrated network interface (describe/launch send,
receive window, DMA bulk transfer, message interrupts)."""

from repro.cmmu.interface import Cmmu, CmmuStats
from repro.cmmu.message import (
    MAX_DESCRIPTOR_WORDS,
    BlockRef,
    Message,
    descriptor_words,
    validate_descriptor,
)

__all__ = [
    "BlockRef",
    "Cmmu",
    "CmmuStats",
    "MAX_DESCRIPTOR_WORDS",
    "Message",
    "descriptor_words",
    "validate_descriptor",
]
