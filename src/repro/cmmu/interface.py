"""The Communications and Memory-Management Unit (CMMU) per node.

The CMMU is the single point where a node meets the network
(paper Fig. 4): it

* consumes coherence-protocol packets in hardware (handing them to the
  shared :class:`~repro.memory.coherence.CoherenceEngine`),
* implements the two-phase *describe/launch* send interface,
* runs the source/destination DMA engines for bulk transfer, and
* raises message interrupts toward the processor, exposing arrived
  packets through the 16-word receive window.

Timing notes: the interrupt fires when the packet *tail* arrives in
our model (hardware interrupts on the head; since a handler must not
consume data that has not arrived, tail-interrupt plus a short DMA
drain is an equivalent accounting that errs by at most the handler
ramp-up time).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.cmmu.message import BlockRef, Message, descriptor_words, validate_descriptor
from repro.params import CmmuParams
from repro.memory.coherence import CoherenceEngine
from repro.memory.store import BackingStore
from repro.network.fabric import Network
from repro.network.packet import Packet, PacketKind
from repro.sim.engine import Resource, SimulationError, Simulator


@dataclass
class CmmuStats:
    messages_sent: int = 0
    messages_received: int = 0
    data_words_sent: int = 0
    dma_transfers: int = 0
    interrupts_raised: int = 0
    queued_while_masked: int = 0


class Cmmu:
    """Per-node network coprocessor."""

    def __init__(
        self,
        sim: Simulator,
        node: int,
        network: Network,
        coherence: CoherenceEngine,
        store: BackingStore,
        params: CmmuParams | None = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.network = network
        self.coherence = coherence
        self.store = store
        self.p = params or CmmuParams()
        self.dma = Resource(sim, f"dma{node}")
        #: messages that have arrived but not yet been dispatched
        self.in_queue: deque[Message] = deque()
        #: processor hook: called (with no args) when a message becomes
        #: available for dispatch; the processor decides when to take it
        self.on_message: Callable[[], None] | None = None
        self.stats = CmmuStats()
        network.attach(node, self._sink)

    def register_metrics(self, reg, **labels) -> None:
        """Register this CMMU's instruments (lazy reads) into a
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        s = self.stats
        labels = {"component": "cmmu", **labels}
        for name in ("messages_sent", "messages_received", "data_words_sent",
                     "dma_transfers", "interrupts_raised", "queued_while_masked"):
            reg.counter(f"cmmu.{name}", lambda n=name: getattr(s, n), **labels)
        reg.counter("cmmu.dma_busy_cycles", lambda: self.dma.total_busy, **labels)
        reg.gauge("cmmu.in_queue_depth", lambda: len(self.in_queue), **labels)

    # ------------------------------------------------------------------
    # Send side: describe + launch
    # ------------------------------------------------------------------
    def describe_launch_cost(self, n_operands: int, n_blocks: int) -> int:
        """Processor cycles to describe and launch one message."""
        return self.p.describe_cost(n_operands, n_blocks) + self.p.launch_cycles

    def launch(
        self,
        dst: int,
        mtype: str,
        operands: tuple[Any, ...] = (),
        blocks: list[BlockRef] | None = None,
    ) -> Message:
        """Inject a message (the processor has already paid the
        describe/launch cycles via its Send effect).

        For bulk blocks, the source DMA engine gathers a value
        snapshot, the source cache is made consistent with memory over
        the block ranges, and the packet body streams at the DMA rate.
        """
        blocks = blocks or []
        validate_descriptor(operands, blocks, self.p.header_words)
        data_bytes = sum(b.nbytes for b in blocks)
        snapshot: list[tuple[int, Any]] = []
        base = 0
        for b in blocks:
            self.coherence.dma_flush(self.node, b.addr, b.nbytes)
            for off, value in self.store.snapshot_range(b.addr, b.nbytes):
                snapshot.append((base + off, value))
            base += b.nbytes

        msg = Message(
            src=self.node,
            dst=dst,
            mtype=mtype,
            operands=operands,
            data_bytes=data_bytes,
            data_snapshot=snapshot,
        )
        head_words = descriptor_words(len(operands), len(blocks), self.p.header_words)
        self.stats.messages_sent += 1
        self.stats.data_words_sent += msg.data_words

        if blocks:
            self.stats.dma_transfers += 1
            stream_cycles = msg.data_words * self.p.dma_cycles_per_word
            start = self.dma.available_at()
            self.dma.acquire(stream_cycles, earliest=start)
            packet = Packet(
                src=self.node,
                dst=dst,
                kind=PacketKind.DMA_TRANSFER,
                size_words=head_words + msg.data_words,
                payload=msg,
                cycles_per_word_override=float(self.p.dma_cycles_per_word),
            )
            self.sim.call_at(start, lambda: self.network.send(packet))
        else:
            packet = Packet(
                src=self.node,
                dst=dst,
                kind=PacketKind.USER_MESSAGE,
                size_words=head_words,
                payload=msg,
            )
            self.network.send(packet)
        return msg

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def _sink(self, packet: Packet) -> None:
        if packet.is_protocol:
            self.coherence.handle_packet(packet)
            return
        msg = packet.payload
        if not isinstance(msg, Message):  # pragma: no cover - wiring error
            raise SimulationError(f"non-protocol packet without Message: {packet!r}")
        self.in_queue.append(msg)
        self.stats.messages_received += 1
        if self.on_message is not None:
            self.on_message()

    def pop_message(self) -> Message:
        """Take the head message out of the input queue (the processor
        does this when it enters the handler)."""
        if not self.in_queue:
            raise SimulationError(f"node {self.node}: receive window empty")
        return self.in_queue.popleft()

    # ------------------------------------------------------------------
    # Storeback (destination DMA scatter)
    # ------------------------------------------------------------------
    def storeback(self, msg: Message, dma_addr: int) -> int:
        """Deposit a message's block data at ``dma_addr``.

        Returns the handler-visible cost in cycles (storeback issue +
        destination cache flush + DMA drain tail). Values land in the
        backing store immediately; callers must charge the returned
        cycles before signalling data availability.
        """
        if msg.data_bytes <= 0:
            raise SimulationError("storeback on a message without block data")
        dirty = self.coherence.dma_flush(self.node, dma_addr, msg.data_bytes)
        self.store.write_snapshot(dma_addr, msg.data_bytes, msg.data_snapshot)
        self.dma.acquire(self.p.dma_drain_tail)
        return (
            self.p.storeback_cycles
            + dirty * self.p.dma_flush_per_line
            + self.p.dma_drain_tail
        )
