"""Software-visible message format.

Mirrors the paper's packet descriptor (Fig. 5): a message carries a
small number of explicit *operands* (the first conceptually naming the
destination and message type) plus zero or more blocks of memory data
gathered by DMA at the source. Block data travels as a value
*snapshot* captured at launch, matching hardware where the source
memory is read while the packet streams out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_ids = itertools.count()

#: Maximum descriptor length in words (paper: "up to 16 words long").
MAX_DESCRIPTOR_WORDS = 16


@dataclass(slots=True)
class BlockRef:
    """An address-length pair in a descriptor."""

    addr: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"block length must be positive, got {self.nbytes}")
        if self.addr < 0:
            raise ValueError(f"negative block address {self.addr:#x}")


@dataclass(slots=True)
class Message:
    """A received (or in-flight) software message.

    Slotted: message-heavy workloads (MP barriers, bulk transfers)
    allocate one of these per delivery."""

    src: int
    dst: int
    mtype: str
    operands: tuple[Any, ...] = ()
    #: total DMA payload in bytes (0 for processor-to-processor messages)
    data_bytes: int = 0
    #: (offset, value) pairs over the concatenated block data
    data_snapshot: list[tuple[int, Any]] = field(default_factory=list)
    mid: int = field(default_factory=lambda: next(_msg_ids))
    #: send-time vector clock, attached by the happens-before race
    #: detector (declared here so slotted instances stay annotatable)
    _hb_clock: Any = field(default=None, repr=False)

    @property
    def data_words(self) -> int:
        return (self.data_bytes + 3) // 4

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Message#{self.mid} {self.mtype!r} {self.src}->{self.dst} "
            f"ops={len(self.operands)} data={self.data_bytes}B>"
        )


def descriptor_words(n_operands: int, n_blocks: int, header_words: int = 2) -> int:
    """Descriptor length in words (operands + address/length pairs)."""
    return header_words + n_operands + 2 * n_blocks


def validate_descriptor(
    operands: tuple[Any, ...], blocks: list[BlockRef], header_words: int = 2
) -> None:
    """Enforce the 16-word descriptor limit of the real CMMU."""
    words = descriptor_words(len(operands), len(blocks), header_words)
    if words > MAX_DESCRIPTOR_WORDS:
        raise ValueError(
            f"descriptor needs {words} words; the CMMU interface allows "
            f"{MAX_DESCRIPTOR_WORDS} (operands={len(operands)}, blocks={len(blocks)})"
        )
