"""A shared-object space over the integrated interface.

Paper §6: "a shared-object space with messages is the basis for
implementing a parallel object-oriented language. In this sense
shared-memory and message-passing might be integrated at the language
level." This module sketches that integration:

a :class:`SharedObject` lives on a home node and offers two access
policies per method call —

* ``"data"``  — *move the data to the computation*: the caller reads
  the object's fields through coherent shared memory, computes
  locally, and writes back any updates. Cheap when the object is
  read-mostly (fields stay cached at readers).
* ``"compute"`` — *move the computation to the data*: the caller
  sends one message; the home node's handler runs the method against
  its locally-cached fields and replies with the result. Cheap when
  the object is write-hot (no ownership ping-pong).

The crossover between the two policies is exactly the paper's
shared-memory-vs-messages trade-off, surfaced as an object-model
choice; ``examples/shared_objects.py`` and the object-space bench
measure it.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator

from repro.machine.machine import Machine
from repro.proc.effects import Compute, Load, Send, Store, Suspend
from repro.runtime.sync import SpinLock

MSG_OBJ_INVOKE = "obj.invoke"
MSG_OBJ_REPLY = "obj.reply"

_obj_ids = itertools.count()
_call_ids = itertools.count()

#: a method: (fields_dict) -> (result, updates_dict). Methods run
#: against plain Python values; the object layer performs the
#: simulated memory traffic.
Method = Callable[[dict], tuple[Any, dict]]


class ObjectSpace:
    """Registry + message plumbing for shared objects on one machine."""

    def __init__(self, machine: Machine, handler_cost: int = 12) -> None:
        self.machine = machine
        self.handler_cost = handler_cost
        self.objects: dict[int, SharedObject] = {}
        self._pending: dict[int, Any] = {}
        for node in range(machine.n_nodes):
            proc = machine.processor(node)
            proc.register_handler(MSG_OBJ_INVOKE, self._handle_invoke)
            proc.register_handler(MSG_OBJ_REPLY, self._handle_reply)

    def create(
        self,
        home: int,
        fields: dict[str, Any],
        methods: dict[str, Method],
        read_only: set[str] | None = None,
    ) -> "SharedObject":
        """``read_only`` names methods that never update fields; under
        the "data" policy they read via a lockless seqlock instead of
        taking the object lock (cached reads stay cheap)."""
        obj = SharedObject(self, home, fields, methods, read_only or set())
        self.objects[obj.oid] = obj
        return obj

    # ------------------------------------------------------------------
    def _handle_invoke(self, msg) -> Generator:
        oid, call_id, method, args = msg.operands
        obj = self.objects[oid]
        caller = msg.src
        yield Compute(self.handler_cost)
        # The home runs the method against its own fields: loads/stores
        # are local (and usually cache hits — that is the point). A
        # handler must never *spin* on the object lock though: the
        # holder might be a local thread this very interrupt preempted.
        # Try once; on contention, defer to a thread.
        got = yield from obj.lock.try_acquire()
        if got:
            result = yield from obj._method_body(method, args)
            yield from obj.lock.release()
            yield Send(caller, MSG_OBJ_REPLY, operands=(call_id, result))
            return

        def deferred() -> Generator:
            result = yield from obj._invoke_data(method, args)
            yield Send(caller, MSG_OBJ_REPLY, operands=(call_id, result))

        self.machine.processor(obj.home).run_thread(
            deferred(), label=f"obj{oid}.{method}"
        )

    def _handle_reply(self, msg) -> Generator:
        call_id, result = msg.operands
        yield Compute(2)
        box = self._pending.pop(call_id)
        box["result"] = result
        resume = box.get("resume")
        if resume is not None:
            resume(result)


class SharedObject:
    """An object with fields in its home node's shared memory."""

    def __init__(
        self, space: ObjectSpace, home: int, fields: dict[str, Any],
        methods: dict[str, Method], read_only: set[str] | None = None,
    ) -> None:
        self.space = space
        self.machine = space.machine
        self.home = home
        self.oid = next(_obj_ids)
        self.methods = methods
        self.read_only = read_only or set()
        unknown = self.read_only - set(methods)
        if unknown:
            raise KeyError(f"read_only names unknown methods: {sorted(unknown)}")
        self.field_names = list(fields)
        self.lock = SpinLock(self.machine.alloc(home, 8))
        #: seqlock word: odd while a writer is mid-update
        self.version_addr = self.machine.alloc(home, 8)
        self.addrs = {name: self.machine.alloc(home, 8) for name in fields}
        for name, value in fields.items():
            self.machine.store.write(self.addrs[name], value)

    # ------------------------------------------------------------------
    def invoke(self, caller: int, method: str, args: tuple = (), policy: str = "data") -> Generator:
        """``result = yield from obj.invoke(node, "method", args, policy)``"""
        if method not in self.methods:
            raise KeyError(f"object #{self.oid} has no method {method!r}")
        if policy == "data":
            return (yield from self._invoke_data(method, args))
        if policy == "compute":
            return (yield from self._invoke_compute(caller, method, args))
        raise ValueError(f"policy must be 'data' or 'compute', got {policy!r}")

    # -- move-the-data: coherent loads/stores from the caller ----------
    def _invoke_data(self, method: str, args: tuple) -> Generator:
        if method in self.read_only:
            return (yield from self._seqlock_read(method, args))
        yield from self.lock.acquire()
        result = yield from self._method_body(method, args)
        yield from self.lock.release()
        return result

    def _seqlock_read(self, method: str, args: tuple) -> Generator:
        """Lockless consistent read: sample the version word, read the
        fields, re-check the version; retry if a writer interleaved.
        Read-mostly sharing then costs only cache hits at every reader
        — the shared-memory hardware's strength (paper §2)."""
        while True:
            v1 = yield Load(self.version_addr)
            if v1 & 1:  # writer mid-update
                yield Compute(10)
                continue
            fields = {}
            for name in self.field_names:
                fields[name] = yield Load(self.addrs[name])
            v2 = yield Load(self.version_addr)
            if v1 == v2:
                result, updates = self.methods[method](fields, *args)
                if updates:
                    raise KeyError(
                        f"read_only method {method!r} attempted field updates"
                    )
                yield Compute(8)
                return result
            yield Compute(10)  # torn read; retry

    def _method_body(self, method: str, args: tuple) -> Generator:
        """Field reads + method arithmetic + field writebacks.
        Assumes the object lock is held by the caller."""
        fields = {}
        for name in self.field_names:
            fields[name] = yield Load(self.addrs[name])
        result, updates = self.methods[method](fields, *args)
        yield Compute(8)  # the method body's local arithmetic
        if updates:
            ver = yield Load(self.version_addr)
            yield Store(self.version_addr, ver + 1)  # odd: update in flight
            for name, value in updates.items():
                if name not in self.addrs:
                    raise KeyError(f"method {method!r} updated unknown field {name!r}")
                yield Store(self.addrs[name], value)
            yield Store(self.version_addr, ver + 2)  # even: stable again
        return result

    # -- move-the-computation: one message each way ---------------------
    def _invoke_compute(self, caller: int, method: str, args: tuple) -> Generator:
        if caller == self.home:
            return (yield from self._invoke_data(method, args))
        call_id = next(_call_ids)
        box: dict[str, Any] = {}
        self.space._pending[call_id] = box
        yield Send(self.home, MSG_OBJ_INVOKE, operands=(self.oid, call_id, method, tuple(args)))
        if "result" not in box:
            result = yield Suspend(lambda resume: box.__setitem__("resume", resume))
            return result
        return box["result"]

    # ------------------------------------------------------------------
    def read_field(self, name: str) -> Any:
        """Debug/test access to the authoritative value."""
        return self.machine.store.read(self.addrs[name])
