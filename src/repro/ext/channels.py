"""Producer-consumer channels over the integrated interface.

Paper §6 closes with the plan to "continue investigating further
integration, including ... programming systems which provide limited
programmer access to both the shared-memory and message-passing
interfaces". This module is that idea as a library: a typed FIFO
channel whose *transport* is selectable —

* ``mechanism="sm"`` — a bounded ring buffer in shared memory with
  per-slot availability/drain counters (the classic flag-then-data
  pattern of §2.2: synchronization and payload travel as separate
  coherence transactions).
* ``mechanism="mp"`` — each ``put`` is one message bundling the
  synchronization event with the data; the receiving handler queues
  the value and wakes any blocked consumer.

Both present the same ``put``/``get`` generator API, so application
code is mechanism-agnostic — the §2.2 trade-off becomes a one-word
configuration choice.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Generator

from repro.machine.machine import Machine
from repro.proc.effects import Compute, Load, Send, Store, Suspend
from repro.sim.engine import SimulationError

MSG_CHAN_PUT = "chan.put"

_chan_ids = itertools.count()


class Channel:
    """A single-producer, single-consumer FIFO between two nodes."""

    def __init__(
        self,
        machine: Machine,
        producer: int,
        consumer: int,
        mechanism: str = "mp",
        capacity: int = 16,
    ) -> None:
        if mechanism not in ("sm", "mp"):
            raise ValueError(f"mechanism must be 'sm' or 'mp', got {mechanism!r}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.machine = machine
        self.producer = producer
        self.consumer = consumer
        self.mechanism = mechanism
        self.capacity = capacity
        self.cid = next(_chan_ids)
        if mechanism == "sm":
            # Ring buffer: data and availability counters homed at the
            # consumer (it polls them locally); drain counters homed at
            # the producer (likewise). Each counter on its own line.
            self._slots = [machine.alloc(consumer, 8) for _ in range(capacity)]
            self._avail = [machine.alloc(consumer, 8) for _ in range(capacity)]
            self._drained = [machine.alloc(producer, 8) for _ in range(capacity)]
            self._put_seq = 0
            self._get_seq = 0
        else:
            self._queue: deque[Any] = deque()
            self._waiter = None
            self._register_handler()

    # ------------------------------------------------------------------
    # Message-passing transport
    # ------------------------------------------------------------------
    def _register_handler(self) -> None:
        proc = self.machine.processor(self.consumer)
        self._mtype = f"{MSG_CHAN_PUT}.{self.cid}"

        def handler(msg) -> Generator:
            yield Compute(3)
            self._queue.append(msg.operands[0])
            if self._waiter is not None:
                resume, self._waiter = self._waiter, None
                resume(None)

        proc.register_handler(self._mtype, handler)

    def _set_waiter(self, resume) -> None:
        if self._waiter is not None:
            raise SimulationError("channel is single-consumer")
        self._waiter = resume

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(self, value: Any) -> Generator:
        """``yield from chan.put(v)`` — runs on the producer node."""
        if self.mechanism == "mp":
            yield Send(self.consumer, self._mtype, operands=(value,))
            return
        seq = self._put_seq
        slot = seq % self.capacity
        lap = seq // self.capacity
        # wait until the previous lap's occupant of this slot drained
        # (drained[slot] holds the lap count of the last consumption)
        while True:
            d = yield Load(self._drained[slot])
            if d >= lap:
                break
            yield Compute(20)
        yield Store(self._slots[slot], value)
        yield Store(self._avail[slot], seq + 1)  # separate sync write
        self._put_seq += 1

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get(self) -> Generator:
        """``v = yield from chan.get()`` — runs on the consumer node."""
        if self.mechanism == "mp":
            while not self._queue:
                yield Suspend(self._set_waiter)
            return self._queue.popleft()
        seq = self._get_seq
        slot = seq % self.capacity
        while True:
            a = yield Load(self._avail[slot])
            if a >= seq + 1:
                break
            yield Compute(8)
        value = yield Load(self._slots[slot])
        # publish the drain (lap count) so the producer can reuse it
        yield Store(self._drained[slot], (seq // self.capacity) + 1)
        self._get_seq += 1
        return value

    def __len__(self) -> int:
        if self.mechanism == "mp":
            return len(self._queue)
        return self._put_seq - self._get_seq
