"""Extensions from the paper's §6 future-work agenda: language-level
integration of the two communication mechanisms."""

from repro.ext.channels import Channel
from repro.ext.objects import ObjectSpace, SharedObject

__all__ = ["Channel", "ObjectSpace", "SharedObject"]
