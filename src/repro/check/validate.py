"""Findings gate over ``run.json`` manifests.

``python -m repro.check RUN_JSON [RUN_JSON ...]`` loads the ``check``
section of each manifest (written by ``repro run --check=...``),
merges them, prints a summary, and exits non-zero when any finding is
present — the CI ``check`` job is exactly this command. ``--out
FILE`` additionally writes the merged findings as JSON (the CI
artifact).
"""

from __future__ import annotations

import json
import sys

from repro.check.report import CheckReport

USAGE = "usage: python -m repro.check [--out FINDINGS_JSON] RUN_JSON [RUN_JSON ...]"


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    out_path = None
    if "--out" in args:
        i = args.index("--out")
        try:
            out_path = args[i + 1]
        except IndexError:
            print(USAGE, file=sys.stderr)
            return 2
        del args[i:i + 2]
    if not args or any(a.startswith("-") for a in args):
        print(USAGE, file=sys.stderr)
        return 2

    merged = CheckReport()
    unchecked = []
    for path in args:
        with open(path) as fh:
            manifest = json.load(fh)
        section = manifest.get("check")
        if section is None:
            unchecked.append(path)
            continue
        merged.merge(CheckReport.from_dict(section))
    for path in unchecked:
        print(f"note: {path} has no check section (run with --check=...)")
    print(merged.summarize())
    if out_path is not None:
        with open(out_path, "w") as fh:
            json.dump(merged.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if merged.total else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
