"""Deadlock / livelock watchdog.

Three complementary detectors, none of which ever halts the run:

* **bounded-spin starvation** (live) — a context that issues a long
  unbroken run of ``Load``/``LoadAcquire``/``Compute`` effects is
  spinning on a condition nobody is making true. Any other effect
  class (a store, an atomic, a suspend, a send) resets the counter,
  so productive loops never trip it; the runtime's idle/steal probes
  are short bounded generators and stay far below the limit.
* **stalled suspension** (periodic daemon) — a context suspended for
  longer than ``suspend_timeout`` simulated cycles while the machine
  keeps making progress. Runs off :meth:`Simulator.call_daemon`, so
  the watchdog can never keep a quiesced simulation alive or perturb
  event timing.
* **quiescence sweep** (:meth:`finalize`) — once the run is over,
  any context still suspended (an unresolved ``Future``'s waiter, a
  barrier member whose peers never arrived) and any message still
  sitting undelivered in a CMMU input queue is reported with the
  suspension site captured when the context parked itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.check.hb import _site
from repro.check.report import Finding
from repro.proc import effects as fx
from repro.trace.patch import PatchSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

#: effect classes that look like one spin iteration
_SPIN_EFFECTS = (fx.Load, fx.LoadAcquire, fx.Compute)


class DeadlockWatchdog:
    """Deadlock/livelock watchdog for one machine."""

    name = "deadlock"

    def __init__(
        self,
        machine: "Machine",
        emit: Callable[[Finding], None],
        spin_limit: int = 50_000,
        suspend_timeout: int = 50_000_000,
        tick_interval: int = 100_000,
    ) -> None:
        self.machine = machine
        self._emit = emit
        self.spin_limit = spin_limit
        self.suspend_timeout = suspend_timeout
        self.tick_interval = tick_interval
        self._patches = PatchSet()
        #: cid -> consecutive spin-looking effects
        self._spin: dict[int, int] = {}
        #: cid -> (suspend time, site, node, label)
        self._suspended: dict[int, tuple] = {}
        self._flagged_spin: set[int] = set()
        self._flagged_stall: set[int] = set()
        self._stopped = False
        self._attach()
        machine.sim.call_daemon(self.tick_interval, self._tick)

    # ------------------------------------------------------------------
    def _attach(self) -> None:
        for node_obj in self.machine.nodes:
            proc = node_obj.processor

            def make_execute(orig, node=node_obj.node_id):
                def watched_execute(ctx, eff):
                    cid = ctx.cid
                    if isinstance(eff, _SPIN_EFFECTS):
                        count = self._spin.get(cid, 0) + 1
                        self._spin[cid] = count
                        if count == self.spin_limit and cid not in self._flagged_spin:
                            self._flagged_spin.add(cid)
                            self._emit(Finding(
                                checker=self.name,
                                kind="spin-starvation",
                                time=self.machine.sim.now,
                                node=node,
                                addr=getattr(eff, "addr", None),
                                message=(
                                    f"context {ctx.label or ctx.cid!r} issued "
                                    f"{count} consecutive load/compute effects "
                                    "without progress (unbounded spin?)"
                                ),
                                sites=(_site(ctx),),
                            ))
                    else:
                        self._spin.pop(cid, None)
                        if eff.__class__ is fx.Suspend:
                            self._suspended[cid] = (
                                self.machine.sim.now, _site(ctx),
                                node, ctx.label,
                            )
                    orig(ctx, eff)

                return watched_execute

            def make_enqueue(orig):
                def watched_enqueue(ctx, value, resumed, front=False):
                    if resumed:
                        self._suspended.pop(ctx.cid, None)
                    orig(ctx, value, resumed, front=front)

                return watched_enqueue

            def make_finish(orig):
                def watched_finish(ctx, result):
                    orig(ctx, result)
                    self._spin.pop(ctx.cid, None)
                    self._suspended.pop(ctx.cid, None)

                return watched_finish

            self._patches.patch(proc, "_execute", make_execute)
            self._patches.patch(proc, "_enqueue_ready", make_enqueue)
            self._patches.patch(proc, "_finish", make_finish)

    def detach(self) -> None:
        self._stopped = True
        self._patches.restore()

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.machine.sim.now
        for cid, (t0, site, node, label) in self._suspended.items():
            if now - t0 > self.suspend_timeout and cid not in self._flagged_stall:
                self._flagged_stall.add(cid)
                self._emit(Finding(
                    checker=self.name,
                    kind="stalled-context",
                    time=now,
                    node=node,
                    message=(
                        f"context {label or cid!r} suspended since t={t0} "
                        f"({now - t0} cycles) while the machine kept running"
                    ),
                    sites=(site,),
                ))
        self.machine.sim.call_daemon(self.tick_interval, self._tick)

    def finalize(self) -> None:
        now = self.machine.sim.now
        for cid, (t0, site, node, label) in sorted(self._suspended.items()):
            self._emit(Finding(
                checker=self.name,
                kind="suspended-at-quiescence",
                time=now,
                node=node,
                message=(
                    f"context {label or cid!r} suspended at t={t0} was never "
                    "resumed (unresolved future / missing barrier arrival?)"
                ),
                sites=(site,),
            ))
        for node_obj in self.machine.nodes:
            if node_obj.cmmu.in_queue:
                kinds = sorted({m.mtype for m in node_obj.cmmu.in_queue})
                self._emit(Finding(
                    checker=self.name,
                    kind="undelivered-messages",
                    time=now,
                    node=node_obj.node_id,
                    message=(
                        f"{len(node_obj.cmmu.in_queue)} message(s) "
                        f"({', '.join(kinds)}) still queued at node "
                        f"{node_obj.node_id} at quiescence"
                    ),
                ))
