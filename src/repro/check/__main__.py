"""``python -m repro.check`` — gate on run-manifest findings."""

from repro.check.validate import main

raise SystemExit(main())
