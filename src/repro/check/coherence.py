"""Coherence-invariant sanitizer.

Validates that the per-node caches and the home directories agree —
live, on every protocol transition, and again at quiescence. The
checked invariants are the ones the protocol is supposed to maintain
(and that ``tests/test_properties.py`` spot-checks after the fact):

* **SWMR** — at most one node holds a line MODIFIED/EXCLUSIVE.
* **directory entry consistency** — after every directory mutation
  the entry satisfies :meth:`DirEntry.check` (UNOWNED ⇒ no sharers
  and no owner; SHARED ⇒ sharers non-empty, no owner; EXCLUSIVE ⇒
  owner set, no sharers). This stays true across LimitLESS pointer
  overflow: the software-extended sharer list obeys the same shape.
* **quiescence agreement** — when the machine has quiesced, every
  M/E line is EXCLUSIVE at its home with the right owner and every
  SHARED copy appears in its home's sharer set. (The directory *may*
  track extra, stale sharers — silent evictions never inform home —
  so only the cache→directory direction is checked.)
* **protocol quiescence** — no in-flight transactions (MSHRs), busy
  lines, or queued protocol work survive the run.

The live SWMR check keeps an incremental ``line -> owner nodes``
index updated from patched ``fill``/``set_state``/``invalidate``.
Silent LRU evictions bypass those methods, so the index is only a
*pre-filter*: an apparent violation is re-verified against the actual
cache states and stale entries are pruned before reporting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.check.report import Finding
from repro.memory.address import home_of
from repro.memory.cache import LineState
from repro.memory.directory import DirState
from repro.trace.patch import PatchSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

_OWNING = (LineState.MODIFIED, LineState.EXCLUSIVE)


class CoherenceSanitizer:
    """Directory/cache agreement checker for one machine."""

    name = "coherence"

    def __init__(self, machine: "Machine", emit: Callable[[Finding], None]) -> None:
        self.machine = machine
        self._emit = emit
        self._patches = PatchSet()
        #: line -> nodes believed to hold it M/E (pre-filter index)
        self._owners: dict[int, set[int]] = {}
        self._seen: set[tuple] = set()
        self._attach()

    # ------------------------------------------------------------------
    def _attach(self) -> None:
        for node_obj in self.machine.nodes:
            cache = node_obj.cache
            directory = node_obj.directory
            node = node_obj.node_id

            def make_fill(orig, node=node):
                def checked_fill(line, state):
                    victim = orig(line, state)
                    self._note_state(line, node, state)
                    return victim

                return checked_fill

            def make_set_state(orig, node=node):
                def checked_set_state(line, state):
                    orig(line, state)
                    self._note_state(line, node, state)

                return checked_set_state

            def make_invalidate(orig, node=node):
                def checked_invalidate(line):
                    prior = orig(line)
                    self._drop(line, node)
                    return prior

                return checked_invalidate

            def make_flush_range(orig, node=node):
                def checked_flush_range(addr, nbytes):
                    dropped = orig(addr, nbytes)
                    for line, _prior in dropped:
                        self._drop(line, node)
                    return dropped

                return checked_flush_range

            self._patches.patch(cache, "fill", make_fill)
            self._patches.patch(cache, "set_state", make_set_state)
            self._patches.patch(cache, "invalidate", make_invalidate)
            self._patches.patch(cache, "flush_range", make_flush_range)

            def make_dir_mut(orig, directory=directory, node=node):
                def checked_mut(line, *args, **kwargs):
                    result = orig(line, *args, **kwargs)
                    self._check_entry(directory, line, node)
                    return result

                return checked_mut

            for meth in ("add_sharer", "set_exclusive", "clear", "drop_sharer"):
                self._patches.patch(directory, meth, make_dir_mut)

    def detach(self) -> None:
        self._patches.restore()

    # ------------------------------------------------------------------
    # Live checks
    # ------------------------------------------------------------------
    def _note_state(self, line: int, node: int, state: LineState) -> None:
        if state in _OWNING:
            holders = self._owners.setdefault(line, set())
            holders.add(node)
            if len(holders) > 1:
                self._verify_swmr(line, holders)
        else:
            self._drop(line, node)

    def _drop(self, line: int, node: int) -> None:
        holders = self._owners.get(line)
        if holders is not None:
            holders.discard(node)
            if not holders:
                del self._owners[line]

    def _verify_swmr(self, line: int, holders: set[int]) -> None:
        """Re-verify an apparent multi-owner line against the actual
        cache states; silent LRU evictions leave stale index entries."""
        nodes = self.machine.nodes
        stale = [n for n in holders if nodes[n].cache.state(line) not in _OWNING]
        holders.difference_update(stale)
        if len(holders) > 1:
            key = ("swmr", line, frozenset(holders))
            if key in self._seen:
                return
            self._seen.add(key)
            self._emit(Finding(
                checker=self.name,
                kind="multiple-owners",
                time=self.machine.sim.now,
                node=min(holders),
                addr=line,
                message=(
                    f"line {line:#x} held MODIFIED/EXCLUSIVE by nodes "
                    f"{sorted(holders)} simultaneously"
                ),
            ))

    def _check_entry(self, directory, line: int, home: int) -> None:
        e = directory.peek(line)
        if e is None:  # pragma: no cover - mutators create the entry
            return
        if e.state is DirState.UNOWNED:
            bad = bool(e.sharers) or e.owner is not None
        elif e.state is DirState.SHARED:
            bad = not e.sharers or e.owner is not None
        else:  # EXCLUSIVE
            bad = e.owner is None or bool(e.sharers)
        if bad:
            key = ("entry", home, line)
            if key in self._seen:
                return
            self._seen.add(key)
            self._emit(Finding(
                checker=self.name,
                kind="directory-inconsistent",
                time=self.machine.sim.now,
                node=home,
                addr=line,
                message=(
                    f"directory entry for line {line:#x} inconsistent: "
                    f"state={e.state.value} sharers={sorted(e.sharers)} "
                    f"owner={e.owner}"
                ),
            ))

    # ------------------------------------------------------------------
    # Quiescence sweep
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        machine = self.machine
        now = machine.sim.now
        owners_by_line: dict[int, list[int]] = {}
        for node_obj in machine.nodes:
            cache = node_obj.cache
            for line in cache.resident_lines():
                st = cache.state(line)
                home = machine.nodes[home_of(line)]
                entry = home.directory.peek(line)
                if st in _OWNING:
                    owners_by_line.setdefault(line, []).append(node_obj.node_id)
                    if (
                        entry is None
                        or entry.state is not DirState.EXCLUSIVE
                        or entry.owner != node_obj.node_id
                    ):
                        self._emit(Finding(
                            checker=self.name,
                            kind="stale-dirty-line",
                            time=now,
                            node=node_obj.node_id,
                            addr=line,
                            message=(
                                f"line {line:#x} is {st.value} at node "
                                f"{node_obj.node_id} but its home directory "
                                f"says {entry.state.value if entry else 'absent'}"
                            ),
                        ))
                elif st is LineState.SHARED:
                    if entry is None or node_obj.node_id not in entry.sharers:
                        self._emit(Finding(
                            checker=self.name,
                            kind="untracked-sharer",
                            time=now,
                            node=node_obj.node_id,
                            addr=line,
                            message=(
                                f"line {line:#x} cached SHARED at node "
                                f"{node_obj.node_id} but missing from its "
                                f"home's sharer set"
                            ),
                        ))
        for line, nodes in owners_by_line.items():
            if len(nodes) > 1:
                self._emit(Finding(
                    checker=self.name,
                    kind="multiple-owners",
                    time=now,
                    node=min(nodes),
                    addr=line,
                    message=(
                        f"line {line:#x} held MODIFIED/EXCLUSIVE by nodes "
                        f"{sorted(nodes)} at quiescence"
                    ),
                ))
        coh = machine.coherence
        leftovers = []
        if any(m for m in coh._mshr.values()):
            leftovers.append("outstanding MSHR transactions")
        if coh._line_busy:
            leftovers.append(f"{len(coh._line_busy)} busy lines")
        if any(q for q in coh._line_q.values()):
            leftovers.append("queued protocol requests")
        if leftovers:
            self._emit(Finding(
                checker=self.name,
                kind="protocol-quiescence",
                time=now,
                node=0,
                message=(
                    "coherence engine did not quiesce: "
                    + ", ".join(leftovers)
                ),
            ))
