"""Happens-before data-race detector.

Vector-clock race detection over the simulator's effect stream, in
the FastTrack style (one epoch per access, full clock per context):
every execution context carries a vector clock ``{cid: epoch}``;
per address the detector keeps the last write epoch and the set of
reads since that write; an access races iff the prior conflicting
access is not ordered before it (``vc[prior_cid] < prior_epoch``).

Happens-before edges come from every synchronization mechanism the
machine offers:

=====================================  ===================================
edge                                   where it is captured
=====================================  ===================================
message ``Send`` → handler body        send-time clock snapshot attached
                                       to the launched ``Message``,
                                       joined when the handler first steps
thread spawn / ``Suspend`` resume      patched ``_enqueue_ready`` joins
                                       the enqueuing context's clock
``StoreRelease`` → ``LoadAcquire``     per-address release clock
(locks, SM barriers, SM queues, ...)   (``signal``/``observe`` on the
                                       address itself)
``FetchOp`` (atomics)                  acquire **and** release on its
                                       address
``Future.resolve`` → ``wait``          ``("future", fid)`` hook key
``Runtime.make_task`` → task body      ``("task", tid)`` hook key
MP barrier arrive → release            ``("bar-arr", ...)`` /
                                       ``("bar-rel", ...)`` hook keys
MP reduce fold → result delivery       ``("red-arr", ...)`` /
                                       ``("red-res", ...)`` hook keys
DMA / ``Storeback``                    via the carrying message's clock
=====================================  ===================================

Two soundness-preserving approximations (each can only *add* HB
edges, i.e. hide a race — neither can fabricate one):

* **Sync-address contamination** — an address ever accessed with
  acquire/release/atomic semantics is treated as a synchronization
  variable forever; plain accesses to it act as acquire (read) or
  release (write). This absorbs the store-buffer redo path, which
  re-issues a blocked ``StoreRelease`` as a plain ``Store``.
* **Deferred acquire join** — a ``LoadAcquire`` is *issued* cycles
  before its value arrives, so the release it observes may complete
  in between. Acquires therefore join the release clock immediately
  *and again* at the context's next tracked operation, by which time
  the load has completed.
"""

from __future__ import annotations

import os
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.check.report import Finding
from repro.proc import effects as fx
from repro.trace.patch import PatchSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine
    from repro.proc.processor import Context

#: tracked memory-access effects -> access kind
_ACCESS_KIND = {
    fx.Load: "load",
    fx.LoadAcquire: "acquire",
    fx.Store: "store",
    fx.StoreRelease: "release",
    fx.FetchOp: "fetchop",
}

_RACE_KIND = {
    ("w", "w"): "write-write",
    ("w", "r"): "write-read",
    ("r", "w"): "read-write",
}


def _join(into: dict[int, int], other: dict[int, int]) -> None:
    for cid, epoch in other.items():
        if into.get(cid, 0) < epoch:
            into[cid] = epoch


def _site(ctx: "Context") -> str:
    """Source location of the context's current yield point."""
    gen = ctx.gen
    frame = getattr(gen, "gi_frame", None)
    while True:  # descend the ``yield from`` delegation chain
        sub = getattr(gen, "gi_yieldfrom", None)
        sub_frame = getattr(sub, "gi_frame", None)
        if sub_frame is None:
            break
        gen, frame = sub, sub_frame
    if frame is None:  # pragma: no cover - finished generator
        return ctx.label or "?"
    loc = f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"
    return f"{loc} ({ctx.label})" if ctx.label else loc


class RaceDetector:
    """Happens-before race detector for one machine.

    Attaches (via :class:`~repro.trace.patch.PatchSet`) to every
    processor's ``_step``/``_execute``/``_enqueue_ready``/``_finish``
    and every CMMU's ``launch``; registers itself as a
    :mod:`repro.check.hooks` sink for runtime-level edges.
    """

    name = "race"

    def __init__(self, machine: "Machine", emit: Callable[[Finding], None]) -> None:
        self.machine = machine
        self._emit = emit
        self._patches = PatchSet()
        #: cid -> vector clock {cid: epoch}
        self._vc: dict[int, dict[int, int]] = {}
        #: cid -> sync addresses whose release clock must be re-joined
        self._pending: dict[int, list[int]] = {}
        #: executing contexts, innermost last (nested ``_step`` extents)
        self._active: list["Context"] = []
        #: sync address -> merged clock of every release on it
        self._rel: dict[int, dict[int, int]] = {}
        #: hook key -> merged clock of every ``signal`` on it
        self._slots: dict[tuple, dict[int, int]] = {}
        #: (dst, mtype, id(operands)) -> FIFO of send-time clocks
        self._send_clocks: dict[tuple, deque] = {}
        #: addresses promoted to synchronization variables
        self._sync: set[int] = set()
        #: addr -> (cid, epoch, site, time) of the last write
        self._last_write: dict[int, tuple] = {}
        #: addr -> {cid: (epoch, site, time)} reads since the last write
        self._reads: dict[int, dict[int, tuple]] = {}
        #: dedup: (addr, kind, prior site, site)
        self._seen: set[tuple] = set()
        self._attach()

    # ------------------------------------------------------------------
    # Patching
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        for node_obj in self.machine.nodes:
            proc = node_obj.processor

            def make_step(orig):
                def checked_step(ctx, send_value):
                    if ctx.cid not in self._vc:
                        vc = self._vc[ctx.cid] = {ctx.cid: 1}
                        clock = getattr(ctx.msg, "_hb_clock", None)
                        if clock:
                            _join(vc, clock)
                    self._active.append(ctx)
                    try:
                        orig(ctx, send_value)
                    finally:
                        self._active.pop()

                return checked_step

            def make_execute(orig, node=node_obj.node_id):
                def checked_execute(ctx, eff):
                    kind = _ACCESS_KIND.get(eff.__class__)
                    if kind is not None:
                        self._access(ctx, eff.addr, kind, node)
                    elif eff.__class__ is fx.Send:
                        self._on_send(ctx, eff)
                    elif eff.__class__ is fx.Suspend:
                        self._flush(ctx.cid)
                    orig(ctx, eff)

                return checked_execute

            def make_enqueue(orig):
                def checked_enqueue(ctx, value, resumed, front=False):
                    if self._active:
                        src = self._active[-1]
                        svc = self._vc.get(src.cid)
                        if svc is not None and src is not ctx:
                            self._flush(src.cid)
                            tvc = self._vc.setdefault(ctx.cid, {ctx.cid: 1})
                            _join(tvc, svc)
                            svc[src.cid] = svc.get(src.cid, 0) + 1
                    orig(ctx, value, resumed, front=front)

                return checked_enqueue

            def make_finish(orig):
                def checked_finish(ctx, result):
                    orig(ctx, result)
                    self._vc.pop(ctx.cid, None)
                    self._pending.pop(ctx.cid, None)

                return checked_finish

            self._patches.patch(proc, "_step", make_step)
            self._patches.patch(proc, "_execute", make_execute)
            self._patches.patch(proc, "_enqueue_ready", make_enqueue)
            self._patches.patch(proc, "_finish", make_finish)

            def make_launch(orig):
                def checked_launch(dst, mtype, operands=(), blocks=None):
                    msg = orig(dst, mtype, operands, blocks)
                    fifo = self._send_clocks.get((dst, mtype, id(operands)))
                    if fifo:
                        msg._hb_clock = fifo.popleft()
                    return msg

                return checked_launch

            self._patches.patch(node_obj.cmmu, "launch", make_launch)

    def detach(self) -> None:
        self._patches.restore()

    def finalize(self) -> None:
        """No quiescence checks of its own (races are reported live)."""

    # ------------------------------------------------------------------
    # Hook sink (repro.check.hooks)
    # ------------------------------------------------------------------
    def signal(self, key: tuple) -> None:
        ctx = self._active[-1] if self._active else None
        if ctx is None:
            return  # driver-level code: no simulated context to order
        vc = self._vc.get(ctx.cid)
        if vc is None:  # pragma: no cover - ctx always stepped first
            return
        self._flush(ctx.cid)
        slot = self._slots.setdefault(key, {})
        _join(slot, vc)
        vc[ctx.cid] = vc.get(ctx.cid, 0) + 1

    def observe(self, key: tuple) -> None:
        ctx = self._active[-1] if self._active else None
        if ctx is None:
            return
        vc = self._vc.get(ctx.cid)
        slot = self._slots.get(key)
        if vc is not None and slot:
            _join(vc, slot)

    # ------------------------------------------------------------------
    # Access processing
    # ------------------------------------------------------------------
    def _flush(self, cid: int) -> None:
        """Apply the deferred acquire joins recorded for ``cid``."""
        pending = self._pending.get(cid)
        if not pending:
            return
        vc = self._vc[cid]
        for addr in pending:
            slot = self._rel.get(addr)
            if slot:
                _join(vc, slot)
        pending.clear()

    def _access(self, ctx: "Context", addr: int, kind: str, node: int) -> None:
        cid = ctx.cid
        vc = self._vc.get(cid)
        if vc is None:  # pragma: no cover - ctx always stepped first
            vc = self._vc[cid] = {cid: 1}
        sync = addr in self._sync
        if not sync and kind in ("acquire", "release", "fetchop"):
            # first annotated access promotes the address to a sync
            # variable; stale data-race history for it is dropped
            self._sync.add(addr)
            self._last_write.pop(addr, None)
            self._reads.pop(addr, None)
            sync = True
        if sync:
            if kind in ("load", "acquire"):
                slot = self._rel.get(addr)
                if slot:
                    _join(vc, slot)
                self._pending.setdefault(cid, []).append(addr)
            else:  # store / release / fetchop
                self._flush(cid)
                if kind == "fetchop":
                    slot = self._rel.get(addr)
                    if slot:
                        _join(vc, slot)
                    # An atomic that misses applies its RMW at the home
                    # node *after* issue; a release landing on the
                    # address in between (e.g. an MCS tail swing by the
                    # releaser while the acquirer's swap is in flight)
                    # is invisible here, so defer a re-join to the next
                    # access — same over-approximation as acquires.
                    self._pending.setdefault(cid, []).append(addr)
                slot = self._rel.setdefault(addr, {})
                _join(slot, vc)
                vc[cid] = vc.get(cid, 0) + 1
            return

        # plain data access: race check
        self._flush(cid)
        now = self.machine.sim.now
        site = _site(ctx)
        epoch = vc[cid]
        lw = self._last_write.get(addr)
        if kind == "store":
            if lw is not None and lw[0] != cid and vc.get(lw[0], 0) < lw[1]:
                self._report(addr, "w", "w", node, now, lw, site)
            reads = self._reads.pop(addr, None)
            if reads:
                for rcid, rec in reads.items():
                    if rcid != cid and vc.get(rcid, 0) < rec[0]:
                        self._report(addr, "r", "w", node, now, (rcid, *rec), site)
            self._last_write[addr] = (cid, epoch, site, now)
        else:  # load
            if lw is not None and lw[0] != cid and vc.get(lw[0], 0) < lw[1]:
                self._report(addr, "w", "r", node, now, lw, site)
            self._reads.setdefault(addr, {})[cid] = (epoch, site, now)

    def _on_send(self, ctx: "Context", eff) -> None:
        cid = ctx.cid
        vc = self._vc.get(cid)
        if vc is None:  # pragma: no cover - ctx always stepped first
            vc = self._vc[cid] = {cid: 1}
        self._flush(cid)
        key = (eff.dst, eff.mtype, id(eff.operands))
        self._send_clocks.setdefault(key, deque()).append(dict(vc))
        vc[cid] = vc.get(cid, 0) + 1

    def _report(
        self, addr: int, prior_kind: str, kind: str,
        node: int, now: int, prior: tuple, site: str,
    ) -> None:
        _pcid, _pepoch, psite, ptime = prior
        race = _RACE_KIND[(prior_kind, kind)]
        key = (addr, race, psite, site)
        if key in self._seen:
            return
        self._seen.add(key)
        self._emit(Finding(
            checker=self.name,
            kind=race,
            time=now,
            node=node,
            addr=addr,
            message=(
                f"unsynchronized {race} pair on {addr:#x} "
                f"(earlier access at t={ptime})"
            ),
            sites=(psite, site),
        ))
