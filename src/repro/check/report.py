"""Findings and the mergeable check report.

Every checker reports problems as :class:`Finding` records collected
into one :class:`CheckReport` per machine. Reports are plain data
(picklable, JSON-able) so sweep workers ship them back to the parent,
which merges them **in input order** — checked parallel runs produce
byte-identical reports at any ``--jobs`` count, exactly like the
metrics snapshot and cycle attribution.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass
class Finding:
    """One checker-reported problem.

    ``sites`` carries source locations (``file.py:lineno (label)``)
    when the checker can attribute the problem to simulated code — the
    race detector reports both conflicting access sites, the watchdog
    the suspension site.
    """

    checker: str            # "race" | "coherence" | "deadlock"
    kind: str               # e.g. "write-write", "multiple-owners"
    time: int               # simulated cycle of detection
    node: int               # node the finding is attributed to
    message: str
    addr: int | None = None
    sites: tuple[str, ...] = ()

    def __str__(self) -> str:
        where = f" @{self.addr:#x}" if self.addr is not None else ""
        sites = f" [{' vs '.join(self.sites)}]" if self.sites else ""
        return (
            f"[{self.time:>10}] n{self.node:<3} {self.checker}:{self.kind}"
            f"{where} {self.message}{sites}"
        )


@dataclass
class CheckReport:
    """Findings of one machine (or the merge of many)."""

    findings: list[Finding] = field(default_factory=list)
    #: findings discarded once the cap was reached (counts still grow)
    dropped: int = 0
    max_findings: int = 1000
    #: per-checker finding counts, *including* dropped ones
    counts: dict[str, int] = field(default_factory=dict)

    def add(self, finding: Finding) -> None:
        self.counts[finding.checker] = self.counts.get(finding.checker, 0) + 1
        if len(self.findings) >= self.max_findings:
            self.dropped += 1
            return
        self.findings.append(finding)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def merge(self, other: "CheckReport") -> "CheckReport":
        """Fold ``other`` in (append order preserved → deterministic)."""
        for f in other.findings:
            if len(self.findings) >= self.max_findings:
                self.dropped += 1
            else:
                self.findings.append(f)
        self.dropped += other.dropped
        for checker, n in other.counts.items():
            self.counts[checker] = self.counts.get(checker, 0) + n
        return self

    def as_dict(self) -> dict:
        return {
            "findings": [asdict(f) for f in self.findings],
            "dropped": self.dropped,
            "counts": dict(self.counts),
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckReport":
        rep = cls()
        for rec in data.get("findings", ()):
            rec = dict(rec)
            rec["sites"] = tuple(rec.get("sites", ()))
            rep.findings.append(Finding(**rec))
        rep.dropped = data.get("dropped", 0)
        rep.counts = dict(data.get("counts", {}))
        return rep

    def summarize(self) -> str:
        if not self.total:
            return "check: no findings"
        lines = [f"check: {self.total} finding(s)"
                 + (f" ({self.dropped} beyond the report cap)" if self.dropped else "")]
        for checker in sorted(self.counts):
            lines.append(f"  {checker}: {self.counts[checker]}")
        for f in self.findings[:20]:
            lines.append(f"  {f}")
        if len(self.findings) > 20:
            lines.append(f"  ... ({len(self.findings) - 20} more)")
        return "\n".join(lines)
