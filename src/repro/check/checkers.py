"""Checker orchestration: build, attach, and tear down checkers.

:class:`CheckerSet` is the one entry point the observability session
(and tests) use. It instantiates the requested checkers against a
machine, funnels their findings into a single
:class:`~repro.check.report.CheckReport`, registers the race detector
as a :mod:`repro.check.hooks` sink, and tears everything down in
strict reverse order — several checkers wrap the same processor
methods, so restoration must unwind LIFO across checkers just as
:class:`~repro.trace.patch.PatchSet` enforces within one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.check import hooks
from repro.check.coherence import CoherenceSanitizer
from repro.check.hb import RaceDetector
from repro.check.report import CheckReport, Finding
from repro.check.watchdog import DeadlockWatchdog

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

#: every checker name ``--check`` accepts, in attach order
CHECKER_NAMES = ("race", "coherence", "deadlock")


def validate_checks(checks) -> tuple[str, ...]:
    """Normalize and validate a checker-name collection."""
    names = tuple(checks)
    unknown = [c for c in names if c not in CHECKER_NAMES]
    if unknown:
        raise ValueError(
            f"unknown checker(s) {unknown!r}; choose from {CHECKER_NAMES}"
        )
    # de-duplicate, canonical order
    return tuple(c for c in CHECKER_NAMES if c in names)


class CheckerSet:
    """The enabled dynamic checkers of one machine.

    ``on_finding`` (optional) is invoked for every finding as it is
    recorded — the observability session uses it to mirror findings
    into the event trace.
    """

    def __init__(
        self,
        machine: "Machine",
        checks=CHECKER_NAMES,
        max_findings: int = 1000,
        on_finding: Callable[[Finding], None] | None = None,
        spin_limit: int = 50_000,
        suspend_timeout: int = 50_000_000,
    ) -> None:
        checks = validate_checks(checks)
        self.machine = machine
        self.report = CheckReport(max_findings=max_findings)
        self._on_finding = on_finding
        self._finalized = False
        self.checkers: list = []
        self._sinks: list = []
        if "race" in checks:
            race = RaceDetector(machine, self._emit)
            self.checkers.append(race)
            hooks.register(race)
            self._sinks.append(race)
        if "coherence" in checks:
            self.checkers.append(CoherenceSanitizer(machine, self._emit))
        if "deadlock" in checks:
            self.checkers.append(DeadlockWatchdog(
                machine, self._emit,
                spin_limit=spin_limit,
                suspend_timeout=suspend_timeout,
            ))

    def _emit(self, finding: Finding) -> None:
        self.report.add(finding)
        if self._on_finding is not None:
            self._on_finding(finding)

    def finalize(self) -> CheckReport:
        """Run quiescence sweeps, detach every checker (reverse attach
        order), and return the report. Idempotent."""
        if self._finalized:
            return self.report
        self._finalized = True
        for checker in self.checkers:
            checker.finalize()
        for sink in self._sinks:
            hooks.unregister(sink)
        for checker in reversed(self.checkers):
            checker.detach()
        return self.report

    def __enter__(self) -> "CheckerSet":
        return self

    def __exit__(self, *exc) -> None:
        self.finalize()
