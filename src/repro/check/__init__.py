"""Dynamic correctness checkers (``repro.check``).

Pluggable dynamic analyses that ride the same instance-level patch
points as the observability layer — a happens-before data-race
detector, a cache-coherence invariant sanitizer, and a deadlock/
livelock watchdog. Enable them per run via
``ObsConfig(check=("race", "coherence", "deadlock"))`` or the CLI's
``--check=race,coherence,deadlock``; findings land in the run
manifest and ``python -m repro.check run.json`` gates on them.

Checked runs are *cycle-identical* to unchecked ones: checkers only
observe the effect stream and protocol transitions, never schedule
events or charge cycles. See ``docs/CHECKING.md``.
"""

from repro.check.checkers import CHECKER_NAMES, CheckerSet, validate_checks
from repro.check.coherence import CoherenceSanitizer
from repro.check.hb import RaceDetector
from repro.check.report import CheckReport, Finding
from repro.check.watchdog import DeadlockWatchdog

__all__ = [
    "CHECKER_NAMES",
    "CheckReport",
    "CheckerSet",
    "CoherenceSanitizer",
    "DeadlockWatchdog",
    "Finding",
    "RaceDetector",
    "validate_checks",
]
