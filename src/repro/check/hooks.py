"""Happens-before hook points for runtime primitives.

Synchronization objects built *after* a machine was observed (futures,
tasks, message barriers and reductions — the runtime constructs them
on demand) cannot be method-patched by the checker at attach time.
Instead they announce their ordering edges through this module:

* ``signal(key)`` — "everything I did so far happens-before whoever
  observes ``key``" (a future resolving, a barrier arrival).
* ``observe(key)`` — "join everything signalled on ``key`` into my
  clock" (a future's waiter, the barrier's release decision).

Keys are tuples such as ``("future", fid)`` or
``("bar-rel", id(barrier), node, episode)``; id-based components are
unique process-wide, so several checked machines can coexist.

When no checker is registered the hooks are dead cheap: callers guard
with ``if hooks.SINKS:`` (one attribute read and a falsy test), so an
unchecked run allocates nothing. Registered sinks resolve the calling
execution context themselves (only the machine actually executing has
an active context, so foreign machines' sinks no-op).
"""

from __future__ import annotations

from typing import Any, Protocol


class HookSink(Protocol):  # pragma: no cover - typing aid
    def signal(self, key: tuple) -> None: ...
    def observe(self, key: tuple) -> None: ...


#: registered sinks (one per checked machine); empty = checking off
SINKS: list[Any] = []


def signal(key: tuple) -> None:
    """Publish the calling context's clock under ``key``."""
    for sink in SINKS:
        sink.signal(key)


def observe(key: tuple) -> None:
    """Join every clock published under ``key`` into the caller."""
    for sink in SINKS:
        sink.observe(key)


def register(sink: Any) -> None:
    SINKS.append(sink)


def unregister(sink: Any) -> None:
    if sink in SINKS:
        SINKS.remove(sink)
