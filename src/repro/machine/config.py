"""Re-export of the configuration dataclasses.

The canonical definitions live in :mod:`repro.params` (a leaf module)
so that the CMMU and processor packages can import their parameter
types without creating an import cycle through ``repro.machine``.
"""

from repro.params import (
    CmmuParams,
    MachineConfig,
    NetworkParams,
    ProcessorParams,
)

__all__ = ["CmmuParams", "MachineConfig", "NetworkParams", "ProcessorParams"]
