"""Machine assembly and configuration."""

from repro.machine.config import (
    CmmuParams,
    MachineConfig,
    NetworkParams,
    ProcessorParams,
)
from repro.machine.machine import Machine, Node

__all__ = [
    "CmmuParams",
    "Machine",
    "MachineConfig",
    "NetworkParams",
    "Node",
    "ProcessorParams",
]
