"""Node assembly: build a whole Alewife machine from a config."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cmmu.interface import Cmmu
from repro.params import MachineConfig
from repro.memory.address import make_addr
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceEngine
from repro.memory.directory import Directory
from repro.memory.store import BackingStore
from repro.network.fabric import Network
from repro.network.topology import Mesh2D, Torus2D
from repro.proc.processor import Processor
from repro.sim.engine import Resource, Simulator


@dataclass
class Node:
    """One Alewife node: processor + cache + directory + CMMU."""

    node_id: int
    processor: Processor
    cache: Cache
    directory: Directory
    cmmu: Cmmu


class Machine:
    """A simulated Alewife machine.

    Owns the simulator, the interconnect, the coherence engine, the
    backing store, and one :class:`Node` per processor. The runtime
    system (``repro.runtime``) layers threads, synchronization, and
    scheduling on top.
    """

    def __init__(self, config: MachineConfig | None = None, shard=None) -> None:
        self.config = config or MachineConfig()
        cfg = self.config
        #: repro.perf.partition.ShardView when this process simulates
        #: one node-range shard of a partitioned run; None when serial
        self.shard = shard
        self.sim = Simulator()
        mesh_cls = Torus2D if cfg.network.topology == "torus" else Mesh2D
        self.mesh = mesh_cls(cfg.n_nodes)
        self.network = Network(
            self.sim,
            self.mesh,
            hop_latency=cfg.network.hop_latency,
            bandwidth_bytes_per_cycle=cfg.network.bandwidth_bytes_per_cycle,
            local_loopback_latency=cfg.network.local_loopback_latency,
            injection_latency=cfg.network.injection_latency,
        )
        self.store = BackingStore()
        self.coherence = CoherenceEngine(
            self.sim, self.network, line_size=cfg.line_size, params=cfg.coherence
        )
        self.nodes: list[Node] = []
        self._heap_next: list[int] = []
        #: set by repro.runtime.Runtime so observers (metrics
        #: collection, the time-series sampler) can reach the
        #: schedulers without extra wiring
        self.runtime = None
        for nid in range(cfg.n_nodes):
            cache = Cache(nid, capacity_lines=cfg.cache_lines, line_size=cfg.line_size)
            directory = Directory(nid, hw_pointers=cfg.dir_hw_pointers)
            port = Resource(self.sim, f"mem{nid}")
            self.coherence.add_node(nid, cache, directory, port)
            cmmu = Cmmu(
                self.sim, nid, self.network, self.coherence, self.store, cfg.cmmu
            )
            proc = Processor(
                self.sim, nid, cmmu, self.coherence, self.store, cfg.processor
            )
            self.nodes.append(Node(nid, proc, cache, directory, cmmu))
            self._heap_next.append(cfg.line_size)  # keep offset 0 unused
        if cfg.coherence.limitless_trap_on_cpu:
            self.coherence.on_software_trap = self._cpu_trap
        if shard is not None:
            # Full-replica construction: every shard builds the whole
            # machine identically (replicated host setup => identical
            # addresses; sparse caches/directories stay cold off-shard)
            # but only the owned node range executes. A processor is
            # made permanently inert by pinning _dispatch_pending: its
            # kick()/run_thread()/message-arrival hooks become no-ops,
            # so non-owned nodes enqueue work harmlessly and burn no
            # events.
            for node in self.nodes:
                if not shard.owns(node.node_id):
                    node.processor._dispatch_pending = True
            self.network.shard = shard
            self.coherence.shard = shard
            shard.bind(self)

    def _cpu_trap(self, home: int, cycles: int) -> None:
        """LimitLESS software-extension handler: steal ``cycles`` of
        the home processor's time (runs at the next dispatch point,
        ahead of any ready thread)."""
        from repro.proc.effects import Compute

        def trap_body():
            yield Compute(cycles)

        self.processor(home).run_thread(
            trap_body(), label="limitless-trap", front=True
        )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    def processor(self, node: int) -> Processor:
        return self.nodes[node].processor

    def alloc(self, node: int, nbytes: int, align: int | None = None) -> int:
        """Bump-allocate ``nbytes`` of memory homed at ``node``; returns
        the global address. Always at least line-aligned so unrelated
        allocations never share a cache line (no accidental false
        sharing between runtime structures)."""
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        align = align or self.config.line_size
        if align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        align = max(align, self.config.line_size)
        off = (self._heap_next[node] + align - 1) & ~(align - 1)
        self._heap_next[node] = off + nbytes
        return make_addr(node, off)

    def run(self, **kw) -> int:
        """Drain the event queue (delegates to the simulator; on
        partitioned runs, to the shard's window driver)."""
        if self.shard is not None:
            return self.shard.drive_run(self.sim, **kw)
        return self.sim.run(**kw)
