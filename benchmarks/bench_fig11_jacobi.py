"""Fig. 11: Jacobi SOR cycles/iteration on 64 processors, SM vs MP.

Paper shape: SM slightly faster at 32x32, MP slightly faster at
128x128, both by small margins (the crossover follows Fig. 7's copy
crossover damped by the computation-to-communication ratio).
"""

from repro.experiments import fig11_jacobi


def test_bench_fig11_crossover(once):
    res = once(lambda: fig11_jacobi.run())
    by_grid = {r["grid"]: r for r in res.rows}
    small = by_grid["32x32"]
    large = by_grid["128x128"]
    # SM wins at small grids, MP at large
    assert small["mp_over_sm"] > 1.0, small
    assert large["mp_over_sm"] < 1.0, large
    # "by a small amount" — neither side wins by more than ~2x
    assert 0.5 < small["mp_over_sm"] < 2.0
    assert 0.5 < large["mp_over_sm"] < 2.0
    # cost per iteration grows with the grid in both modes
    assert large["cycles_per_iter_sm"] > small["cycles_per_iter_sm"]
    assert large["cycles_per_iter_mp"] > small["cycles_per_iter_mp"]
