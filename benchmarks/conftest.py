"""Shared helpers for the benchmark harness.

Each bench regenerates one paper table/figure inside the simulator.
Simulated cycle counts are deterministic, so every bench runs a
single round; pytest-benchmark reports the wall time of the
simulation while the reproduced table itself is printed and attached
to ``benchmark.extra_info``.
"""

from __future__ import annotations

import pytest

#: reproduced tables collected across the session, echoed in the
#: terminal summary (so `pytest benchmarks/ --benchmark-only | tee ...`
#: captures them even with output capture on)
_TABLES: list[str] = []


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def report(benchmark, result) -> None:
    """Print the reproduced table and attach it to the benchmark."""
    table = result.format_table()
    print()
    print(table)
    _TABLES.append(table)
    benchmark.extra_info["table"] = table
    benchmark.extra_info["exp_id"] = result.exp_id


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.section("reproduced tables (paper vs measured)")
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture
def once(benchmark):
    """Fixture combining run_once + report: ``res = once(fn)``."""

    def _run(fn):
        result = run_once(benchmark, fn)
        report(benchmark, result)
        return result

    return _run
