"""Ablation: weak ordering (store buffer) on the Fig. 7 copy loop.

§2.2 claims data-transfer latency "can often be tolerated through
mechanisms like weak ordering and prefetching". This bench gives the
shared-memory push-copy a store buffer and measures how much of the
DMA mechanism's advantage it recovers: buffered stores pipeline the
per-line write transactions instead of blocking on each, at the cost
of a fence at the end (and of sequential consistency in between).
"""

from repro.analysis.metrics import mbytes_per_sec
from repro.analysis.tables import ExperimentResult
from repro.experiments.fig7_memcpy import _measure_mp
from repro.machine import Machine, MachineConfig
from repro.params import ProcessorParams
from repro.proc import Compute, Fence, Load, Store
from repro.perf.sweep import SweepPoint, SweepRunner

NBYTES = 4096


def _copy_cycles(store_buffer_depth: int) -> int:
    m = Machine(
        MachineConfig(
            n_nodes=4,
            processor=ProcessorParams(store_buffer_depth=store_buffer_depth),
        )
    )
    src = m.alloc(0, NBYTES)
    dst = m.alloc(1, NBYTES)
    for i in range(NBYTES // 8):
        m.store.write(src + i * 8, i)
    box = []

    def bench():
        for i in range(NBYTES // 8):  # warm source
            yield Load(src + i * 8)
        t0 = m.sim.now
        for i in range(NBYTES // 8):
            v = yield Load(src + i * 8)
            yield Store(dst + i * 8, v)
            yield Compute(1)
        yield Fence()  # data must be globally visible, like the DMA ack
        box.append(m.sim.now - t0)

    m.processor(0).run_thread(bench())
    m.run()
    for i in range(NBYTES // 8):
        assert m.store.read(dst + i * 8) == i
    return box[0]


def sweep(depths=(0, 2, 4, 8, 16)) -> list[SweepPoint]:
    return [
        SweepPoint("bench_ablation_weak_ordering:_copy_cycles",
                   {"store_buffer_depth": d})
        for d in depths
    ]


def run_ablation(depths=(0, 2, 4, 8, 16), jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ablation-weak-ordering",
        title=f"Ablation: store-buffer depth on the {NBYTES}-byte push copy",
        columns=["depth", "cycles", "MB_per_s"],
        notes="depth 0 = sequentially-consistent blocking stores (paper default)",
    )
    points = sweep(depths)
    for point, cycles in zip(points, SweepRunner(jobs).map(points)):
        res.add(depth=point.kwargs["store_buffer_depth"], cycles=cycles,
                MB_per_s=round(mbytes_per_sec(NBYTES, cycles), 1))
    return res


def test_bench_weak_ordering(once):
    res = once(run_ablation)
    by_depth = {r["depth"]: r["cycles"] for r in res.rows}
    # pipelining write transactions helps a lot
    assert by_depth[8] < by_depth[0] * 0.6
    # deeper buffers help monotonically (weakly)
    depths = sorted(by_depth)
    cycles = [by_depth[d] for d in depths]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    # but the single-message DMA copy still wins (home-port occupancy
    # bounds the coherent-store pipeline)
    assert _measure_mp(NBYTES) < by_depth[16]
