"""Wall-clock benchmark harness: how fast does the simulator run on the host?

Three measurements, written to ``BENCH_wallclock.json`` at the repo
root so every PR leaves a perf trajectory behind:

1. **Engine micro-bench** — events/sec pumping a synthetic event mix
   through the current engine *and* through a faithful replica of the
   pre-optimization engine (``@dataclass(order=True)`` heap entries).
   Comparing both on the same host in the same process isolates the
   engine speedup from machine noise.
2. **Workload events/sec** — a fixed jacobi + memcpy + barrier
   workload through the full machine model (coherence, network,
   processors), reporting simulator events *and* simulated cycles per
   wall-clock second.
3. **Macro-vs-micro ablation** — the same workload with macro-effects
   (``ComputeLoad`` / ``LoadComputeStore`` / ``StoreRun`` /
   ``SpinUntilGE`` batches) on and off. Event counts and simulated
   cycles must be identical (the batch runners chain per-element
   events); only the wall clock may differ.
4. **Large-sweep parallel bench** — a 32-point accum sweep big enough
   to clear the SweepRunner's fan-out threshold, serial vs parallel,
   reporting ``parallel_speedup``. On single-cpu hosts this records an
   explicit ``{"skipped": "1 cpu"}`` marker instead of a number.
5. **Partitioned-run bench** — one 256-node jacobi run split across
   node-sharded engines (``repro.perf.partition``) at 2 and 4 shards,
   reporting events/sec and ``speedup_vs_serial`` per shard count plus
   a ``result_identical`` bit (partitioned runs must reproduce the
   serial answer exactly). Single-cpu hosts record the same explicit
   ``{"skipped": "1 cpu"}`` marker as (4).
6. **Sweep wall time** — the full experiment sweep end-to-end at
   ``--jobs 1`` vs ``--jobs N`` through the parallel SweepRunner, and
   cold vs warm through the content-addressed run cache
   (``repro.perf.cache``). Worker-pool startup is measured separately
   from compute: the pool is persistent and shared across all eight
   experiments, so its cost is paid once, not per experiment.

CI regression gate::

    python benchmarks/wallclock.py --check BENCH_wallclock.json

re-measures (1)-(5) and exits non-zero if workload events/sec fell
more than 25% below the committed baseline, if the macro/micro
ablation diverges in events or simulated cycles, or if the parallel
sweep or the partitioned run fails to reach 1.0x speedup / diverges
from serial (both auto-skipped on 1-cpu hosts). ``REPRO_BENCH_JOBS``
overrides the job count when ``--jobs`` is not given.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import ALL_EXPERIMENTS  # noqa: E402
from repro.perf.sweep import default_jobs  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

#: same trimmed parameterizations the CLI's --quick uses
from repro.cli import QUICK_ARGS  # noqa: E402


# ----------------------------------------------------------------------
# 1. Engine micro-bench (current engine vs pre-PR replica)
# ----------------------------------------------------------------------
@dataclass(order=True)
class _LegacyEvent:
    time: int
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class LegacySimulator:
    """Faithful replica of the pre-optimization event loop: dataclass
    heap entries (ordered via ``__lt__`` dispatch), ceil arithmetic on
    every delay, no due-lane. Kept here as the micro-bench yardstick."""

    def __init__(self) -> None:
        self._queue: list[_LegacyEvent] = []
        self._seq = 0
        self.now = 0
        self.events_processed = 0

    def schedule(self, delay, fn):
        when = self.now + int(-(-delay // 1))
        ev = _LegacyEvent(when, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def run(self) -> None:
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self.now = ev.time
            self.events_processed += 1
            ev.fn()


def _pump(sim, schedule, n_events: int) -> float:
    """Drive ``n_events`` through 32 interleaved delay-varying chains;
    returns events/sec. The delay pattern mixes same-cycle, short and
    longer delays the way the machine model does."""
    count = [0]

    def tick(d: int) -> None:
        count[0] += 1
        if count[0] < n_events:
            schedule(d, lambda: tick((d % 7) + 1))

    for i in range(32):
        schedule(i % 5, lambda i=i: tick((i % 7) + 1))
    t0 = time.perf_counter()
    sim.run()
    return sim.events_processed / (time.perf_counter() - t0)


def engine_microbench(n_events: int = 300_000, repeats: int = 3) -> dict:
    best_new = best_legacy = 0.0
    for _ in range(repeats):
        sim = Simulator()
        best_new = max(best_new, _pump(sim, sim.call_after, n_events))
        legacy = LegacySimulator()
        best_legacy = max(best_legacy, _pump(legacy, legacy.schedule, n_events))
    return {
        "events": n_events,
        "events_per_sec": round(best_new),
        "legacy_events_per_sec": round(best_legacy),
        "speedup_vs_legacy": round(best_new / best_legacy, 2),
    }


# ----------------------------------------------------------------------
# 2. Fixed workload events/sec (full machine model)
# ----------------------------------------------------------------------
def _wl_jacobi(macro: bool = True) -> tuple[int, int]:
    from repro.apps.jacobi import JacobiApp
    from repro.experiments.common import make_machine

    events = cycles = 0
    for mode in ("sm", "mp"):
        m = make_machine(16)
        JacobiApp(m, grid_size=64, iters=4, mode=mode, macro=macro).run()
        events += m.sim.events_processed
        cycles += m.sim.now
    return events, cycles


def _wl_memcpy(macro: bool = True) -> tuple[int, int]:
    from repro.experiments.common import make_machine, run_thread_timed
    from repro.proc.effects import ComputeLoad, Load
    from repro.runtime.bulk import BulkTransfer, copy_no_prefetch, copy_prefetch

    nbytes = 4096
    events = cycles = 0
    for copier in (copy_no_prefetch, copy_prefetch):
        m = make_machine(4)
        src = m.alloc(0, nbytes)
        dst = m.alloc(1, nbytes)
        for i in range(nbytes // 8):
            m.store.write(src + i * 8, i)

        def bench(m=m, src=src, dst=dst, copier=copier):
            # warm read of the source block
            if macro:
                yield ComputeLoad(src, nbytes // 8)
            else:
                for i in range(nbytes // 8):
                    yield Load(src + i * 8)
            yield from copier(src, dst, nbytes, macro=macro)

        run_thread_timed(m, bench())
        events += m.sim.events_processed
        cycles += m.sim.now
    m = make_machine(4)
    bulk = BulkTransfer(m)
    src = m.alloc(0, nbytes)
    dst = m.alloc(1, nbytes)

    def mp_bench():
        yield from bulk.send(1, src, dst, nbytes, wait_ack=True)

    run_thread_timed(m, mp_bench())
    return events + m.sim.events_processed, cycles + m.sim.now


def _wl_barrier(macro: bool = True) -> tuple[int, int]:
    from repro.experiments.common import make_machine
    from repro.proc.effects import Compute
    from repro.runtime.barrier import MPTreeBarrier, SMTreeBarrier

    events = cycles = 0
    for make in (
        lambda m: SMTreeBarrier(m, arity=2, macro=macro),
        lambda m: MPTreeBarrier(m, fanout=8),
    ):
        m = make_machine(64)
        barrier = make(m)

        def participant(node: int):
            for _ in range(4):
                yield from barrier.enter(node)
                yield Compute(1)

        for node in range(64):
            m.processor(node).run_thread(participant(node))
        m.run()
        events += m.sim.events_processed
        cycles += m.sim.now
    return events, cycles


def workload_bench(repeats: int = 2, macro: bool = True) -> dict:
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        parts = [_wl_jacobi(macro), _wl_memcpy(macro), _wl_barrier(macro)]
        wall = time.perf_counter() - t0
        if best is None or wall < best[2]:
            events = sum(p[0] for p in parts)
            cycles = sum(p[1] for p in parts)
            best = (events, cycles, wall)
    events, cycles, wall = best
    return {
        "workload": "jacobi(64x64, sm+mp) + memcpy(4KB, 3 impls) + barrier(64p, sm+mp)",
        "macro": macro,
        "events": events,
        "sim_cycles": cycles,
        "wall_sec": round(wall, 3),
        "events_per_sec": round(events / wall),
        "sim_cycles_per_sec": round(cycles / wall),
    }


def ablation_bench(repeats: int = 2) -> dict:
    """Macro-effects on vs off over the same workload. The batch
    runners chain per-element events, so events and simulated cycles
    must match exactly; only wall clock may differ."""
    macro = workload_bench(repeats, macro=True)
    micro = workload_bench(repeats, macro=False)
    return {
        "macro_events_per_sec": macro["events_per_sec"],
        "micro_events_per_sec": micro["events_per_sec"],
        "macro_wall_sec": macro["wall_sec"],
        "micro_wall_sec": micro["wall_sec"],
        "macro_speedup": round(micro["wall_sec"] / macro["wall_sec"], 2),
        "events_identical": macro["events"] == micro["events"],
        "sim_cycles_identical": macro["sim_cycles"] == micro["sim_cycles"],
    }


# ----------------------------------------------------------------------
# Large-sweep parallel bench: does fan-out actually pay off?
# ----------------------------------------------------------------------
def parallel_bench(jobs: int) -> dict:
    """Serial vs parallel over a sweep big enough to clear the
    SweepRunner fan-out threshold (32 accum points). Single-cpu hosts
    get an explicit skip marker instead of a meaningless number."""
    from repro.experiments.common import sweep_map
    from repro.perf.sweep import SweepPoint, parallel_min_points, warm_pool

    if (os.cpu_count() or 1) < 2:
        return {"skipped": "1 cpu"}
    jobs = max(2, jobs)
    sizes = [256 * (1 << (i // 4)) * (4 + i % 4) for i in range(16)]
    points = [
        SweepPoint("repro.experiments.fig8_accum:measure_point",
                   {"impl": impl, "nbytes": nbytes})
        for nbytes in sizes
        for impl in ("sm", "mp")
    ]
    assert len(points) >= parallel_min_points(), "sweep too small to fan out"
    t0 = time.perf_counter()
    serial = sweep_map(points, jobs=1)
    serial_wall = time.perf_counter() - t0
    pool_startup = warm_pool(jobs)
    t0 = time.perf_counter()
    parallel = sweep_map(points, jobs=jobs)
    parallel_wall = time.perf_counter() - t0
    return {
        "sweep_points": len(points),
        "jobs": jobs,
        "serial_wall_sec": round(serial_wall, 3),
        "pool_startup_sec": round(pool_startup, 3),
        "parallel_wall_sec": round(parallel_wall, 3),
        "parallel_speedup": round(serial_wall / parallel_wall, 2),
        "results_identical": parallel == serial,
    }


# ----------------------------------------------------------------------
# Partitioned-run bench: node-sharded engines on one big machine
# ----------------------------------------------------------------------
def partition_bench() -> dict:
    """One 256-node jacobi run, serial vs split across 2 and 4 shard
    workers (``repro.perf.partition``). The sweep runner parallelizes
    *across* points; this parallelizes *within* a single run, which is
    what a 1024-node simulation actually needs. Single-cpu hosts get
    the explicit skip marker — shard workers would just time-slice."""
    if (os.cpu_count() or 1) < 2:
        return {"skipped": "1 cpu"}
    from repro.apps.jacobi import JacobiApp
    from repro.experiments.common import make_machine
    from repro.perf.partition import run_partitioned

    n_nodes = 256
    kwargs = {"mode": "mp", "grid_size": 64, "n_nodes": n_nodes,
              "iters": 4, "validate": False}
    # in-process serial reference: the wall-clock yardstick and the
    # model event count (partitioned shards process the same model
    # events, plus window-barrier overhead the speedup has to beat)
    t0 = time.perf_counter()
    m = make_machine(n_nodes)
    app = JacobiApp(m, grid_size=kwargs["grid_size"],
                    iters=kwargs["iters"], mode=kwargs["mode"])
    _, cycles = app.run()
    serial_wall = time.perf_counter() - t0
    serial_result = app.cycles_per_iteration(cycles)
    events = m.sim.events_processed
    out = {
        "workload": f"fig11 jacobi mp 64x64, {n_nodes} nodes, 4 iters",
        "events": events,
        "serial_wall_sec": round(serial_wall, 3),
        "serial_events_per_sec": round(events / serial_wall),
        "shards": {},
    }
    for k in (2, 4):
        t0 = time.perf_counter()
        result = run_partitioned(
            "repro.experiments.fig11_jacobi:measure_jacobi",
            kwargs, n_nodes, k,
        )
        wall = time.perf_counter() - t0
        out["shards"][str(k)] = {
            "wall_sec": round(wall, 3),
            "events_per_sec": round(events / wall),
            "speedup_vs_serial": round(serial_wall / wall, 2),
            "result_identical": result == serial_result,
        }
    return out


# ----------------------------------------------------------------------
# 3. Full experiment sweep: serial vs parallel, cold vs warm cache
# ----------------------------------------------------------------------
def sweep_bench(jobs: int) -> dict:
    import tempfile

    from repro.perf.cache import RunCache, activate
    from repro.perf.sweep import warm_pool

    def run_all(n: int) -> tuple[float, str]:
        t0 = time.perf_counter()
        tables = [
            fn(jobs=n, **QUICK_ARGS[exp_id]).format_table()
            for exp_id, fn in ALL_EXPERIMENTS.items()
        ]
        return time.perf_counter() - t0, "\n\n".join(tables)

    serial, _ = run_all(1)
    # warm the persistent pool first so pool startup is charged once,
    # separately from the compute time of the 8-experiment sweep
    pool_startup = warm_pool(jobs)
    parallel, _ = run_all(jobs)
    with tempfile.TemporaryDirectory() as td:
        cache = RunCache(td)
        with activate(cache):
            cold, cold_tables = run_all(jobs)
            warm, warm_tables = run_all(jobs)
        cache_stats = cache.stats.snapshot()
    return {
        "experiments": list(ALL_EXPERIMENTS),
        "jobs": jobs,
        "serial_wall_sec": round(serial, 2),
        "pool_startup_sec": round(pool_startup, 3),
        "parallel_wall_sec": round(parallel, 2),
        "parallel_speedup": round(serial / parallel, 2),
        "cache_cold_wall_sec": round(cold, 2),
        "cache_warm_wall_sec": round(warm, 3),
        "cache_warm_speedup": round(cold / max(warm, 1e-9), 1),
        "cache_tables_identical": cold_tables == warm_tables,
        "cache": cache_stats,
    }


# ----------------------------------------------------------------------
def measure(jobs: int, quick: bool, skip_sweep: bool = False) -> dict:
    n_events = 60_000 if quick else 300_000
    repeats = 1 if quick else 3
    out = {
        "schema": 3,
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "engine_microbench": engine_microbench(n_events, repeats),
        # best-of-2 even in quick mode: the regression gate compares a
        # quick CI measurement against a full-run baseline, and a
        # single sample on a contended runner can false-trip the 25%
        # floor on host noise alone
        "workload": workload_bench(2 if quick else 3),
        "macro_ablation": ablation_bench(1 if quick else 2),
        "parallel": parallel_bench(jobs),
        "partition": partition_bench(),
    }
    if not skip_sweep:
        out["sweep"] = sweep_bench(jobs)
    return out


def check_against(baseline_path: Path, measured: dict, tolerance: float = 0.25) -> int:
    baseline = json.loads(baseline_path.read_text())
    base_eps = baseline["workload"]["events_per_sec"]
    got_eps = measured["workload"]["events_per_sec"]
    floor = base_eps * (1 - tolerance)
    print(f"workload events/sec: baseline={base_eps:,} measured={got_eps:,} "
          f"floor(-{tolerance:.0%})={floor:,.0f}")
    failed = False
    if got_eps < floor:
        print("FAIL: events/sec regressed more than "
              f"{tolerance:.0%} vs the committed baseline")
        failed = True
    abl = measured["macro_ablation"]
    if not (abl["events_identical"] and abl["sim_cycles_identical"]):
        print(f"FAIL: macro/micro ablation diverged: {abl}")
        failed = True
    else:
        print(f"macro ablation: identical events+cycles, "
              f"{abl['macro_speedup']}x wall speedup over micro")
    par = measured["parallel"]
    if par.get("skipped"):
        print(f"parallel sweep gate: skipped ({par['skipped']})")
    elif not par["results_identical"]:
        print(f"FAIL: parallel sweep results diverged from serial: {par}")
        failed = True
    elif par["parallel_speedup"] < 1.0:
        print(f"FAIL: parallel sweep slower than serial: {par}")
        failed = True
    else:
        print(f"parallel sweep: {par['parallel_speedup']}x speedup over "
              f"{par['sweep_points']} points at jobs={par['jobs']}")
    part = measured.get("partition", {})
    if part.get("skipped"):
        print(f"partition gate: skipped ({part['skipped']})")
    else:
        best = max(s["speedup_vs_serial"] for s in part["shards"].values())
        if not all(s["result_identical"] for s in part["shards"].values()):
            print(f"FAIL: partitioned run diverged from serial: {part}")
            failed = True
        elif best < 1.0:
            print(f"FAIL: no shard count beat serial wall-clock: {part}")
            failed = True
        else:
            print(f"partition: best {best}x over serial on "
                  f"{part['workload']}")
    if failed:
        return 1
    ratio = measured["engine_microbench"]["speedup_vs_legacy"]
    print(f"engine speedup vs pre-PR replica: {ratio}x")
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="parallel job count for the sweep comparison "
                    "(default: REPRO_BENCH_JOBS / cpu count / REPRO_JOBS)")
    ap.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_wallclock.json",
                    help="where to write the JSON result")
    ap.add_argument("--quick", action="store_true",
                    help="smaller event counts / single repeat (CI-sized)")
    ap.add_argument("--skip-sweep", action="store_true",
                    help="only the micro-bench and workload measurements")
    ap.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                    help="compare against a committed baseline JSON and exit "
                    "non-zero on >25%% events/sec regression (implies "
                    "--skip-sweep; does not overwrite the baseline)")
    args = ap.parse_args(argv)
    # REPRO_BENCH_JOBS lets CI pin the bench fan-out without touching
    # the command line (the same workflow runs on differently-sized
    # runners); --jobs still wins when given explicitly
    env_jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0") or "0")
    jobs = args.jobs or env_jobs or default_jobs()

    measured = measure(jobs, args.quick, skip_sweep=args.skip_sweep or args.check)
    print(json.dumps(measured, indent=2))
    if args.check is not None:
        return check_against(args.check, measured)
    args.out.write_text(json.dumps(measured, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
