"""Extension bench (paper §6 future work): shared-object access policy.

Measures the move-the-data vs move-the-computation crossover as the
write fraction of a 15-caller object workload varies. Read-only
sharing favours coherent caching (seqlock reads are cache hits
everywhere); any significant write rate favours shipping the method
in a message (writes invalidate every reader and overflow the
LimitLESS pointers).
"""

from repro.analysis.tables import ExperimentResult
from repro.ext import ObjectSpace
from repro.machine import Machine, MachineConfig
from repro.proc import Compute

N_NODES = 16
CALLS = 6


def _run(policy: str, write_pct: int) -> int:
    m = Machine(MachineConfig(n_nodes=N_NODES))
    space = ObjectSpace(m)
    obj = space.create(
        home=0,
        fields={"count": 0, "sum": 0},
        methods={
            "add": lambda f, x: (None, {"count": f["count"] + 1, "sum": f["sum"] + x}),
            "read": lambda f: (f["count"], {}),
        },
        read_only={"read"},
    )

    def caller(node):
        for i in range(CALLS):
            if (i * 997 + node) % 100 < write_pct:
                yield from obj.invoke(node, "add", (1,), policy=policy)
            else:
                yield from obj.invoke(node, "read", policy=policy)
            yield Compute(40)

    for node in range(1, N_NODES):
        m.processor(node).run_thread(caller(node))
    m.run()
    return m.sim.now


def run_bench(write_pcts=(0, 20, 90)) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ext-objects",
        title="Extension: shared-object policy vs write fraction (15 callers)",
        columns=["write_pct", "data_cycles", "compute_cycles", "winner"],
        notes="'data' = coherent field access; 'compute' = one-message method ship",
    )
    for pct in write_pcts:
        d = _run("data", pct)
        c = _run("compute", pct)
        res.add(
            write_pct=pct,
            data_cycles=d,
            compute_cycles=c,
            winner="data" if d < c else "compute",
        )
    return res


def test_bench_object_policy_crossover(once):
    res = once(run_bench)
    rows = {r["write_pct"]: r for r in res.rows}
    # read-only sharing: coherent caching wins clearly
    assert rows[0]["winner"] == "data"
    assert rows[0]["data_cycles"] * 2 < rows[0]["compute_cycles"]
    # write-hot: method shipping wins clearly
    assert rows[90]["winner"] == "compute"
    assert rows[90]["compute_cycles"] * 2 < rows[90]["data_cycles"]
    # the compute policy's cost is nearly write-fraction-insensitive
    compute = [r["compute_cycles"] for r in res.rows]
    assert max(compute) < 2 * min(compute)
