"""Ablation: Sparcle hardware contexts (switch-on-miss latency hiding).

Alewife's processor (Sparcle) can hold several hardware contexts and
switch in ~14 cycles when a memory reference misses, overlapping one
thread's remote latency with another's compute — the third latency-
tolerance mechanism alongside prefetching and weak ordering that §2.2
alludes to. This bench loads a node with miss-bound threads and
sweeps the context count.
"""

from repro.analysis.tables import ExperimentResult
from repro.machine import Machine, MachineConfig
from repro.params import ProcessorParams
from repro.perf.sweep import SweepPoint, SweepRunner
from repro.proc import Compute, Load

THREADS = 4
MISSES_PER_THREAD = 25


def _run(hw_contexts: int) -> tuple[int, int]:
    m = Machine(
        MachineConfig(
            n_nodes=8, processor=ProcessorParams(hw_contexts=hw_contexts)
        )
    )
    # each thread streams over an array on a different remote node
    bases = [m.alloc(node, 64 * MISSES_PER_THREAD) for node in range(1, THREADS + 1)]
    for b in bases:
        for i in range(MISSES_PER_THREAD):
            m.store.write(b + i * 64, i)
    sums = []

    def walker(base):
        total = 0
        for i in range(MISSES_PER_THREAD):
            v = yield Load(base + i * 64)
            total += v
            yield Compute(4)
        return total

    for b in bases:
        m.processor(0).run_thread(walker(b), on_finish=sums.append)
    m.run()
    expected = sum(range(MISSES_PER_THREAD))
    assert sums == [expected] * THREADS
    return m.sim.now, m.processor(0).stats.miss_switches


def sweep(context_counts=(1, 2, 4, 8)) -> list[SweepPoint]:
    return [
        SweepPoint("bench_ablation_multithread:_run", {"hw_contexts": hw})
        for hw in context_counts
    ]


def run_ablation(context_counts=(1, 2, 4, 8), jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ablation-multithread",
        title=f"Ablation: Sparcle hardware contexts ({THREADS} miss-bound threads)",
        columns=["hw_contexts", "cycles", "switches", "speedup_vs_1"],
        notes="remote-miss latency hidden by fast context switching",
    )
    base = None
    points = sweep(context_counts)
    for point, (cycles, switches) in zip(points, SweepRunner(jobs).map(points)):
        hw = point.kwargs["hw_contexts"]
        if base is None:
            base = cycles
        res.add(
            hw_contexts=hw,
            cycles=cycles,
            switches=switches,
            speedup_vs_1=round(base / cycles, 2),
        )
    return res


def test_bench_hw_contexts(once):
    res = once(run_ablation)
    rows = {r["hw_contexts"]: r for r in res.rows}
    # single context: no switching, fully serialized misses
    assert rows[1]["switches"] == 0
    # adding contexts monotonically (weakly) improves running time
    cycles = [rows[h]["cycles"] for h in (1, 2, 4, 8)]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    # four contexts for four threads give a solid speedup
    assert rows[4]["speedup_vs_1"] > 1.5
    # more contexts than threads adds nothing
    assert rows[8]["cycles"] == rows[4]["cycles"]
