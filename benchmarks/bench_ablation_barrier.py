"""Ablation: combining-tree shape for both barrier mechanisms.

The paper picked a *binary* tree for the shared-memory barrier
("carefully crafted to minimize the total number of message
exchanges") and a flat two-level *eight-ary* tree for the message
barrier. This bench sweeps the arity/fanout of each on 64 processors
to show those are the right ends of the trade-off: SM trees want low
arity (spinning parents serialize on each child's line transfer),
message trees want high fanout (handler entry is cheap, so wide
combining shortens the tree).
"""

from repro.analysis.tables import ExperimentResult
from repro.experiments.barrier_exp import measure_barrier
from repro.perf.sweep import SweepPoint, SweepRunner
from repro.runtime.barrier import MPTreeBarrier, SMTreeBarrier


def measure_shape(mechanism: str, param: int) -> int:
    """One sweep point: barrier latency for a tree shape (picklable)."""
    if mechanism == "shared-memory":
        return measure_barrier(lambda m: SMTreeBarrier(m, arity=param))
    return measure_barrier(lambda m: MPTreeBarrier(m, fanout=param))


def sweep(arities=(2, 4, 8), fanouts=(2, 4, 8, 16)) -> list[SweepPoint]:
    return [
        SweepPoint("bench_ablation_barrier:measure_shape",
                   {"mechanism": mech, "param": p})
        for mech, params in (("shared-memory", arities), ("message-passing", fanouts))
        for p in params
    ]


def run_ablation(arities=(2, 4, 8), fanouts=(2, 4, 8, 16), jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ablation-barrier",
        title="Ablation: combining-tree shape, 64 processors",
        columns=["mechanism", "shape", "cycles"],
        notes="paper chose SM arity 2 and MP fanout 8",
    )
    points = sweep(arities, fanouts)
    for point, cycles in zip(points, SweepRunner(jobs).map(points)):
        mech, p = point.kwargs["mechanism"], point.kwargs["param"]
        shape = f"{p}-ary" if mech == "shared-memory" else f"fanout {p}"
        res.add(mechanism=mech, shape=shape, cycles=cycles)
    return res


def test_bench_barrier_shapes(once):
    res = once(run_ablation)
    sm = {r["shape"]: r["cycles"] for r in res.rows if r["mechanism"] == "shared-memory"}
    mp = {r["shape"]: r["cycles"] for r in res.rows if r["mechanism"] == "message-passing"}
    # low-arity SM trees win: spinning parents serialize on each
    # child's line transfer, so wide SM trees lose
    assert sm["2-ary"] <= min(sm.values()) * 1.15
    assert sm["8-ary"] > sm["2-ary"]
    # in our calibration the MP optimum sits at moderate fanout
    # (handler serialization at wide leaders costs more than depth);
    # the paper's fanout-8 choice still beats EVERY shared-memory tree
    assert mp["fanout 8"] < min(sm.values())
    assert min(mp.values()) < min(sm.values())
    # extreme fanout degrades (root handler becomes the bottleneck)
    assert mp["fanout 16"] > min(mp.values())
