"""Ablation: prefetch depth in the SM accum loop.

The paper's accum prefetches one cache block ahead. Deeper prefetch
hides more of the remote latency — until the home node's occupancy
becomes the bottleneck. This bench sweeps the prefetch distance.
"""

from typing import Generator

from repro.analysis.tables import ExperimentResult
from repro.apps.accum import ADD_COST, fill_array
from repro.experiments.common import make_machine, run_thread_timed
from repro.perf.sweep import SweepPoint, SweepRunner
from repro.proc.effects import Compute, Load, Prefetch


def accum_prefetch_depth(array_addr: int, n_elems: int, depth: int) -> Generator:
    """accum inner loop prefetching ``depth`` blocks ahead."""
    per_line = 2  # doublewords per 16-byte line
    total = 0
    for i in range(n_elems):
        if i % per_line == 0:
            ahead = i + depth * per_line
            if 0 < depth and ahead < n_elems:
                yield Prefetch(array_addr + ahead * 8)
        v = yield Load(array_addr + i * 8)
        total += v
        yield Compute(ADD_COST)
    return total


def _measure(depth: int, nbytes: int = 4096) -> int:
    m = make_machine(4)
    n_elems = nbytes // 8
    arr = m.alloc(1, nbytes)
    values = fill_array(m, arr, n_elems)

    def bench():
        t0 = m.sim.now
        total = yield from accum_prefetch_depth(arr, n_elems, depth)
        assert total == sum(values)
        return m.sim.now - t0

    cycles, _ = run_thread_timed(m, bench())
    return cycles


def sweep(depths=(0, 1, 2, 4, 8)) -> list[SweepPoint]:
    return [SweepPoint("bench_ablation_prefetch:_measure", {"depth": d}) for d in depths]


def run_ablation(depths=(0, 1, 2, 4, 8), jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ablation-prefetch",
        title="Ablation: prefetch depth in SM accum (4 KB remote array)",
        columns=["depth_blocks", "cycles"],
        notes="depth 0 = no prefetching; paper's loop uses depth 1",
    )
    points = sweep(depths)
    for point, cycles in zip(points, SweepRunner(jobs).map(points)):
        res.add(depth_blocks=point.kwargs["depth"], cycles=cycles)
    return res


def test_bench_prefetch_depth(once):
    res = once(run_ablation)
    by_depth = {r["depth_blocks"]: r["cycles"] for r in res.rows}
    # any prefetching beats none for this all-loads loop
    assert by_depth[1] < by_depth[0]
    # deeper prefetch should not be catastrophically worse than depth 1
    assert by_depth[4] < by_depth[0]
