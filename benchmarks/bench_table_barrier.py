"""§4.2 barrier table: SM combining tree vs MP combining tree.

Paper (64 procs): SM six-level binary tree ≈1650 cycles; MP two-level
eight-ary tree ≈660 cycles — messages win by ~2.5x.
"""

from repro.experiments import barrier_exp


def test_bench_barrier_table(once):
    res = once(lambda: barrier_exp.run(n_nodes=64))
    rows = {r["implementation"]: r["cycles"] for r in res.rows}
    sm = rows["shared-memory (binary tree)"]
    mp = rows["message-passing (8-ary tree)"]
    # shape: messages clearly faster, within the paper's ballpark
    assert mp < sm / 1.8, f"MP barrier should win ~2.5x (got {sm} vs {mp})"
    assert 500 <= sm <= 4000, f"SM barrier {sm} far from paper's 1650"
    assert 150 <= mp <= 1500, f"MP barrier {mp} far from paper's 660"
