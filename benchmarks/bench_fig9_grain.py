"""Fig. 9: grain speedup on 64 processors, hybrid vs SM-only scheduler.

Paper: speedups 12.0 vs 6.3 at l=0 (hybrid ~2x) and 48.6 vs 36.4 at
l=1000 (hybrid ~1.33x) for n=12.
"""

from repro.experiments import fig9_grain

#: trimmed sweep for the benchmark harness (the CLI runs the full one)
BENCH_DELAYS = (0, 200, 1000)


def test_bench_fig9_speedups(once):
    res = once(lambda: fig9_grain.run(delays=BENCH_DELAYS))
    by_l = {r["delay_l"]: r for r in res.rows}
    # fine grain: hybrid ~2x better
    assert by_l[0]["hybrid_over_sm"] > 1.5
    # advantage shrinks monotonically with grain size
    ratios = [by_l[l]["hybrid_over_sm"] for l in BENCH_DELAYS]
    assert ratios[0] > ratios[-1]
    # coarse grain: both schedulers scale well, hybrid still ahead
    assert by_l[1000]["speedup_hybrid"] > 40
    assert by_l[1000]["speedup_sm"] > 30
    assert by_l[1000]["hybrid_over_sm"] > 1.0
    # absolute ballparks vs the paper
    assert 8 <= by_l[0]["speedup_hybrid"] <= 20
    assert 4 <= by_l[0]["speedup_sm"] <= 11
