"""Extension bench: all-reduce (the §4.2 barrier with data attached).

A global sum per "iteration" across 64 processors — the reduction at
the heart of iterative solvers. Bundling each partial sum with its
combining signal (one message per tree edge) extends the message
barrier's advantage, because the SM version pays coherence traffic
for the value words on top of the flag words.
"""

import operator

from repro.analysis.tables import ExperimentResult
from repro.machine import Machine, MachineConfig
from repro.proc import Compute
from repro.runtime.reduce import MPTreeReduce, SMTreeReduce


def _measure(kind: str, n_nodes: int = 64, episodes: int = 4) -> int:
    m = Machine(MachineConfig(n_nodes=n_nodes))
    red = (
        SMTreeReduce(m, arity=2)
        if kind == "sm"
        else MPTreeReduce(m, operator.add, fanout=8)
    )
    enters, leaves = {}, {}
    totals = []

    def participant(node):
        for ep in range(episodes):
            enters.setdefault(ep, []).append(m.sim.now)
            total = yield from red.reduce(node, node + ep, operator.add)
            leaves.setdefault(ep, []).append(m.sim.now)
            totals.append((ep, total))
            yield Compute(2)

    for node in range(n_nodes):
        m.processor(node).run_thread(participant(node))
    m.run()
    for ep, total in totals:
        assert total == sum(range(n_nodes)) + n_nodes * ep, "wrong reduction"
    last = episodes - 1
    return max(leaves[last]) - max(enters[last])


def run_bench(n_nodes: int = 64) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ext-reduce",
        title=f"Extension: all-reduce latency, {n_nodes} processors",
        columns=["mechanism", "cycles"],
        notes="steady-state episode, sum of one value per node",
    )
    res.add(mechanism="shared-memory (binary tree)", cycles=_measure("sm", n_nodes))
    res.add(mechanism="message-passing (8-ary tree)", cycles=_measure("mp", n_nodes))
    return res


def test_bench_reduce(once):
    res = once(run_bench)
    cyc = dict(zip(res.column("mechanism"), res.column("cycles")))
    sm = cyc["shared-memory (binary tree)"]
    mp = cyc["message-passing (8-ary tree)"]
    # messages keep a clear advantage when data rides the signals
    assert mp < sm / 1.8
    # and a reduction costs at least as much as the §4.2 barrier
    from repro.experiments.barrier_exp import measure_barrier
    from repro.runtime.barrier import MPTreeBarrier

    bare = measure_barrier(lambda m: MPTreeBarrier(m, fanout=8), n_nodes=64)
    assert mp >= bare * 0.9
