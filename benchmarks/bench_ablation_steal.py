"""Ablation: steal backoff policy in the hybrid scheduler.

Fine-grained `grain` (l=0) is where stealing policy matters most: an
aggressive idle loop floods busy nodes with request interrupts, an
over-patient one starves thieves. Sweeps the initial/backoff-cap
pair.
"""

from repro.analysis.tables import ExperimentResult
from repro.apps.grain import grain_parallel, sequential_cycles
from repro.experiments.common import make_machine
from repro.runtime.rt import Runtime, RuntimeParams
from repro.perf.sweep import SweepPoint, SweepRunner

POLICIES = (
    ("aggressive (25/100)", 25, 100),
    ("default (50/800)", 50, 800),
    ("patient (200/3200)", 200, 3200),
)


def _speedup(initial: int, cap: int, delay: int = 0, depth: int = 11) -> float:
    m = make_machine(64)
    params = RuntimeParams(steal_backoff=initial, steal_backoff_max=cap)
    rt = Runtime(m, scheduler="hybrid", params=params)
    _res, cycles = rt.run_to_completion(
        0, lambda rt, nd: grain_parallel(rt, nd, depth, delay)
    )
    return sequential_cycles(depth, delay) / cycles


def sweep(policies=POLICIES) -> list[SweepPoint]:
    return [
        SweepPoint("bench_ablation_steal:_speedup", {"initial": i, "cap": c})
        for _name, i, c in policies
    ]


def run_ablation(jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ablation-steal",
        title="Ablation: hybrid steal backoff policy (grain, l=0, n=11)",
        columns=["policy", "speedup"],
        notes="fine-grained grain on 64 processors",
    )
    points = sweep()
    for (name, _i, _c), speedup in zip(POLICIES, SweepRunner(jobs).map(points)):
        res.add(policy=name, speedup=round(speedup, 1))
    return res


def test_bench_steal_policy(once):
    res = once(run_ablation)
    speedups = {r["policy"]: r["speedup"] for r in res.rows}
    # all policies must still deliver real speedup
    for name, s in speedups.items():
        assert s > 3, f"{name} collapsed to {s}"
    # eagerness pays at fine grain: each step toward patience loses
    assert (
        speedups["aggressive (25/100)"]
        > speedups["default (50/800)"]
        > speedups["patient (200/3200)"]
    )
