"""Ablation: MSI (Alewife-like) vs MESI coherence protocol.

MESI's exclusive-clean state removes the second transaction from the
private read-then-write pattern. The shared-memory runtime is full of
that pattern (queue control words are read, then updated), so the
SM-only scheduler gains the most — quantifying how much of the
paper's §4.5 gap is protocol-dependent vs mechanism-inherent.
"""

from repro.analysis.tables import ExperimentResult
from repro.apps.grain import grain_parallel, sequential_cycles
from repro.machine import Machine, MachineConfig
from repro.memory import CoherenceParams
from repro.perf.sweep import SweepPoint, SweepRunner
from repro.runtime import Runtime


def _grain_speedup(kind: str, mesi: bool, depth: int = 11, delay: int = 0) -> float:
    m = Machine(
        MachineConfig(n_nodes=64, coherence=CoherenceParams(mesi=mesi))
    )
    rt = Runtime(m, scheduler=kind)
    _res, cycles = rt.run_to_completion(
        0, lambda rt, nd: grain_parallel(rt, nd, depth, delay)
    )
    return sequential_cycles(depth, delay) / cycles


def sweep() -> list[SweepPoint]:
    return [
        SweepPoint("bench_ablation_mesi:_grain_speedup", {"kind": kind, "mesi": mesi})
        for mesi in (False, True)
        for kind in ("sm", "hybrid")
    ]


def run_ablation(jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ablation-mesi",
        title="Ablation: MSI vs MESI (grain n=11, l=0, 64 procs)",
        columns=["protocol", "speedup_sm", "speedup_hybrid", "hybrid_over_sm"],
        notes="MESI helps the queue-heavy SM runtime more than the hybrid one",
    )
    points = sweep()
    measured = dict(zip(((p.kwargs["mesi"], p.kwargs["kind"]) for p in points),
                        SweepRunner(jobs).map(points)))
    for name, mesi in (("MSI (paper-like)", False), ("MESI", True)):
        sm = measured[(mesi, "sm")]
        hy = measured[(mesi, "hybrid")]
        res.add(
            protocol=name,
            speedup_sm=round(sm, 1),
            speedup_hybrid=round(hy, 1),
            hybrid_over_sm=round(hy / sm, 2),
        )
    return res


def test_bench_mesi_ablation(once):
    res = once(run_ablation)
    rows = {r["protocol"]: r for r in res.rows}
    msi, mesi = rows["MSI (paper-like)"], rows["MESI"]
    # MESI never hurts either scheduler
    assert mesi["speedup_sm"] >= msi["speedup_sm"] * 0.9
    assert mesi["speedup_hybrid"] >= msi["speedup_hybrid"] * 0.9
    # the hybrid advantage persists even under the friendlier protocol
    assert mesi["hybrid_over_sm"] > 1.0
