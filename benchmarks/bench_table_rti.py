"""§4.3 remote thread invocation table: Tinvoker / Tinvokee.

Paper: SM 353/805 cycles; message-based 17/244 cycles.
"""

from repro.experiments import rti_exp


def test_bench_rti_table(once):
    res = once(lambda: rti_exp.run(n_nodes=64))
    rows = {r["implementation"]: r for r in res.rows}
    sm = rows["shared-memory"]
    mp = rows["message-based"]
    # the invoker is freed orders of magnitude sooner with messages
    assert mp["Tinvoker"] < sm["Tinvoker"] / 10
    # the invoked thread also starts much sooner
    assert mp["Tinvokee"] < sm["Tinvokee"] / 2
    # absolute ballparks vs the paper
    assert 150 <= sm["Tinvoker"] <= 700, sm
    assert 5 <= mp["Tinvoker"] <= 40, mp
