"""Fig. 8: accum (sum a remote array), SM vs MP.

Paper shape: MP ~2x slower at small blocks narrowing toward ~1.3x at
large blocks; SM wins across the whole range.
"""

from repro.experiments import fig8_accum


def test_bench_fig8_curves(once):
    res = once(lambda: fig8_accum.run())
    sm = {r["block_bytes"]: r["cycles"] for r in res.rows if r["implementation"] == "shared-memory"}
    mp = {r["block_bytes"]: r["cycles"] for r in res.rows if r["implementation"] == "message-passing"}
    sizes = sorted(sm)
    # SM wins at every size
    for s in sizes:
        assert sm[s] < mp[s], f"SM should win accum at {s} B"
    # the MP handicap narrows as blocks grow
    small_ratio = mp[sizes[0]] / sm[sizes[0]]
    large_ratio = mp[sizes[-1]] / sm[sizes[-1]]
    assert large_ratio < small_ratio
    assert 1.1 <= large_ratio <= 2.2, f"large-block ratio {large_ratio}"
