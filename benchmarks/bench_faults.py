"""Bench: reliable MP primitives under injected packet loss.

Regenerates the fault-injection degradation table — the Fig. 7 bulk
memcpy and the §4.2 MP barrier rerun in reliable mode (sequence
numbers, acks, retransmission) at increasing drop rates — and checks
the qualitative shape: lossless reliable runs pay no retries, lossy
runs complete correctly but slow down monotonically-ish with loss.
"""

from repro.experiments import faults_exp


def test_bench_faults(once):
    res = once(faults_exp.run)
    by_workload: dict[str, list[dict]] = {}
    for r in res.rows:
        by_workload.setdefault(r["workload"], []).append(r)
    assert set(by_workload) == {"memcpy", "barrier"}
    for rows in by_workload.values():
        lossless = [r for r in rows if r["drop_pct"] == 0]
        lossy = [r for r in rows if r["drop_pct"] > 0]
        # no faults, no retries, unit slowdown on the clean fabric
        assert all(r["retries"] == 0 and r["faults"] == 0 for r in lossless)
        assert all(r["slowdown_x"] == 1 for r in lossless)
        # every lossy run still completed (run() verifies data and
        # barrier release internally) and never beat the clean run
        assert all(r["slowdown_x"] >= 1 for r in lossy)
        # the highest loss rate actually exercised the retry path
        assert max(r["retries"] for r in lossy) > 0
