"""Ablation: TTAS spin lock vs MCS queue lock under contention.

The paper cites Mellor-Crummey & Scott's scalable synchronization
work. On our machine model the directory serves same-line
transactions FIFO and the TTAS lock uses exponential backoff, which
together make TTAS throughput-competitive (it degenerates into an
approximate ticket lock). What MCS buys — here exactly as on real
hardware — is *fairness*: acquisition latency is bounded and
near-uniform because waiters are granted strictly in arrival order,
while TTAS backoff leaves unlucky waiters parked through many
handoffs. The bench measures both throughput and the worst/mean
acquisition-latency ratio.
"""

from repro.analysis.tables import ExperimentResult
from repro.machine import Machine, MachineConfig
from repro.proc import Compute, Load, Store
from repro.runtime import SpinLock
from repro.runtime.mcs import MCSLock
from repro.perf.sweep import SweepPoint, SweepRunner

ROUNDS = 6
CS_WORK = 20


def _contend(lock_kind: str, n_contenders: int) -> tuple[int, float]:
    """Returns (total cycles, worst/mean acquisition latency)."""
    m = Machine(MachineConfig(n_nodes=16))
    counter = m.alloc(0, 8)
    if lock_kind == "ttas":
        lock = SpinLock(m.alloc(0, 8))

        def acquire(node):
            yield from lock.acquire()

        def release(node):
            yield from lock.release()
    else:
        mcs = MCSLock(m)

        def acquire(node):
            yield from mcs.acquire(node)

        def release(node):
            yield from mcs.release(node)

    waits: list[int] = []

    def worker(node):
        for _ in range(ROUNDS):
            t0 = m.sim.now
            yield from acquire(node)
            waits.append(m.sim.now - t0)
            v = yield Load(counter)
            yield Compute(CS_WORK)
            yield Store(counter, v + 1)
            yield from release(node)

    for node in range(n_contenders):
        m.processor(node).run_thread(worker(node))
    m.run()
    assert m.store.read(counter) == n_contenders * ROUNDS
    mean = sum(waits) / len(waits)
    unfairness = max(waits) / mean if mean else 1.0
    return m.sim.now, unfairness


def sweep(contenders=(1, 8, 16)) -> list[SweepPoint]:
    return [
        SweepPoint("bench_ablation_locks:_contend",
                   {"lock_kind": kind, "n_contenders": n})
        for n in contenders
        for kind in ("ttas", "mcs")
    ]


def run_ablation(contenders=(1, 8, 16), jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ablation-locks",
        title="Ablation: TTAS vs MCS lock (6 critical sections each)",
        columns=[
            "contenders",
            "ttas_cycles",
            "mcs_cycles",
            "ttas_worst_over_mean",
            "mcs_worst_over_mean",
        ],
        notes="worst/mean acquisition latency measures fairness",
    )
    points = sweep(contenders)
    measured = dict(zip(((p.kwargs["n_contenders"], p.kwargs["lock_kind"]) for p in points),
                        SweepRunner(jobs).map(points)))
    for n in contenders:
        t_cycles, t_unfair = measured[(n, "ttas")]
        m_cycles, m_unfair = measured[(n, "mcs")]
        res.add(
            contenders=n,
            ttas_cycles=t_cycles,
            mcs_cycles=m_cycles,
            ttas_worst_over_mean=round(t_unfair, 1),
            mcs_worst_over_mean=round(m_unfair, 1),
        )
    return res


def test_bench_lock_fairness(once):
    res = once(run_ablation)
    rows = {r["contenders"]: r for r in res.rows}
    # uncontended: TTAS is at least as cheap (MCS pays queue management)
    assert rows[1]["ttas_cycles"] <= rows[1]["mcs_cycles"] * 1.5
    # contended: throughput within 2x of each other either way...
    assert rows[16]["mcs_cycles"] < rows[16]["ttas_cycles"] * 2
    # ...but MCS acquisition latency is far more uniform (FIFO grant)
    assert rows[16]["mcs_worst_over_mean"] < rows[16]["ttas_worst_over_mean"]
    assert rows[16]["mcs_worst_over_mean"] < 4.0
