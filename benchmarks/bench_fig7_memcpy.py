"""Fig. 7: memory-to-memory copy vs block size, three implementations.

Paper anchors (MB/s): 256 B -> 17.3 (MP) / 11.7 (no-pref) / 7.3 (pref);
4 KB -> 55.4 / 16.4 / 8.6.
"""

from repro.experiments import fig7_memcpy


def _by(res, impl):
    return {r["block_bytes"]: r for r in res.rows if r["implementation"] == impl}


def test_bench_fig7_curves(once):
    res = once(lambda: fig7_memcpy.run())
    mp = _by(res, "message-passing")
    plain = _by(res, "no-prefetching")
    pref = _by(res, "prefetching")

    # ordering at large blocks: MP fastest, prefetching slowest
    assert mp[4096]["cycles"] < plain[4096]["cycles"] < pref[4096]["cycles"]
    # MP at least 3x faster than no-prefetching at 4 KB (paper: 3.4x)
    assert plain[4096]["cycles"] / mp[4096]["cycles"] > 3.0
    # crossover: shared-memory wins for the smallest block
    assert plain[64]["cycles"] < mp[64]["cycles"]
    # MP bandwidth grows with block size (fixed overhead amortizes)
    assert mp[4096]["MB_per_s"] > 2 * mp[256]["MB_per_s"]
    # bandwidth ballparks vs paper anchors
    assert 35 <= mp[4096]["MB_per_s"] <= 80
    assert 8 <= plain[4096]["MB_per_s"] <= 25
