"""Ablation: LimitLESS hardware-pointer count.

Sweeps the number of hardware directory pointers and measures a
widely-shared-line invalidation (the case that triggers the software
extension trap). More hardware pointers -> fewer traps -> cheaper
write to a widely-read line.
"""

from repro.analysis.tables import ExperimentResult
from repro.machine import Machine, MachineConfig
from repro.memory import AccessKind, make_addr
from repro.memory.coherence import CoherenceParams
from repro.perf.sweep import SweepPoint, SweepRunner


def _invalidation_cost(hw_pointers: int, n_sharers: int = 16) -> tuple[int, int]:
    m = Machine(
        MachineConfig(
            n_nodes=32,
            dir_hw_pointers=hw_pointers,
            coherence=CoherenceParams(trap_cycles=40),
        )
    )
    addr = make_addr(0, 0x100)
    eng = m.coherence
    done = []
    # populate sharers
    for reader in range(1, n_sharers + 1):
        eng.access(reader, addr, AccessKind.READ, lambda: None)
        m.run()
    traps_before = m.nodes[0].directory.stats.software_traps
    t0 = m.sim.now
    eng.access(20, addr, AccessKind.WRITE, lambda: done.append(m.sim.now))
    m.run()
    return done[0] - t0, m.nodes[0].directory.stats.software_traps - traps_before


def sweep(pointer_counts=(1, 2, 5, 8, 16)) -> list[SweepPoint]:
    return [
        SweepPoint("bench_ablation_limitless:_invalidation_cost", {"hw_pointers": hw})
        for hw in pointer_counts
    ]


def run_ablation(pointer_counts=(1, 2, 5, 8, 16), jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ablation-limitless",
        title="Ablation: LimitLESS hardware pointer count (16 sharers)",
        columns=["hw_pointers", "write_inv_cycles", "software_traps"],
        notes="write to a line shared by 16 readers; traps when sharers exceed pointers",
    )
    points = sweep(pointer_counts)
    for point, (cycles, traps) in zip(points, SweepRunner(jobs).map(points)):
        res.add(hw_pointers=point.kwargs["hw_pointers"],
                write_inv_cycles=cycles, software_traps=traps)
    return res


def test_bench_limitless_pointers(once):
    res = once(run_ablation)
    rows = res.rows
    # few pointers -> the 16-sharer line overflowed -> trap charged
    assert rows[0]["software_traps"] >= 1
    # enough pointers -> no trap
    assert rows[-1]["software_traps"] == 0
    # and the overflowing write is more expensive
    assert rows[0]["write_inv_cycles"] > rows[-1]["write_inv_cycles"]
