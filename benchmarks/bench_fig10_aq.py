"""Fig. 10: adaptive-quadrature speedup vs problem size, 64 processors.

Paper shape: hybrid ~2x faster at small problem sizes; advantage
shrinks with problem size but stays >20% at the largest size shown.
"""

from repro.experiments import fig10_aq

#: trimmed tolerance sweep for the harness (smallest -> ~175 ms seq)
BENCH_TOLS = (3e-3, 3e-4, 1e-4)


def test_bench_fig10_speedups(once):
    res = once(lambda: fig10_aq.run(tols=BENCH_TOLS))
    rows = res.rows
    # hybrid wins at every problem size
    for r in rows:
        assert r["hybrid_over_sm"] > 1.0, r
    # the advantage at the smallest problem is the largest
    assert rows[0]["hybrid_over_sm"] >= rows[-1]["hybrid_over_sm"]
    assert rows[0]["hybrid_over_sm"] > 1.3
    # problem size axis actually spans more than an order of magnitude
    assert rows[-1]["seq_msec"] > 10 * rows[0]["seq_msec"]
