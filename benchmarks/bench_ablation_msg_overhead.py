"""Ablation: per-message software overhead vs the SM/MP copy crossover.

The block size at which message-passing overtakes the shared-memory
copy loop (Fig. 7's crossover) is set by the fixed per-message
software cost. Sweeping that cost moves the crossover — the paper's
§6 conclusion that messaging wins only "when messages are large
enough to amortize any fixed overhead", made quantitative.
"""

from repro.analysis.metrics import mbytes_per_sec
from repro.analysis.tables import ExperimentResult
from repro.experiments.common import make_machine, run_thread_timed
from repro.experiments.fig7_memcpy import _measure_sm
from repro.runtime.bulk import BulkTransfer, copy_no_prefetch
from repro.perf.sweep import SweepPoint, SweepRunner

SIZES = (64, 128, 256, 512, 1024, 2048, 4096)


def _mp_cycles(nbytes: int, sw_cost: int) -> int:
    m = make_machine(4)
    bulk = BulkTransfer(m, send_sw_cost=sw_cost, recv_sw_cost=sw_cost)
    src = m.alloc(0, nbytes)
    dst = m.alloc(1, nbytes)
    for i in range(nbytes // 8):
        m.store.write(src + i * 8, i)

    def bench():
        t0 = m.sim.now
        yield from bulk.send(1, src, dst, nbytes, wait_ack=True)
        return m.sim.now - t0

    cycles, _ = run_thread_timed(m, bench())
    return cycles


def crossover(sw_cost: int) -> int | None:
    """Smallest block size at which MP beats the plain SM copy."""
    for nbytes in SIZES:
        sm = _measure_sm(copy_no_prefetch, nbytes)
        mp = _mp_cycles(nbytes, sw_cost)
        if mp < sm:
            return nbytes
    return None


def measure_cost_point(sw_cost: int) -> tuple:
    """One sweep point: (crossover block size or None, MP cycles at 4 KB)."""
    return crossover(sw_cost), _mp_cycles(4096, sw_cost)


def sweep(costs=(0, 50, 100, 200, 400)) -> list[SweepPoint]:
    return [
        SweepPoint("bench_ablation_msg_overhead:measure_cost_point", {"sw_cost": c})
        for c in costs
    ]


def run_ablation(costs=(0, 50, 100, 200, 400), jobs: int = 1) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ablation-msg-overhead",
        title="Ablation: per-message software cost vs SM/MP copy crossover",
        columns=["sw_cost_cycles", "crossover_bytes", "mp_4k_MB_per_s"],
        notes="crossover = smallest block where the single-message copy wins",
    )
    points = sweep(costs)
    for point, (xo, mp4k) in zip(points, SweepRunner(jobs).map(points)):
        cost = point.kwargs["sw_cost"]
        res.add(
            sw_cost_cycles=cost,
            crossover_bytes=xo if xo is not None else ">4096",
            mp_4k_MB_per_s=round(mbytes_per_sec(4096, mp4k), 1),
        )
    return res


def test_bench_msg_overhead_moves_crossover(once):
    res = once(run_ablation)
    rows = res.rows
    xo = [r["crossover_bytes"] for r in rows]
    # with zero software overhead messages win even tiny copies
    assert xo[0] == 64
    # crossover moves to larger blocks as overhead grows
    numeric = [v for v in xo if isinstance(v, int)]
    assert numeric == sorted(numeric)
    assert xo[-1] >= 512 or xo[-1] == ">4096"
