"""Tests for bulk memory-to-memory copy (§4.4)."""

import pytest

from repro.machine import Machine, MachineConfig
from repro.proc import Compute, Load, Store
from repro.runtime import BulkTransfer, copy_no_prefetch, copy_prefetch


def machine(n=4):
    return Machine(MachineConfig(n_nodes=n))


def fill(m, addr, n_dwords, fn=lambda i: i * 7 + 1):
    for i in range(n_dwords):
        m.store.write(addr + i * 8, fn(i))


def read_back(m, addr, n_dwords):
    return [m.store.read(addr + i * 8) for i in range(n_dwords)]


def run_copy(m, gen):
    done = []
    m.processor(0).run_thread(gen, on_finish=lambda v: done.append(m.sim.now))
    m.run()
    assert done
    return done[0]


class TestSMCopies:
    @pytest.mark.parametrize("copier", [copy_no_prefetch, copy_prefetch])
    def test_copies_values(self, copier):
        m = machine()
        src = m.alloc(0, 128)
        dst = m.alloc(1, 128)
        fill(m, src, 16)
        run_copy(m, copier(src, dst, 128))
        assert read_back(m, dst, 16) == [i * 7 + 1 for i in range(16)]

    @pytest.mark.parametrize("copier", [copy_no_prefetch, copy_prefetch])
    def test_rejects_unaligned_length(self, copier):
        with pytest.raises(ValueError):
            list(copier(0x100, 0x200, 12))

    def test_prefetch_copy_slower_remote_dest(self):
        """Fig. 7: the prefetching loop is *slower* than the plain loop
        for a push-copy (prefetch fetches the destination line SHARED,
        then the store pays a second, full write transaction)."""
        times = {}
        for name, copier in (("plain", copy_no_prefetch), ("pref", copy_prefetch)):
            m = machine()
            src = m.alloc(0, 1024)
            dst = m.alloc(1, 1024)
            fill(m, src, 128)

            def warm_then_copy():
                # warm source into cache as a real benchmark would
                for i in range(128):
                    yield Load(src + i * 8)
                t0 = m.sim.now
                yield from copier(src, dst, 1024)
                return m.sim.now - t0

            box = []
            m.processor(0).run_thread(warm_then_copy(), on_finish=box.append)
            m.run()
            times[name] = box[0]
        assert times["pref"] > times["plain"]


class TestMessageCopy:
    def test_values_arrive(self):
        m = machine()
        bulk = BulkTransfer(m)
        src = m.alloc(0, 256)
        dst = m.alloc(2, 256)
        fill(m, src, 32)

        def sender():
            yield from bulk.send(2, src, dst, 256, wait_ack=True)

        run_copy(m, sender())
        assert read_back(m, dst, 32) == [i * 7 + 1 for i in range(32)]

    def test_arrival_future_resolves(self):
        m = machine()
        bulk = BulkTransfer(m)
        src = m.alloc(0, 64)
        dst = m.alloc(1, 64)
        fill(m, src, 8)
        cid = bulk.new_copy_id()
        arrived = []

        def receiver_waits():
            yield from bulk.arrival_future(cid).wait()
            v = yield Load(dst)
            arrived.append(v)

        def sender():
            yield from bulk.send(1, src, dst, 64, copy_id=cid)

        m.processor(1).run_thread(receiver_waits())
        m.processor(0).run_thread(sender())
        m.run()
        assert arrived == [1]

    def test_sender_free_before_arrival_without_ack(self):
        m = machine()
        bulk = BulkTransfer(m)
        src = m.alloc(0, 4096)
        dst = m.alloc(3, 4096)
        cid = bulk.new_copy_id()
        sender_done = []
        arrival_time = []

        def on_arrival(_):
            arrival_time.append(m.sim.now)

        bulk.arrival_future(cid).add_waiter(on_arrival)

        def sender():
            yield from bulk.send(3, src, dst, 4096, copy_id=cid)
            sender_done.append(m.sim.now)

        m.processor(0).run_thread(sender())
        m.run()
        assert sender_done[0] < arrival_time[0]

    def test_message_copy_beats_sm_for_large_blocks(self):
        """Fig. 7: MP copy ≈3x+ faster at 4 KB."""
        nbytes = 4096
        # message-based
        m1 = machine()
        bulk = BulkTransfer(m1)
        src1, dst1 = m1.alloc(0, nbytes), m1.alloc(1, nbytes)
        fill(m1, src1, nbytes // 8)
        t_mp = run_copy(m1, bulk.send(1, src1, dst1, nbytes, wait_ack=True))
        # shared-memory
        m2 = machine()
        src2, dst2 = m2.alloc(0, nbytes), m2.alloc(1, nbytes)
        fill(m2, src2, nbytes // 8)
        t_sm = run_copy(m2, copy_no_prefetch(src2, dst2, nbytes))
        assert t_sm > 2 * t_mp

    def test_sm_copy_beats_message_for_tiny_blocks(self):
        """Fig. 7 crossover: shared-memory wins for small blocks."""
        nbytes = 64
        m1 = machine()
        bulk = BulkTransfer(m1)
        src1, dst1 = m1.alloc(0, nbytes), m1.alloc(1, nbytes)
        t_mp = run_copy(m1, bulk.send(1, src1, dst1, nbytes, wait_ack=True))
        m2 = machine()
        src2, dst2 = m2.alloc(0, nbytes), m2.alloc(1, nbytes)
        t_sm = run_copy(m2, copy_no_prefetch(src2, dst2, nbytes))
        assert t_sm < t_mp
