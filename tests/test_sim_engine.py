"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Resource, SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(10, lambda: order.append("b"))
    sim.schedule(5, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 20


def test_same_cycle_events_fifo():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule(7, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_zero_delay_allowed():
    sim = Simulator()
    fired = []
    sim.schedule(0, lambda: fired.append(True))
    sim.run()
    assert fired == [True]
    assert sim.now == 0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_fractional_delay_rounds_up():
    sim = Simulator()
    times = []
    sim.schedule(2.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [3]


def test_schedule_at_absolute():
    sim = Simulator()
    seen = []
    sim.schedule(5, lambda: sim.schedule_at(12, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [12]


def test_schedule_at_past_rejected():
    sim = Simulator()
    errors = []

    def later():
        try:
            sim.schedule_at(1, lambda: None)
        except SimulationError as e:
            errors.append(e)

    sim.schedule(10, later)
    sim.run()
    assert len(errors) == 1


def test_cancel_event():
    sim = Simulator()
    fired = []
    h = sim.schedule(5, lambda: fired.append(True))
    h.cancel()
    sim.run()
    assert fired == []
    assert h.cancelled


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run(until=50)
    assert sim.now == 50
    assert sim.pending == 1
    sim.run()
    assert sim.now == 100


def test_run_until_exact_boundary_event_runs():
    sim = Simulator()
    fired = []
    sim.schedule(50, lambda: fired.append(True))
    sim.run(until=50)
    assert fired == [True]


def test_nested_scheduling_during_run():
    sim = Simulator()
    hits = []

    def chain(n):
        hits.append(sim.now)
        if n > 0:
            sim.schedule(3, lambda: chain(n - 1))

    sim.schedule(0, lambda: chain(4))
    sim.run()
    assert hits == [0, 3, 6, 9, 12]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_stop_when_predicate():
    sim = Simulator()
    count = []

    def tick():
        count.append(sim.now)
        sim.schedule(1, tick)

    sim.schedule(0, tick)
    sim.run(stop_when=lambda: len(count) >= 5)
    assert len(count) == 5


def test_cancel_already_fired_event():
    sim = Simulator()
    fired = []
    h = sim.schedule(5, lambda: fired.append(True))
    sim.run()
    assert fired == [True]
    h.cancel()  # idempotent no-op after firing
    sim.run()
    assert fired == [True]


def test_schedule_at_exactly_now_fires_same_cycle():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: sim.schedule_at(10, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [10]
    assert sim.now == 10


def test_stop_when_on_final_event_keeps_event_time():
    sim = Simulator()
    hits = []

    def tick():
        hits.append(sim.now)

    sim.schedule(5, tick)
    sim.schedule(9, tick)
    # the predicate turns true on the very last event: the clock must
    # rest at that event's time, not jump ahead to ``until``
    sim.run(until=500, stop_when=lambda: len(hits) >= 2)
    assert hits == [5, 9]
    assert sim.now == 9


def test_events_processed_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_fired_property_lifecycle():
    sim = Simulator()
    h = sim.schedule(5, lambda: None)
    assert not h.fired
    assert not h.cancelled
    sim.run()
    assert h.fired
    assert not h.cancelled


def test_cancel_after_fire_is_noop():
    """Regression: cancel() on a fired handle must not mark it
    cancelled, must not disturb the live-event counter, and must not
    affect later events."""
    sim = Simulator()
    fired = []
    h = sim.schedule(1, lambda: fired.append("a"))
    sim.schedule(2, lambda: fired.append("b"))
    sim.run(until=1)
    assert h.fired
    h.cancel()
    assert not h.cancelled
    assert sim.pending == 1  # the "b" event is still live
    sim.run()
    assert fired == ["a", "b"]


def test_cancel_is_idempotent_on_pending_event():
    sim = Simulator()
    h = sim.schedule(5, lambda: None)
    h.cancel()
    h.cancel()  # second cancel must not double-decrement the counter
    assert sim.pending == 0
    sim.run()
    assert sim.events_processed == 0


def test_pending_tracks_schedule_cancel_and_fire():
    sim = Simulator()
    assert sim.pending == 0
    h1 = sim.schedule(5, lambda: None)
    h2 = sim.schedule(6, lambda: None)
    sim.call_after(7, lambda: None)
    assert sim.pending == 3
    h1.cancel()
    assert sim.pending == 2
    sim.run(until=6)
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0
    assert h2.fired


def test_call_after_fires_in_time_order():
    sim = Simulator()
    order = []
    sim.call_after(10, lambda: order.append("b"))
    sim.call_after(5, lambda: order.append("a"))
    sim.call_after(20, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_call_after_interleaves_fifo_with_schedule():
    """Handle-free and handle-bearing events at the same cycle must
    fire in submission order — the global-FIFO determinism contract."""
    sim = Simulator()
    order = []
    sim.schedule(3, lambda: order.append("h0"))
    sim.call_after(3, lambda: order.append("f1"))
    sim.schedule(3, lambda: order.append("h2"))
    sim.call_after(3, lambda: order.append("f3"))
    sim.run()
    assert order == ["h0", "f1", "h2", "f3"]


def test_call_at_absolute_and_past_rejected():
    from repro.sim import SimulationError as SE

    sim = Simulator()
    seen = []
    sim.call_after(5, lambda: sim.call_at(12, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [12]
    with pytest.raises(SE):
        sim.call_at(3, lambda: None)


def test_out_of_order_schedule_after_due_lane_fill():
    """Scheduling a *nearer* event after farther same-lane entries must
    still fire in time order (it lands in the heap, not the due lane)."""
    sim = Simulator()
    order = []
    sim.call_after(10, lambda: order.append("far"))
    sim.call_after(2, lambda: order.append("near"))
    sim.call_after(10, lambda: order.append("far2"))
    sim.run()
    assert order == ["near", "far", "far2"]
    assert sim.now == 10


class TestResource:
    def test_sequential_acquisitions_serialize(self):
        sim = Simulator()
        r = Resource(sim)
        t1 = r.acquire(10)
        t2 = r.acquire(5)
        assert t1 == 10
        assert t2 == 15

    def test_acquire_after_idle_starts_now(self):
        sim = Simulator()
        r = Resource(sim)
        r.acquire(3)
        sim.schedule(100, lambda: None)
        sim.run()
        assert r.acquire(4) == 104

    def test_earliest_constraint(self):
        sim = Simulator()
        r = Resource(sim)
        assert r.acquire(5, earliest=20) == 25

    def test_earliest_before_busy_until_queues(self):
        sim = Simulator()
        r = Resource(sim)
        r.acquire(30)
        assert r.acquire(5, earliest=10) == 35

    def test_earliest_in_the_past_clamps_to_now(self):
        sim = Simulator()
        r = Resource(sim)
        sim.schedule(100, lambda: None)
        sim.run()
        # free resource, stale earliest: occupancy starts now, and the
        # completion time never lands in the past
        assert r.acquire(5, earliest=10) == 105

    def test_negative_occupancy_rejected(self):
        sim = Simulator()
        r = Resource(sim)
        with pytest.raises(SimulationError):
            r.acquire(-1)

    def test_total_busy_accounting(self):
        sim = Simulator()
        r = Resource(sim)
        r.acquire(10)
        r.acquire(7)
        assert r.total_busy == 17


class TestDaemonEvents:
    """call_daemon: observer events that never keep the run alive."""

    def test_daemon_fires_while_model_work_remains(self):
        sim = Simulator()
        seen = []
        sim.call_daemon(5, lambda: seen.append(sim.now))
        sim.schedule(10, lambda: None)
        sim.run()
        assert seen == [5]

    def test_pending_daemon_does_not_extend_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: None)
        sim.call_daemon(50, lambda: seen.append(True))
        sim.run()
        assert seen == []          # never fired: no model work at t=50
        assert sim.now == 10       # the clock stopped at the last model event

    def test_daemon_only_queue_runs_nothing(self):
        sim = Simulator()
        seen = []
        sim.call_daemon(5, lambda: seen.append(True))
        sim.run()
        assert seen == [] and sim.now == 0

    def test_self_rescheduling_daemon_terminates(self):
        """The sampler pattern: a daemon that re-arms itself must not
        keep the run alive once model work is done."""
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if sim._live > sim._daemons:
                sim.call_daemon(10, tick)

        sim.call_daemon(10, tick)
        sim.schedule(35, lambda: None)
        sim.run()
        assert ticks == [10, 20, 30]
        assert sim.now == 35

    def test_daemon_preserves_model_order_and_clock(self):
        """Interleaved daemons must not reorder model events."""
        def run(with_daemon):
            sim = Simulator()
            order = []
            for t in (3, 7, 7, 12):
                sim.schedule(t, lambda t=t: order.append((t, sim.now)))
            if with_daemon:
                for t in (1, 3, 7, 11):
                    sim.call_daemon(t, lambda: None)
            sim.run()
            return order, sim.now

        assert run(False) == run(True)

    def test_daemon_respects_until_and_max_events(self):
        sim = Simulator()
        seen = []
        sim.call_daemon(5, lambda: seen.append("d"))
        sim.schedule(10, lambda: seen.append("m"))
        sim.run(until=7)
        assert seen == ["d"]
        sim.run()
        assert seen == ["d", "m"]

    def test_run_with_until_stops_on_daemon_only_queue(self):
        """A queued daemon must not fire after the last model event,
        and the clock behaves exactly as it would unobserved (run with
        ``until`` advances to ``until`` on a drained queue)."""
        fired = []
        def run(with_daemon):
            sim = Simulator()
            sim.schedule(5, lambda: None)
            if with_daemon:
                sim.call_daemon(8, lambda: fired.append(True))
            sim.run(until=100)
            return sim.now

        assert run(True) == run(False)
        assert fired == []
