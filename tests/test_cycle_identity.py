"""Cycle-identity guard for the hot-path engine optimizations.

``tests/golden/cycle_identity.json`` holds experiment rows captured
with the pre-optimization engine (dataclass heap events, elif effect
dispatch, no coherence fast path). The optimized engine must produce
*identical simulated cycle counts* — host speed may change, simulated
time may not. Any intentional model change must regenerate the golden
file and say so in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import ALL_EXPERIMENTS

GOLDEN = Path(__file__).parent / "golden" / "cycle_identity.json"

# Must match the configs the golden file was captured with.
CONFIGS = {
    "barrier": dict(n_nodes=16),
    "rti": dict(n_nodes=16, trials=3),
    "fig7": dict(block_sizes=(64, 256, 1024)),
    "fig8": dict(block_sizes=(64, 256, 1024)),
    "fig9": dict(delays=(0, 1000), depth=9, n_nodes=16),
    "fig10": dict(tols=(3e-3, 1e-3), n_nodes=16),
    "fig11": dict(grid_sizes=(32,), n_nodes=16, iters=3),
    "faults": dict(loss_rates=(0.0, 0.05), nbytes=512, n_nodes=16, episodes=2),
}


def _normalize(rows):
    # round-trip through JSON so tuples/lists and numeric reprs compare
    # the same way they were serialized at capture time
    return json.loads(json.dumps(rows, default=str))


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.mark.parametrize("exp_id", sorted(CONFIGS))
def test_cycles_identical_to_pre_optimization_engine(exp_id, golden):
    res = ALL_EXPERIMENTS[exp_id](**CONFIGS[exp_id])
    assert _normalize(res.rows) == golden[exp_id]["rows"], (
        f"{exp_id}: simulated cycles diverged from the pre-optimization "
        "golden capture — a hot-path change altered model behaviour"
    )


def test_golden_covers_every_experiment(golden):
    assert set(golden) == set(ALL_EXPERIMENTS) == set(CONFIGS)


# ----------------------------------------------------------------------
# Observed vs unobserved: attaching the full observability stack
# (metrics registry, cycle profiler, time-series sampler, tracer) must
# not change reported simulated cycles — observers are pay-for-what-
# you-use and daemon sampler ticks never perturb model event order.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exp_id", ["fig8", "fig9"])
def test_observed_run_cycle_identical(exp_id, golden):
    from repro.obs.session import ObsConfig, session

    cfg = ObsConfig(sample_interval=500, trace=True, metrics=True, profile=True)
    with session(cfg) as s:
        res = ALL_EXPERIMENTS[exp_id](**CONFIGS[exp_id])
        data = s.data()
    assert _normalize(res.rows) == golden[exp_id]["rows"], (
        f"{exp_id}: attaching observers changed simulated cycle counts — "
        "the zero-overhead contract is broken"
    )
    # and the observers actually observed something
    assert data["records"], "session saw no machines"
    assert any(r.get("samples", {}).get("samples") for r in data["records"])
    assert data["cycle_attribution"]["total_cycles"] > 0
