"""Smoke tests of every experiment driver at reduced scale, asserting
the paper's qualitative result survives even at small machine sizes
where it is expected to."""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    barrier_exp,
    fig7_memcpy,
    fig8_accum,
    fig9_grain,
    fig10_aq,
    fig11_jacobi,
    rti_exp,
)


def test_registry_complete():
    assert set(ALL_EXPERIMENTS) == {
        "barrier", "rti", "fig7", "fig8", "fig9", "fig10", "fig11", "faults"
    }


class TestBarrierExp:
    def test_small_machine(self):
        res = barrier_exp.run(n_nodes=16)
        cycles = dict(zip(res.column("implementation"), res.column("cycles")))
        assert cycles["message-passing (8-ary tree)"] < cycles["shared-memory (binary tree)"]

    def test_columns_present(self):
        res = barrier_exp.run(n_nodes=4)
        assert res.rows and all("usec" in r for r in res.rows)


class TestRtiExp:
    def test_small_machine(self):
        res = rti_exp.run(n_nodes=8, trials=3)
        rows = {r["implementation"]: r for r in res.rows}
        assert rows["message-based"]["Tinvoker"] < rows["shared-memory"]["Tinvoker"]
        assert rows["message-based"]["Tinvokee"] < rows["shared-memory"]["Tinvokee"]


class TestFig7:
    def test_small_sweep(self):
        res = fig7_memcpy.run(block_sizes=(64, 1024))
        mp = [r for r in res.rows if r["implementation"] == "message-passing"]
        plain = [r for r in res.rows if r["implementation"] == "no-prefetching"]
        # crossover inside this range
        assert plain[0]["cycles"] < mp[0]["cycles"]
        assert mp[1]["cycles"] < plain[1]["cycles"]


class TestFig8:
    def test_small_sweep(self):
        res = fig8_accum.run(block_sizes=(128, 1024))
        ratios = [r["mp_over_sm"] for r in res.rows if r["mp_over_sm"] != "-"]
        assert all(r > 1 for r in ratios)
        assert ratios[-1] < ratios[0]


class TestFig9:
    def test_reduced_grain(self):
        res = fig9_grain.run(delays=(0, 400), depth=9, n_nodes=16)
        by_l = {r["delay_l"]: r for r in res.rows}
        assert by_l[0]["speedup_hybrid"] > by_l[0]["speedup_sm"]
        assert by_l[400]["speedup_hybrid"] > by_l[0]["speedup_hybrid"]

    def test_wrong_result_would_fail(self):
        # the driver asserts leaf counts internally; depth 5 -> 32
        res = fig9_grain.run(delays=(0,), depth=5, n_nodes=4)
        assert res.rows


class TestFig10:
    def test_reduced_aq(self):
        res = fig10_aq.run(tols=(3e-3, 1e-3), n_nodes=16)
        assert all(r["hybrid_over_sm"] > 0.9 for r in res.rows)
        assert res.rows[1]["seq_msec"] > res.rows[0]["seq_msec"]


class TestFig11:
    def test_reduced_jacobi(self):
        res = fig11_jacobi.run(grid_sizes=(16, 64), n_nodes=16, iters=3)
        by_grid = {r["grid"]: r for r in res.rows}
        # SM wins the small grid, MP the larger, mirroring Fig. 11
        assert by_grid["16x16"]["mp_over_sm"] > 1.0
        assert by_grid["64x64"]["mp_over_sm"] < by_grid["16x16"]["mp_over_sm"]

    def test_validation_on(self):
        # validate=True is exercised inside run(); a numerics bug would raise
        res = fig11_jacobi.run(grid_sizes=(16,), n_nodes=4, iters=2)
        assert res.rows


class TestFaultsExp:
    def test_reduced_faults(self):
        from repro.experiments import faults_exp

        res = faults_exp.run(
            loss_rates=(0.0, 0.05), nbytes=512, n_nodes=16, episodes=2, seed=1
        )
        assert {r["workload"] for r in res.rows} == {"memcpy", "barrier"}
        clean = [r for r in res.rows if r["drop_pct"] == 0]
        assert all(r["retries"] == 0 and r["slowdown_x"] == 1 for r in clean)
        lossy = [r for r in res.rows if r["drop_pct"] > 0]
        assert all(r["slowdown_x"] >= 1 for r in lossy)
