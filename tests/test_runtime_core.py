"""Tests for futures, locks, and the two task schedulers."""

import pytest

from repro.machine import Machine, MachineConfig
from repro.proc import Compute, Load, Store
from repro.runtime import Future, Runtime, SpinLock, TaskState
from repro.sim import SimulationError


def machine(n=4):
    return Machine(MachineConfig(n_nodes=n))


class TestFuture:
    def test_resolve_then_wait(self):
        m = machine()
        fut = Future()
        fut.resolve(5)

        def t():
            v = yield from fut.wait()
            return v

        res = []
        m.processor(0).run_thread(t(), on_finish=res.append)
        m.run()
        assert res == [5]

    def test_wait_then_resolve(self):
        m = machine()
        fut = Future()

        def waiter():
            v = yield from fut.wait()
            return v

        def resolver():
            yield Compute(100)
            fut.resolve("late")

        res = []
        m.processor(0).run_thread(waiter(), on_finish=res.append)
        m.processor(1).run_thread(resolver())
        m.run()
        assert res == ["late"]

    def test_multiple_waiters_all_wake(self):
        m = machine()
        fut = Future()
        res = []
        for node in range(3):
            def waiter():
                v = yield from fut.wait()
                return v

            m.processor(node).run_thread(waiter(), on_finish=res.append)

        def resolver():
            yield Compute(50)
            fut.resolve(9)

        m.processor(3).run_thread(resolver())
        m.run()
        assert res == [9, 9, 9]

    def test_double_resolve_rejected(self):
        fut = Future()
        fut.resolve(1)
        with pytest.raises(SimulationError):
            fut.resolve(2)

    def test_add_waiter_after_resolution_fires_immediately(self):
        fut = Future()
        fut.resolve(3)
        got = []
        fut.add_waiter(got.append)
        assert got == [3]


class TestSpinLock:
    def test_mutual_exclusion_across_nodes(self):
        m = machine()
        lock = SpinLock(m.alloc(0, 8))
        counter_addr = m.alloc(0, 8)
        in_cs = []

        def worker(tag):
            for _ in range(5):
                yield from lock.acquire()
                v = yield Load(counter_addr)
                in_cs.append(tag)
                yield Compute(20)  # widen the race window
                yield Store(counter_addr, v + 1)
                yield from lock.release()

        for n in range(4):
            m.processor(n).run_thread(worker(n))
        m.run()
        assert m.store.read(counter_addr) == 20

    def test_lock_uncontended_is_cheap(self):
        m = machine()
        lock = SpinLock(m.alloc(0, 8))
        times = []

        def t():
            # warm the line into M state
            yield from lock.acquire()
            yield from lock.release()
            t0 = m.sim.now
            yield from lock.acquire()
            times.append(m.sim.now - t0)
            yield from lock.release()

        m.processor(0).run_thread(t())
        m.run()
        assert times[0] < 20


class TestSchedulers:
    @pytest.mark.parametrize("kind", ["hybrid", "sm"])
    def test_forkjoin_tree_correct(self, kind):
        m = machine(8)
        rt = Runtime(m, scheduler=kind)

        def tree(rt, node, depth):
            if depth == 0:
                yield Compute(30)
                return 1
            fut = yield from rt.fork(node, lambda rt, nd: tree(rt, nd, depth - 1))
            right = yield from tree(rt, node, depth - 1)
            left = yield from rt.join(node, fut)
            return left + right

        result, cycles = rt.run_to_completion(0, lambda rt, nd: tree(rt, nd, 6))
        assert result == 64
        assert cycles > 0

    @pytest.mark.parametrize("kind", ["hybrid", "sm"])
    def test_work_actually_distributes(self, kind):
        m = machine(8)
        rt = Runtime(m, scheduler=kind)

        def tree(rt, node, depth):
            if depth == 0:
                yield Compute(500)
                return node  # which node ran this leaf
            fut = yield from rt.fork(node, lambda rt, nd: tree(rt, nd, depth - 1))
            right = yield from tree(rt, node, depth - 1)
            left = yield from rt.join(node, fut)
            return left | right if isinstance(left, int) else None

        # collect the set of nodes leaves ran on via task records
        result, _ = rt.run_to_completion(0, lambda rt, nd: tree(rt, nd, 7))
        ran_on = {t.ran_on for t in rt.tasks.values() if t.state is TaskState.DONE}
        assert len(ran_on) > 1, "no task ever migrated"
        _att, won = rt.total_steals()
        assert won > 0

    @pytest.mark.parametrize("kind", ["hybrid", "sm"])
    def test_parallel_faster_than_one_node(self, kind):
        def tree(rt, node, depth):
            if depth == 0:
                yield Compute(400)
                return 1
            fut = yield from rt.fork(node, lambda rt, nd: tree(rt, nd, depth - 1))
            right = yield from tree(rt, node, depth - 1)
            left = yield from rt.join(node, fut)
            return left + right

        times = {}
        for n in (1, 8):
            m = machine(n)
            rt = Runtime(m, scheduler=kind)
            _res, cycles = rt.run_to_completion(0, lambda rt, nd: tree(rt, nd, 7))
            times[n] = cycles
        assert times[8] < times[1] / 2.5

    def test_hybrid_beats_sm_at_fine_grain(self):
        """The paper's headline scheduler result (§4.5)."""
        def tree(rt, node, depth):
            if depth == 0:
                yield Compute(10)
                return 1
            yield Compute(28)
            fut = yield from rt.fork(node, lambda rt, nd: tree(rt, nd, depth - 1))
            right = yield from tree(rt, node, depth - 1)
            left = yield from rt.join(node, fut)
            return left + right

        cycles = {}
        for kind in ("hybrid", "sm"):
            m = machine(16)
            rt = Runtime(m, scheduler=kind)
            _res, cycles[kind] = rt.run_to_completion(0, lambda rt, nd: tree(rt, nd, 9))
        assert cycles["hybrid"] < cycles["sm"]

    @pytest.mark.parametrize("kind", ["hybrid", "sm"])
    def test_spawn_to_runs_on_target(self, kind):
        m = machine(4)
        rt = Runtime(m, scheduler=kind)
        ran_on = []

        def remote_body(rt, node):
            yield Compute(5)
            ran_on.append(node)
            return node

        def invoker(rt, node):
            fut = yield from rt.spawn_to(2, remote_body)
            v = yield from rt.join(node, fut)
            return v

        result, _ = rt.run_to_completion(0, invoker)
        assert result == 2
        assert ran_on == [2]

    def test_unknown_scheduler_kind(self):
        with pytest.raises(ValueError):
            Runtime(machine(), scheduler="bogus")

    @pytest.mark.parametrize("kind", ["hybrid", "sm"])
    def test_deterministic_across_runs(self, kind):
        def tree(rt, node, depth):
            if depth == 0:
                yield Compute(50)
                return 1
            fut = yield from rt.fork(node, lambda rt, nd: tree(rt, nd, depth - 1))
            right = yield from tree(rt, node, depth - 1)
            left = yield from rt.join(node, fut)
            return left + right

        runs = []
        for _ in range(2):
            m = machine(8)
            rt = Runtime(m, scheduler=kind, seed=7)
            runs.append(rt.run_to_completion(0, lambda rt, nd: tree(rt, nd, 6)))
        assert runs[0] == runs[1]

    def test_seed_changes_schedule(self):
        def tree(rt, node, depth):
            if depth == 0:
                yield Compute(50)
                return 1
            fut = yield from rt.fork(node, lambda rt, nd: tree(rt, nd, depth - 1))
            right = yield from tree(rt, node, depth - 1)
            left = yield from rt.join(node, fut)
            return left + right

        cycles = []
        for seed in (0, 1):
            m = machine(8)
            rt = Runtime(m, scheduler="hybrid", seed=seed)
            _r, c = rt.run_to_completion(0, lambda rt, nd: tree(rt, nd, 6))
            cycles.append(c)
        # results equal, schedules (almost surely) differ
        assert cycles[0] != cycles[1]
