"""Run-store tests: publication atomicity, half-published invisibility,
and concurrent publishers of one key."""

from __future__ import annotations

import json
import threading

import pytest

from repro.serve.store import ENTRY_NAME, RunStore

KEY = "ab" + "0" * 62
ARTIFACTS = {"report.txt": b"table\n", "run.json": b'{"schema": "repro-run/1"}\n'}


class TestPublishGet:
    def test_roundtrip(self, tmp_path):
        store = RunStore(tmp_path)
        entry = store.publish(KEY, {"experiment": "fig8"}, ARTIFACTS)
        assert entry["artifacts"] == ["report.txt", "run.json"]
        got = store.get(KEY)
        assert got["key"] == KEY
        assert got["experiment"] == "fig8"
        assert store.read_artifact(KEY, "report.txt") == b"table\n"
        assert list(store.keys()) == [KEY]
        assert store.count() == 1

    def test_absent_key_is_none(self, tmp_path):
        assert RunStore(tmp_path).get("ff" + "0" * 62) is None

    def test_missing_artifact_hides_run(self, tmp_path):
        store = RunStore(tmp_path)
        store.publish(KEY, {}, ARTIFACTS)
        (store.run_dir(KEY) / "report.txt").unlink()
        assert store.get(KEY) is None  # half-destroyed run = absent
        assert store.artifact_path(KEY, "run.json") is None

    def test_corrupt_entry_hides_run(self, tmp_path):
        store = RunStore(tmp_path)
        store.publish(KEY, {}, ARTIFACTS)
        (store.run_dir(KEY) / ENTRY_NAME).write_bytes(b"not json")
        assert store.get(KEY) is None

    def test_entry_without_artifacts_is_invisible(self, tmp_path):
        # simulates a publisher that died between artifact writes and
        # the entry rename: no entry.json, run does not exist
        store = RunStore(tmp_path)
        run_dir = store.run_dir(KEY)
        run_dir.mkdir(parents=True)
        (run_dir / "report.txt").write_bytes(b"orphan")
        assert store.get(KEY) is None
        assert store.count() == 0

    def test_reserved_and_bad_names_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ValueError):
            store.publish(KEY, {}, {ENTRY_NAME: b"x"})
        with pytest.raises(ValueError):
            store.publish(KEY, {}, {"../escape": b"x"})
        with pytest.raises(ValueError):
            store.publish(KEY, {}, {".hidden": b"x"})

    def test_read_unknown_artifact_raises(self, tmp_path):
        store = RunStore(tmp_path)
        store.publish(KEY, {}, ARTIFACTS)
        with pytest.raises(KeyError):
            store.read_artifact(KEY, "nope.bin")


class TestConcurrentPublishers:
    def test_many_threads_one_key_always_consistent(self, tmp_path):
        """Two jobs materializing the same run concurrently must never
        leave a torn or mixed entry: every publisher writes the same
        deterministic bytes, and atomic per-file rename means readers
        only ever see complete artifacts."""
        store = RunStore(tmp_path)
        n_threads, n_rounds = 8, 25
        errors: list[BaseException] = []
        start = threading.Barrier(n_threads)

        def hammer():
            try:
                start.wait()
                for _ in range(n_rounds):
                    store.publish(KEY, {"experiment": "x"}, ARTIFACTS)
                    entry = store.get(KEY)
                    assert entry is not None
                    for name, blob in ARTIFACTS.items():
                        assert store.read_artifact(KEY, name) == blob
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors
        # exactly one coherent published run, no leftover temp files
        assert store.count() == 1
        leftovers = [p for p in store.run_dir(KEY).iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []
        entry = json.loads((store.run_dir(KEY) / ENTRY_NAME).read_bytes())
        assert entry["key"] == KEY
