"""Tests for metrics, table rendering, and ASCII plots."""

import pytest

from repro.analysis import (
    ExperimentResult,
    ascii_plot,
    cycles_to_msec,
    cycles_to_usec,
    format_table,
    mbytes_per_sec,
    ratio_error,
    speedup,
)


class TestMetrics:
    def test_cycles_to_usec_33mhz(self):
        assert cycles_to_usec(33) == pytest.approx(1.0)
        assert cycles_to_usec(1650) == pytest.approx(50.0)  # paper's SM barrier

    def test_cycles_to_msec(self):
        assert cycles_to_msec(33_000) == pytest.approx(1.0)

    def test_mb_per_sec_paper_anchor(self):
        # paper: 4 KB in ~2440 cycles ≈ 55 MB/s
        assert mbytes_per_sec(4096, 2440) == pytest.approx(55.4, rel=0.01)

    def test_speedup(self):
        assert speedup(100, 25) == 4.0

    def test_speedup_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(100, 0)

    def test_ratio_error_signs(self):
        assert ratio_error(110, 100) == pytest.approx(0.1)
        assert ratio_error(90, 100) == pytest.approx(-0.1)

    def test_bad_clock(self):
        with pytest.raises(ValueError):
            cycles_to_usec(100, clock_mhz=0)

    def test_bandwidth_rejects_nonpositive_cycles(self):
        with pytest.raises(ValueError):
            mbytes_per_sec(100, 0)


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            exp_id="t", title="T", columns=["a", "b"], notes="n"
        )

    def test_add_and_column(self):
        r = self.make()
        r.add(a=1, b=2)
        r.add(a=3, b=4)
        assert r.column("a") == [1, 3]

    def test_add_missing_column_rejected(self):
        r = self.make()
        with pytest.raises(ValueError):
            r.add(a=1)

    def test_unknown_column_rejected(self):
        r = self.make()
        with pytest.raises(KeyError):
            r.column("zzz")

    def test_format_contains_everything(self):
        r = self.make()
        r.add(a=1, b=22222)
        text = r.format_table()
        assert "T" in text and "22,222" in text and "(n)" in text

    def test_format_empty_table(self):
        text = self.make().format_table()
        assert "a" in text and "b" in text


class TestFormatting:
    def test_alignment(self):
        text = format_table("x", ["col"], [{"col": 5}, {"col": 123456}])
        lines = text.splitlines()
        assert len({len(line) for line in lines[1:]}) <= 2  # header+rows aligned

    def test_float_formats(self):
        text = format_table("x", ["v"], [{"v": 3.14159}, {"v": 1234.5}, {"v": 55.42}])
        assert "3.14" in text and "1,234" in text and "55.4" in text


class TestAsciiPlot:
    def test_renders_series(self):
        out = ascii_plot(
            {"up": [(1, 1), (2, 2), (3, 3)], "down": [(1, 3), (2, 2), (3, 1)]},
            width=20,
            height=8,
            title="demo",
        )
        assert "demo" in out
        assert "*=up" in out and "o=down" in out

    def test_log_axes(self):
        out = ascii_plot(
            {"s": [(64, 100), (4096, 10000)]}, logx=True, logy=True, width=20, height=6
        )
        assert out.count("\n") >= 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_single_point(self):
        out = ascii_plot({"s": [(1, 1)]}, width=10, height=4)
        assert "*" in out
