"""Calibration tests: the model's absolute numbers stay pinned to the
paper's published anchors (within tolerance bands).

These are the regression tripwires for the cost model — if a change
to protocol timing or runtime costs drifts an anchor, a test here
fails before the benches do.
"""

import pytest

from repro.analysis.metrics import mbytes_per_sec
from repro.experiments import barrier_exp, fig7_memcpy, rti_exp
from repro.experiments.fig7_memcpy import _measure_mp, _measure_sm
from repro.runtime.bulk import copy_no_prefetch, copy_prefetch


def within(measured, paper, rel):
    assert paper * (1 - rel) <= measured <= paper * (1 + rel), (
        f"measured {measured} vs paper {paper} (±{rel:.0%})"
    )


class TestFig7Anchors:
    """Paper: 256 B -> 17.3/11.7/7.3 MB/s; 4 KB -> 55.4/16.4/8.6 MB/s."""

    def test_mp_4k_bandwidth(self):
        mb = mbytes_per_sec(4096, _measure_mp(4096))
        within(mb, 55.4, 0.25)

    def test_mp_256_bandwidth(self):
        mb = mbytes_per_sec(256, _measure_mp(256))
        within(mb, 17.3, 0.35)

    def test_plain_4k_bandwidth(self):
        mb = mbytes_per_sec(4096, _measure_sm(copy_no_prefetch, 4096))
        within(mb, 16.4, 0.35)

    def test_prefetch_4k_bandwidth(self):
        mb = mbytes_per_sec(4096, _measure_sm(copy_prefetch, 4096))
        within(mb, 8.6, 0.35)

    def test_mp_advantage_grows_with_block_size(self):
        r256 = _measure_sm(copy_no_prefetch, 256) / _measure_mp(256)
        r4k = _measure_sm(copy_no_prefetch, 4096) / _measure_mp(4096)
        assert r4k > r256 > 1.0


class TestBarrierAnchors:
    """Paper: SM ≈1650 cycles, MP ≈660 cycles on 64 processors."""

    @pytest.fixture(scope="class")
    def table(self):
        res = barrier_exp.run(n_nodes=64)
        return dict(zip(res.column("implementation"), res.column("cycles")))

    def test_sm_cycles(self, table):
        within(table["shared-memory (binary tree)"], 1650, 0.45)

    def test_mp_cycles(self, table):
        within(table["message-passing (8-ary tree)"], 660, 0.55)

    def test_ratio(self, table):
        ratio = (
            table["shared-memory (binary tree)"]
            / table["message-passing (8-ary tree)"]
        )
        # paper ratio 2.5; accept 1.8-4x
        assert 1.8 <= ratio <= 4.0


class TestRtiAnchors:
    """Paper: SM 353/805 cycles; MP 17/244 cycles."""

    @pytest.fixture(scope="class")
    def table(self):
        res = rti_exp.run(n_nodes=64, trials=8)
        return {r["implementation"]: r for r in res.rows}

    def test_sm_invoker(self, table):
        within(table["shared-memory"]["Tinvoker"], 353, 0.35)

    def test_mp_invoker(self, table):
        within(table["message-based"]["Tinvoker"], 17, 0.6)

    def test_invokee_ordering(self, table):
        assert table["message-based"]["Tinvokee"] < table["shared-memory"]["Tinvokee"]

    def test_sm_invokee_ballpark(self, table):
        # paper 805; the invokee poll cadence dominates, accept a wide band
        assert 250 <= table["shared-memory"]["Tinvokee"] <= 1600


class TestGrainAnchors:
    """Paper sequential times: 7.1 ms (l=0) and 131.2 ms (l=1000)."""

    def test_sequential_model(self):
        from repro.apps.grain import sequential_cycles

        within(sequential_cycles(12, 0) / 33e3, 7.1, 0.05)
        within(sequential_cycles(12, 1000) / 33e3, 131.2, 0.05)
