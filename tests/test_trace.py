"""Tests for the execution tracer."""

import json

import pytest

from repro.machine import Machine, MachineConfig
from repro.proc import Compute, Load, Send, Store
from repro.trace import Tracer


def traced_machine(kinds=None):
    m = Machine(MachineConfig(n_nodes=4))
    tracer = Tracer(m, kinds=kinds)
    return m, tracer


def run_workload(m):
    addr = m.alloc(1, 8)

    def handler(msg):
        yield Compute(1)

    m.processor(2).register_handler("ping", handler)

    def worker():
        yield Store(addr, 7)
        yield Load(addr)
        yield Send(2, "ping", operands=(1,))

    m.processor(0).run_thread(worker(), label="worker")
    m.run()


class TestTracer:
    def test_records_all_kinds(self):
        m, tracer = traced_machine()
        run_workload(m)
        kinds = {ev.kind for ev in tracer.events}
        assert {"effect", "packet", "txn", "handler", "context"} <= kinds

    def test_kind_filtering_at_attach(self):
        m, tracer = traced_machine(kinds={"packet"})
        run_workload(m)
        assert tracer.events
        assert all(ev.kind == "packet" for ev in tracer.events)

    def test_unknown_kind_rejected(self):
        m = Machine(MachineConfig(n_nodes=2))
        with pytest.raises(ValueError):
            Tracer(m, kinds={"bogus"})

    def test_events_time_ordered(self):
        m, tracer = traced_machine()
        run_workload(m)
        times = [ev.time for ev in tracer.events]
        assert times == sorted(times)

    def test_filter_by_node_and_window(self):
        m, tracer = traced_machine()
        run_workload(m)
        n0 = tracer.filter(node=0)
        assert n0 and all(ev.node == 0 for ev in n0)
        early = tracer.filter(until=5)
        assert all(ev.time <= 5 for ev in early)

    def test_handler_event_names_message(self):
        m, tracer = traced_machine(kinds={"handler"})
        run_workload(m)
        assert any(ev.what == "ping" for ev in tracer.events)

    def test_timeline_renders(self):
        m, tracer = traced_machine()
        run_workload(m)
        text = tracer.timeline(0)
        assert "n0" in text

    def test_timeline_empty_node(self):
        m, tracer = traced_machine()
        run_workload(m)
        assert "no events" in tracer.timeline(3)

    def test_summarize(self):
        m, tracer = traced_machine()
        run_workload(m)
        text = tracer.summarize()
        assert "trace:" in text and "packet" in text

    def test_max_events_cap(self):
        m = Machine(MachineConfig(n_nodes=4))
        tracer = Tracer(m, max_events=3)
        run_workload(m)
        assert len(tracer.events) == 3
        assert tracer.dropped > 0

    def test_jsonl_export(self, tmp_path):
        m, tracer = traced_machine(kinds={"packet"})
        run_workload(m)
        path = tmp_path / "trace.jsonl"
        n = tracer.to_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        # metadata line first, then one line per event
        assert len(lines) == n + 1
        meta = json.loads(lines[0])["meta"]
        assert meta["events"] == n
        assert meta["dropped"] == 0
        assert meta["complete"] is True
        first = json.loads(lines[1])
        assert {"time", "node", "kind", "what"} <= set(first)

    def test_jsonl_meta_reports_drops(self, tmp_path):
        m = Machine(MachineConfig(n_nodes=4))
        tracer = Tracer(m, max_events=3)
        run_workload(m)
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(str(path))
        meta = json.loads(path.read_text().splitlines()[0])["meta"]
        assert meta["dropped"] == tracer.dropped > 0
        assert meta["complete"] is False

    def test_jsonl_round_trip(self, tmp_path):
        from repro.trace.tracer import from_jsonl

        m, tracer = traced_machine()
        run_workload(m)
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(str(path))
        events, meta = from_jsonl(str(path))
        assert events == tracer.events  # dataclass equality, field by field
        assert meta["events"] == len(tracer.events)

    def test_check_kind_round_trips_through_jsonl(self, tmp_path):
        """Checker findings mirrored into the trace ("check" kind)
        survive the jsonl export/import round trip."""
        from repro.trace.tracer import from_jsonl

        m, tracer = traced_machine(kinds={"check"})
        tracer.record(1, "check", "write-read", "unsynchronized pair on 0x10")
        run_workload(m)  # ordinary traffic: filtered out by the kind set
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(str(path))
        events, meta = from_jsonl(str(path))
        assert events == tracer.events
        assert len(events) == 1
        assert events[0].kind == "check"
        assert events[0].what == "write-read"
        assert events[0].detail == "unsynchronized pair on 0x10"

    def test_trace_event_slots(self):
        """TraceEvent is slotted: no per-event __dict__ (memory)."""
        from repro.trace.tracer import TraceEvent

        ev = TraceEvent(1, 0, "packet", "x")
        assert not hasattr(ev, "__dict__")
        with pytest.raises(AttributeError):
            ev.bogus = 1

    def test_handler_and_context_lifecycle_events(self):
        """Exporters need span ends: handler return + context finish."""
        m, tracer = traced_machine(kinds={"handler", "context"})
        run_workload(m)
        handlers = [ev for ev in tracer.events if ev.kind == "handler"]
        assert any(ev.detail == "return" for ev in handlers)
        contexts = [ev for ev in tracer.events if ev.kind == "context"]
        spawns = [ev for ev in contexts if ev.what == "spawn"]
        finishes = [ev for ev in contexts if ev.what == "finish"]
        assert spawns and finishes
        # spawn/finish pair by context id (the detail's cid prefix)
        spawn_cids = {ev.detail.partition(":")[0] for ev in spawns}
        finish_cids = {ev.detail.partition(":")[0] for ev in finishes}
        assert spawn_cids <= finish_cids

    def test_untraced_machine_behaves_identically(self):
        """Tracing must not perturb simulated timing."""
        def run(with_trace):
            m = Machine(MachineConfig(n_nodes=4))
            if with_trace:
                Tracer(m)
            addr = m.alloc(1, 8)
            done = []

            def worker():
                yield Store(addr, 1)
                v = yield Load(addr)
                done.append((v, m.sim.now))

            m.processor(0).run_thread(worker())
            m.run()
            return done[0]

        assert run(False) == run(True)


class TestAttachDetach:
    def test_detach_stops_recording(self):
        m, tracer = traced_machine()
        tracer.detach()
        assert not tracer.attached
        run_workload(m)
        assert tracer.events == []

    def test_detach_restores_original_methods(self):
        m = Machine(MachineConfig(n_nodes=4))
        send_before = m.network.send
        tracer = Tracer(m)
        assert m.network.send != send_before  # wrapped (instance attr)
        tracer.detach()
        # the wrapper instance attribute is gone; lookup falls back to
        # the pristine class method again
        assert "send" not in m.network.__dict__
        assert m.network.send == send_before

    def test_reattach_records_again(self):
        m, tracer = traced_machine()
        tracer.detach()
        tracer.attach()
        run_workload(m)
        assert tracer.events

    def test_double_attach_rejected(self):
        m, tracer = traced_machine()
        with pytest.raises(RuntimeError):
            tracer.attach()

    def test_context_manager_detaches(self):
        m = Machine(MachineConfig(n_nodes=4))
        with Tracer(m, kinds={"packet"}) as tracer:
            run_workload(m)
        assert not tracer.attached
        packets = len(tracer.events)
        assert packets > 0
        # outside the with-block: more traffic, nothing recorded
        def again():
            yield Send(2, "ping", operands=(2,))

        m.processor(0).run_thread(again())
        m.run()
        assert len(tracer.events) == packets
