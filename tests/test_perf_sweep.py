"""Tests for the parallel sweep runner and its determinism contract."""

from __future__ import annotations

import json

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.perf.sweep import (
    PARALLEL_MIN_POINTS_ENV,
    SweepPoint,
    SweepRunner,
    default_jobs,
    parallel_min_points,
    run_point,
)


def _square(x):
    return x * x


def _fail(x):
    raise RuntimeError(f"boom {x}")


class TestSweepPoint:
    def test_resolve_and_run(self):
        p = SweepPoint("tests.test_perf_sweep:_square", {"x": 7})
        assert p.resolve()(x=7) == 49
        assert run_point(p) == 49

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            SweepPoint("no_colon_here").resolve()

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            SweepPoint("tests.test_perf_sweep:GOLDEN_IDS").resolve()

    def test_points_are_picklable(self):
        import pickle

        p = SweepPoint("tests.test_perf_sweep:_square", {"x": 3})
        assert run_point(pickle.loads(pickle.dumps(p))) == 9


class TestSweepRunner:
    POINTS = [SweepPoint("tests.test_perf_sweep:_square", {"x": i}) for i in range(8)]

    def test_serial_preserves_order(self):
        assert SweepRunner(1).map(self.POINTS) == [i * i for i in range(8)]

    def test_parallel_preserves_order(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MIN_POINTS_ENV, "2")  # force real fan-out
        assert SweepRunner(4).map(self.POINTS) == [i * i for i in range(8)]

    def test_single_point_runs_in_process(self):
        # len <= 1 must not pay pool startup
        assert SweepRunner(8).map(self.POINTS[:1]) == [0]

    def test_jobs_none_uses_default(self):
        assert SweepRunner(None).jobs == default_jobs()

    def test_jobs_floor_is_one(self):
        assert SweepRunner(0).jobs == 1
        assert SweepRunner(-3).jobs == 1

    def test_worker_exception_propagates(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MIN_POINTS_ENV, "2")
        bad = [SweepPoint("tests.test_perf_sweep:_fail", {"x": 1})] * 2
        with pytest.raises(RuntimeError):
            SweepRunner(2).map(bad)

    def test_inline_exception_propagates_too(self):
        # below the fan-out threshold the same failure surfaces inline
        bad = [SweepPoint("tests.test_perf_sweep:_fail", {"x": 1})] * 2
        with pytest.raises(RuntimeError):
            SweepRunner(2).map(bad)

    def test_default_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3


# ----------------------------------------------------------------------
# Serial/parallel equivalence: every experiment must produce
# byte-identical rows at --jobs 1 and --jobs 4 (trimmed configs to
# keep the double-run affordable).
# ----------------------------------------------------------------------
SMALL_CONFIGS = {
    "barrier": dict(n_nodes=8),
    "rti": dict(n_nodes=8, trials=2),
    "fig7": dict(block_sizes=(64, 256)),
    "fig8": dict(block_sizes=(64, 256)),
    "fig9": dict(delays=(0,), depth=7, n_nodes=8),
    "fig10": dict(tols=(3e-3,), n_nodes=8),
    # jacobi needs a square mesh decomposition, hence 16 nodes
    "fig11": dict(grid_sizes=(16,), n_nodes=16, iters=2),
    # fault seeds travel inside the sweep descriptors, so drops are
    # identical wherever the point runs
    "faults": dict(loss_rates=(0.0, 0.1), nbytes=256, n_nodes=8, episodes=2),
}

GOLDEN_IDS = sorted(SMALL_CONFIGS)


@pytest.mark.parametrize("exp_id", GOLDEN_IDS)
def test_parallel_rows_identical_to_serial(exp_id, monkeypatch):
    # pin the threshold down so jobs=4 genuinely uses the worker pool
    # even for these trimmed sweeps
    monkeypatch.setenv(PARALLEL_MIN_POINTS_ENV, "2")
    fn = ALL_EXPERIMENTS[exp_id]
    serial = fn(jobs=1, **SMALL_CONFIGS[exp_id])
    parallel = fn(jobs=4, **SMALL_CONFIGS[exp_id])
    s = json.dumps(serial.rows, sort_keys=True, default=str)
    p = json.dumps(parallel.rows, sort_keys=True, default=str)
    assert s == p, f"{exp_id}: jobs=4 rows differ from jobs=1"


def test_small_configs_cover_every_experiment():
    assert set(SMALL_CONFIGS) == set(ALL_EXPERIMENTS)


# ----------------------------------------------------------------------
# Small-sweep serial fallback: tiny sweeps skip the pool entirely
# (BENCH_wallclock.json measured 0.74x at quick-sweep scale), and the
# threshold is env-tunable.
# ----------------------------------------------------------------------
class TestSerialFallback:
    POINTS = [SweepPoint("tests.test_perf_sweep:_square", {"x": i}) for i in range(8)]

    def test_default_threshold(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_MIN_POINTS_ENV, raising=False)
        assert parallel_min_points() == 24

    def test_env_override_with_floor(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MIN_POINTS_ENV, "10")
        assert parallel_min_points() == 10
        monkeypatch.setenv(PARALLEL_MIN_POINTS_ENV, "0")
        assert parallel_min_points() == 2  # floor: 1 would disable serial

    def test_small_sweep_never_touches_the_pool(self, monkeypatch):
        from repro.perf import sweep

        monkeypatch.delenv(PARALLEL_MIN_POINTS_ENV, raising=False)
        sweep.shutdown_pools()
        assert SweepRunner(4).map(self.POINTS) == [i * i for i in range(8)]
        assert sweep._POOLS == {}  # ran inline: no pool was built

    def test_threshold_crossing_builds_the_pool(self, monkeypatch):
        from repro.perf import sweep

        monkeypatch.setenv(PARALLEL_MIN_POINTS_ENV, "8")
        sweep.shutdown_pools()
        try:
            assert SweepRunner(4).map(self.POINTS) == [i * i for i in range(8)]
            assert 4 in sweep._POOLS
        finally:
            sweep.shutdown_pools()

    def test_fallback_rows_identical_to_forced_parallel(self, monkeypatch):
        exp_id = "fig8"
        fn = ALL_EXPERIMENTS[exp_id]
        monkeypatch.delenv(PARALLEL_MIN_POINTS_ENV, raising=False)
        inline = fn(jobs=4, **SMALL_CONFIGS[exp_id])  # falls back inline
        monkeypatch.setenv(PARALLEL_MIN_POINTS_ENV, "2")
        pooled = fn(jobs=4, **SMALL_CONFIGS[exp_id])  # genuine fan-out
        assert json.dumps(inline.rows, sort_keys=True, default=str) == json.dumps(
            pooled.rows, sort_keys=True, default=str
        )
        assert inline.format_table() == pooled.format_table()


@pytest.fixture(autouse=True, scope="module")
def _no_leaked_pools():
    yield
    from repro.perf import sweep

    sweep.shutdown_pools()


class TestProgressEvents:
    """The thread-local progress observer (repro.perf.progress): the
    sweep reports sweep_start and one point event per completed point,
    in input order for serial/cached paths, without perturbing
    results."""

    POINTS = [
        SweepPoint("tests.test_perf_sweep:_square", {"x": i})
        for i in range(4)
    ]

    def test_serial_sweep_reports_every_point_in_order(self):
        from repro.perf import progress

        events = []
        with progress.activate(events.append):
            results = SweepRunner(1).map(self.POINTS)
        assert results == [0, 1, 4, 9]
        assert events[0] == {
            "event": "sweep_start", "points": 4, "cached": 0,
        }
        points = events[1:]
        assert [e["index"] for e in points] == [0, 1, 2, 3]
        assert all(e["event"] == "point" for e in points)
        assert all(not e["cached"] for e in points)
        assert points[0]["label"] == "_square[0]"

    def test_no_observer_means_no_overhead_path(self):
        from repro.perf import progress

        assert progress.current() is None
        assert SweepRunner(1).map(self.POINTS) == [0, 1, 4, 9]

    def test_observer_is_thread_local(self):
        import threading

        from repro.perf import progress

        seen_in_thread = []

        def other():
            seen_in_thread.append(progress.current())

        with progress.activate(lambda e: None):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert seen_in_thread == [None]

    def test_cached_sweep_reports_hits(self, tmp_path):
        from repro.perf import progress
        from repro.perf.cache import RunCache, activate

        cache = RunCache(tmp_path)
        with activate(cache):
            SweepRunner(1).map(self.POINTS)  # warm the cache
            events = []
            with progress.activate(events.append):
                assert SweepRunner(1).map(self.POINTS) == [0, 1, 4, 9]
        assert events[0]["event"] == "sweep_start"
        assert events[0]["cached"] == 4
        assert [e["index"] for e in events[1:]] == [0, 1, 2, 3]
        assert all(e["cached"] for e in events[1:])

    def test_callback_exception_aborts_the_sweep(self):
        from repro.perf import progress

        def explode(event):
            if event["event"] == "point" and event["index"] == 1:
                raise RuntimeError("abort requested")

        with progress.activate(explode):
            with pytest.raises(RuntimeError, match="abort requested"):
                SweepRunner(1).map(self.POINTS)
