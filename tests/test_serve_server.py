"""End-to-end service tests: spec resolution/keying, REST routing, and
the acceptance contract — submitting the same sweep twice returns
bit-identical artifacts with the second submission answered from the
run store (dedup counter increments, no worker-pool dispatch)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.serve.api import ServeApp
from repro.serve.client import ServeClient, ServeError
from repro.serve.executor import ExperimentExecutor
from repro.serve.orchestrator import JobOrchestrator
from repro.serve.server import ServeServer, build_app
from repro.serve.store import RunStore

#: the smallest real experiment spec (2 sweep points)
TINY_SPEC = {"experiment": "fig8", "params": {"block_sizes": [64]}}


# ----------------------------------------------------------------------
# Spec resolution and run keys
# ----------------------------------------------------------------------
class TestExecutorSpec:
    def test_resolve_quick_matches_cli_quick_args(self):
        from repro.cli import QUICK_ARGS

        exp_id, kwargs, _ = ExperimentExecutor().resolve(
            {"experiment": "fig9", "quick": True}
        )
        assert exp_id == "fig9"
        assert kwargs == QUICK_ARGS["fig9"]

    def test_json_lists_normalize_to_cli_tuples(self):
        # a JSON submission and a CLI-style tuple parameterization are
        # the *same work* and must collapse onto the same run key
        ex = ExperimentExecutor()
        json_spec = {"experiment": "fig8", "params": {"block_sizes": [64, 256]}}
        _, kwargs, _ = ex.resolve(json_spec)
        assert kwargs["block_sizes"] == (64, 256)
        tuple_spec = {"experiment": "fig8",
                      "params": {"block_sizes": (64, 256)}}
        assert ex.key_for(json_spec) == ex.key_for(tuple_spec)

    def test_key_sensitive_to_params_and_obs(self):
        ex = ExperimentExecutor()
        base = ex.key_for(TINY_SPEC)
        assert base != ex.key_for(
            {"experiment": "fig8", "params": {"block_sizes": [128]}}
        )
        assert base != ex.key_for({**TINY_SPEC, "trace": True})
        assert len(base) == 64

    def test_bad_specs_rejected(self):
        ex = ExperimentExecutor()
        for spec in (
            None,
            {},
            {"experiment": "nope"},
            {"experiment": "fig8", "params": {"bogus_param": 1}},
            {"experiment": "fig7", "nodes": 8},  # fig7 is fixed-size
            {"experiment": "fig8", "wat": 1},
            {"experiment": "fig8", "check": ["notachecker"]},
            {"experiment": "fig8", "sample_interval": -1},
        ):
            with pytest.raises(ValueError):
                ex.key_for(spec)

    def test_nodes_override_lands_in_kwargs(self):
        _, kwargs, _ = ExperimentExecutor().resolve(
            {"experiment": "barrier", "nodes": 16}
        )
        assert kwargs["n_nodes"] == 16


# ----------------------------------------------------------------------
# Routing-level behaviour (no sockets)
# ----------------------------------------------------------------------
@pytest.fixture()
def app(tmp_path):
    app = build_app(
        store_dir=tmp_path / "store", cache_dir=tmp_path / "cache", workers=1
    )
    app.orchestrator.start()
    yield app
    app.orchestrator.shutdown(drain=False, timeout=30.0)


class TestRouting:
    def test_unknown_route_404(self, app):
        assert app.handle("GET", "/nope").status == 404
        assert app.handle("POST", "/healthz").status == 404

    def test_submit_validation_400(self, app):
        bad = json.dumps({"spec": {"experiment": "nope"}}).encode()
        resp = app.handle("POST", "/v1/jobs", bad)
        assert resp.status == 400
        assert "unknown experiment" in resp.json()["error"]
        assert app.handle("POST", "/v1/jobs", b"not json").status == 400
        notint = json.dumps({"spec": TINY_SPEC, "priority": "high"}).encode()
        assert app.handle("POST", "/v1/jobs", notint).status == 400

    def test_handler_bug_is_500_not_crash(self, app):
        app.store.count = lambda: 1 / 0  # sabotage one metrics gauge
        resp = app.handle("GET", "/v1/metrics")
        assert resp.status == 500
        assert "ZeroDivisionError" in resp.json()["error"]

    def test_healthz_reports_version_and_fingerprint(self, app):
        import repro
        from repro.perf.cache import repo_fingerprint

        body = app.handle("GET", "/healthz").json()
        assert body["status"] == "ok"
        assert body["version"] == repro.__version__
        assert body["code_fingerprint"] == repo_fingerprint()
        assert body["jobs"]["queued"] == 0

    def test_prometheus_endpoint_renders_exposition_text(self, app):
        resp = app.handle("GET", "/metrics")
        assert resp.status == 200
        assert resp.content_type.startswith("text/plain; version=0.0.4")
        text = resp.body.decode()
        assert "# TYPE serve_queue_depth gauge" in text
        assert 'serve_jobs{state="queued"} 0' in text
        assert 'serve_job_queue_seconds_bucket{le="+Inf"} 0' in text

    def test_job_events_unknown_job_404(self, app):
        assert app.handle("GET", "/v1/jobs/nope/events").status == 404

    def test_job_events_bad_timeout_400(self, app):
        resp = app.handle("GET", "/v1/jobs/x/events?timeout=soon")
        assert resp.status == 400

    def test_artifacts_of_unfinished_job_409(self, tmp_path):
        # a queued job has no published run yet; the API says so
        # instead of 404ing the job id. Workers never started, so the
        # job stays queued for the duration of the test.
        idle = build_app(
            store_dir=tmp_path / "s2", cache_dir=tmp_path / "c2", workers=1
        )
        job = idle.orchestrator.submit(TINY_SPEC)
        resp = idle.handle("GET", f"/v1/jobs/{job.id}/artifacts")
        assert resp.status == 409


# ----------------------------------------------------------------------
# Full loop over real HTTP with the real executor
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    app = build_app(store_dir=tmp / "store", cache_dir=tmp / "cache", workers=1)
    app.orchestrator.start()
    server = ServeServer(("127.0.0.1", 0), app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{server.port}")
    yield app, client
    server.shutdown()
    server.server_close()
    app.orchestrator.shutdown(drain=False, timeout=30.0)


class TestEndToEnd:
    def test_submit_wait_dedup_bit_identical(self, service):
        app, client = service
        first = client.submit(TINY_SPEC)
        assert first["state"] in ("queued", "running")
        first = client.wait(first["id"], timeout=120.0)
        assert first["state"] == "done", first.get("error")
        assert first["dedup"] is False

        executed_before = app.orchestrator.counters["executed"]
        dedup_before = app.orchestrator.counters["dedup_hits"]

        second = client.submit(TINY_SPEC)
        # terminal at submission: served from the run store
        assert second["state"] == "done"
        assert second["dedup"] is True
        assert app.orchestrator.counters["dedup_hits"] == dedup_before + 1
        # no worker-pool dispatch happened for the resubmission
        assert app.orchestrator.counters["executed"] == executed_before

        # artifacts are the same bytes, bit for bit
        for name in ("run.json", "report.txt", "table.json"):
            a = client.fetch(first["id"], name)
            b = client.fetch(second["id"], name)
            assert a == b and len(a) > 0

        # the run manifest is a valid repro-run/1 document
        from repro.obs.export import validate_run_manifest

        manifest = json.loads(client.fetch(first["id"], "run.json"))
        assert validate_run_manifest(manifest) == []
        assert manifest["experiment"] == "fig8"

        # and the table matches a direct in-process run of the driver
        from repro.experiments import ALL_EXPERIMENTS

        direct = ALL_EXPERIMENTS["fig8"](block_sizes=(64,))
        report = client.fetch(first["id"], "report.txt").decode()
        assert report == direct.format_table() + "\n"

    def test_artifact_listing_and_meta(self, service):
        _, client = service
        job = client.submit(TINY_SPEC)  # dedup hit from previous test
        listing = client.artifacts(job["id"])
        assert sorted(listing["artifacts"]) == [
            "report.txt", "run.json", "table.json",
        ]
        assert listing["meta"]["experiment"] == "fig8"

    def test_metrics_surface_serve_counters(self, service):
        _, client = service
        rows = {
            (r["name"], tuple(sorted(r["labels"].items()))): r["value"]
            for r in client.metrics()["rows"]
        }
        assert rows[("serve.queue_depth", ())] == 0
        assert rows[("serve.dedup_hits", ())] >= 1
        assert rows[("serve.store_runs", ())] >= 1
        assert 0.0 < rows[("serve.dedup_hit_ratio", ())] <= 1.0
        assert rows[("serve.jobs", (("state", "done"),))] >= 2
        assert ("serve.cache.hits", ()) in rows

    def test_unknown_job_and_artifact_404(self, service):
        _, client = service
        with pytest.raises(ServeError) as exc:
            client.status("doesnotexist")
        assert exc.value.status == 404
        job = client.submit(TINY_SPEC)
        with pytest.raises(ServeError) as exc:
            client.fetch(job["id"], "nope.bin")
        assert exc.value.status == 404

    def test_cancel_endpoint_roundtrip(self, service):
        _, client = service
        job = client.submit(TINY_SPEC)  # already done via dedup
        cancelled = client.cancel(job["id"])  # idempotent no-op
        assert cancelled["state"] == "done"

    def test_status_carries_dual_clocks_progress_and_trace_id(self, service):
        _, client = service
        spec = {"experiment": "fig8", "params": {"block_sizes": [256]}}
        job = client.submit(spec)
        job = client.wait(job["id"], timeout=120.0)
        assert job["state"] == "done", job.get("error")
        assert job["trace_id"] == job["id"]
        # wall-clock fields, ordered
        assert (
            job["submitted_at"] <= job["started_at"] <= job["finished_at"]
        )
        # monotonic-derived durations
        assert job["queue_seconds"] >= 0
        assert job["run_seconds"] > 0
        # final progress: every sweep point accounted for
        assert job["progress"]["done"] == job["progress"]["total"] > 0

    def test_event_stream_over_http(self, service):
        _, client = service
        spec = {"experiment": "fig8", "params": {"block_sizes": [1024]}}
        job = client.submit(spec)
        events = list(client.events(job["id"], timeout=120.0))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "snapshot"
        assert kinds[-1] == "done"  # server closes at the terminal event
        assert kinds.index("submitted") < kinds.index("started")
        progress = [e for e in events if e["event"] == "progress"]
        assert progress, "no progress events on the SSE stream"
        dones = [e["done"] for e in progress]
        assert dones == sorted(dones)  # monotone per-point completion
        assert progress[-1]["done"] == progress[-1]["total"] > 0

    def test_prometheus_scrape_over_http(self, service):
        _, client = service
        text = client._request("GET", "/metrics").decode()
        assert "# TYPE serve_submitted counter" in text
        assert 'serve_jobs{state="done"}' in text
        # at least one real execution happened: latency histograms filled
        assert 'serve_job_run_seconds_bucket{le="+Inf"}' in text
        assert "serve_job_run_seconds_count" in text
        assert "serve_store_runs" in text
        assert "serve_cache_hits" in text

    def test_trace_artifact_correlates_host_and_sim_spans(self, service):
        from repro.obs.export import HOST_PID

        _, client = service
        job = client.submit({**TINY_SPEC, "trace": True})
        job = client.wait(job["id"], timeout=120.0)
        assert job["state"] == "done", job.get("error")
        trace = json.loads(client.fetch(job["id"], "trace.json"))
        # the document-level correlation key matches the job
        assert trace["trace_id"] == job["trace_id"]
        host = [e for e in trace["traceEvents"] if e["pid"] == HOST_PID]
        sim = [e for e in trace["traceEvents"] if e["pid"] != HOST_PID]
        assert host and sim  # both layers in one trace
        spans = [e for e in host if e["ph"] == "B"]
        names = {e["name"] for e in spans}
        assert "job.queued" in names
        assert any(n.startswith("job.execute:fig8") for n in names)
        # per-sweep-point spans on the host track (sweep-point fn name)
        assert any(n.startswith("measure_point[") for n in names)
        # every host span is stamped with the job's trace id
        assert all(
            e["args"]["trace_id"] == job["trace_id"] for e in spans
        )
