"""Prometheus text-exposition tests (ISSUE 8 satellite): the renderer
in :mod:`repro.obs.promexport` must emit spec-conformant 0.0.4 text —
sanitized names, escaped label values, one ``# TYPE`` per metric, and
cumulative histogram buckets ending in ``le="+Inf"``."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import (
    CONTENT_TYPE,
    escape_label_value,
    main,
    metric_name,
    render_prometheus,
)


def _parse(text):
    """A deliberately tiny exposition parser: type declarations plus
    ``{"name{labels}": value}`` samples (Python's float() already
    accepts ``+Inf``/``NaN``)."""
    types, samples = {}, {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            types[name] = kind
        elif line and not line.startswith("#"):
            metric, value = line.rsplit(" ", 1)
            samples[metric] = float(value)
    return types, samples


class TestNamesAndLabels:
    def test_metric_name_sanitization(self):
        assert metric_name("serve.queue_depth") == "serve_queue_depth"
        assert metric_name("cache hit-rate%") == "cache_hit_rate_"
        assert metric_name("9lives") == "_9lives"
        assert metric_name("a:b_c") == "a:b_c"  # colons are legal

    def test_label_value_escaping(self):
        assert escape_label_value('say "hi"\n\\x') == r"say \"hi\"\n\\x"

    def test_escaped_labels_render_on_one_line(self):
        text = render_prometheus({"rows": [{
            "name": "weird", "kind": "gauge",
            "labels": {"path": 'a"b\\c\nd'}, "value": 1,
        }]})
        sample = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert sample == ['weird{path="a\\"b\\\\c\\nd"} 1']


class TestRendering:
    def test_counter_gauge_and_type_lines(self):
        text = render_prometheus({"rows": [
            {"name": "serve.submitted", "kind": "counter", "labels": {},
             "value": 7},
            {"name": "serve.jobs", "kind": "gauge",
             "labels": {"state": "done"}, "value": 3},
            {"name": "serve.jobs", "kind": "gauge",
             "labels": {"state": "queued"}, "value": 0},
        ]})
        types, samples = _parse(text)
        assert types == {"serve_submitted": "counter", "serve_jobs": "gauge"}
        # one TYPE line even though serve_jobs has two samples
        assert text.count("# TYPE serve_jobs") == 1
        assert samples["serve_submitted"] == 7
        assert samples['serve_jobs{state="done"}'] == 3
        assert samples['serve_jobs{state="queued"}'] == 0

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = render_prometheus({"rows": [{
            "name": "lat", "kind": "histogram", "labels": {},
            "value": {
                "bounds": [0.1, 1.0, 5.0],
                "counts": [2, 3, 0, 4],  # last entry = overflow bucket
                "sum": 12.5,
                "count": 9,
            },
        }]})
        types, samples = _parse(text)
        assert types == {"lat": "histogram"}
        assert samples['lat_bucket{le="0.1"}'] == 2
        assert samples['lat_bucket{le="1"}'] == 5  # cumulative, .0 trimmed
        assert samples['lat_bucket{le="5"}'] == 5
        assert samples['lat_bucket{le="+Inf"}'] == 9  # includes overflow
        assert samples["lat_sum"] == 12.5
        assert samples["lat_count"] == 9

    def test_none_and_nan_render_as_nan(self):
        _, samples = _parse(render_prometheus({"rows": [
            {"name": "a", "kind": "gauge", "labels": {}, "value": None},
            {"name": "b", "kind": "gauge", "labels": {},
             "value": float("nan")},
        ]}))
        assert samples["a"] != samples["a"]  # NaN
        assert samples["b"] != samples["b"]

    def test_kind_conflict_rejected(self):
        with pytest.raises(ValueError, match="both"):
            render_prometheus({"rows": [
                {"name": "x", "kind": "counter", "labels": {}, "value": 1},
                {"name": "x", "kind": "gauge", "labels": {}, "value": 2},
            ]})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown instrument kind"):
            render_prometheus({"rows": [
                {"name": "x", "kind": "summary", "labels": {}, "value": 1},
            ]})

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({"rows": []}) == ""


class TestRegistryRoundTrip:
    def test_live_registry_renders_and_parses(self):
        reg = MetricsRegistry()
        reg.counter("demo.hits", lambda: 4)
        reg.gauge("demo.depth", lambda: 2, queue="main")
        hist = reg.histogram("demo.lat", (1.0, 10.0))
        for v in (0.5, 0.6, 5.0, 100.0):
            hist.observe(v)
        types, samples = _parse(render_prometheus(reg.collect()))
        assert types == {
            "demo_hits": "counter",
            "demo_depth": "gauge",
            "demo_lat": "histogram",
        }
        assert samples["demo_hits"] == 4
        assert samples['demo_depth{queue="main"}'] == 2
        assert samples['demo_lat_bucket{le="1"}'] == 2
        assert samples['demo_lat_bucket{le="10"}'] == 3
        assert samples['demo_lat_bucket{le="+Inf"}'] == 4
        assert samples["demo_lat_count"] == 4

    def test_content_type_advertises_exposition_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestCli:
    def test_renders_a_run_manifest(self, tmp_path, capsys):
        import json

        manifest = {"metrics": {"rows": [
            {"name": "cache.hits", "kind": "counter", "labels": {},
             "value": 11},
        ]}}
        path = tmp_path / "run.json"
        path.write_text(json.dumps(manifest))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE cache_hits counter" in out
        assert "cache_hits 11" in out

    def test_manifest_without_metrics_fails(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        path.write_text("{}")
        assert main([str(path)]) == 1
        assert main([]) == 2
