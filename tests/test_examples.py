"""Smoke tests: every example script runs to completion and prints
its headline output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["speedup", "hybrid"],
    "producer_consumer.py": ["single message", "shared-memory"],
    "heat_diffusion.py": ["matches numpy exactly", "cycles/iter"],
    "adaptive_quadrature.py": ["integral", "speedup"],
    "custom_machine.py": ["default Alewife", "MP barrier"],
    "shared_objects.py": ["winner", "move-the-data"],
    "latency_tolerance.py": ["blocking loads", "hardware contexts"],
    "lossy_memcpy.py": ["data ok: True", "fault trace", "slowdown"],
    "racy_histogram.py": ["finding", "no findings", "race"],
}


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


def test_all_examples_listed():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(CASES), "keep CASES in sync with examples/"


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs(name):
    out = run_example(name)
    for needle in CASES[name]:
        assert needle in out, f"{name}: {needle!r} missing from output"
