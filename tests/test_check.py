"""Tests for the ``repro.check`` dynamic-analysis subsystem."""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import (
    CHECKER_NAMES,
    CheckerSet,
    CheckReport,
    Finding,
    hooks,
    validate_checks,
)
from repro.check.validate import main as validate_main
from repro.machine import Machine, MachineConfig
from repro.memory.address import home_of
from repro.memory.cache import LineState
from repro.proc import Compute, Load, Store
from repro.runtime.sync import Future, SpinLock
from repro.sim.engine import SimulationError


def checked_machine(n_nodes=2, checks=CHECKER_NAMES, **kw):
    m = Machine(MachineConfig(n_nodes=n_nodes))
    return m, CheckerSet(m, checks=checks, **kw)


# ----------------------------------------------------------------------
# Race detector: detection
# ----------------------------------------------------------------------
class TestRaceDetection:
    def test_unsynchronized_write_read_detected(self):
        m, cs = checked_machine(checks=("race",))
        addr = m.alloc(0, 8)

        def writer():
            yield Store(addr, 7)

        def reader():
            yield Compute(200)  # run after the write, with no HB edge
            v = yield Load(addr)
            assert v == 7

        m.processor(0).run_thread(writer(), label="writer")
        m.processor(1).run_thread(reader(), label="reader")
        m.run()
        rep = cs.finalize()
        assert rep.total == 1
        f = rep.findings[0]
        assert f.checker == "race"
        assert f.kind == "write-read"
        assert f.addr == addr
        # both conflicting source sites are reported
        assert len(f.sites) == 2
        assert all("test_check.py" in s for s in f.sites)
        assert "(writer)" in f.sites[0] and "(reader)" in f.sites[1]

    def test_write_write_race_detected(self):
        m, cs = checked_machine(checks=("race",))
        addr = m.alloc(0, 8)

        def bump(node):
            v = yield Load(addr)
            yield Compute(50)
            yield Store(addr, v + 1)

        m.processor(0).run_thread(bump(0), label="a")
        m.processor(1).run_thread(bump(1), label="b")
        m.run()
        rep = cs.finalize()
        kinds = {f.kind for f in rep.findings}
        assert kinds & {"write-write", "read-write", "write-read"}
        assert all(f.addr == addr for f in rep.findings)

    def test_future_orders_the_same_pair(self):
        m, cs = checked_machine(checks=("race",))
        addr = m.alloc(0, 8)
        fut = Future()

        def writer():
            yield Store(addr, 7)
            fut.resolve(None)

        def reader():
            yield from fut.wait()
            yield Load(addr)

        m.processor(0).run_thread(writer(), label="writer")
        m.processor(1).run_thread(reader(), label="reader")
        m.run()
        assert cs.finalize().total == 0

    def test_spinlock_orders_critical_sections(self):
        m, cs = checked_machine(checks=("race",))
        addr = m.alloc(0, 8)
        lock = SpinLock(m.alloc(0, 8))

        def bump(node):
            yield from lock.acquire()
            v = yield Load(addr)
            yield Compute(30)
            yield Store(addr, v + 1)
            yield from lock.release()

        for node in (0, 1):
            m.processor(node).run_thread(bump(node), label=f"bump{node}")
        m.run()
        assert cs.finalize().total == 0, cs.report.summarize()
        assert m.store.read(addr) == 2

    def test_same_context_never_races_with_itself(self):
        m, cs = checked_machine(checks=("race",))
        addr = m.alloc(0, 8)

        def worker():
            for i in range(4):
                yield Store(addr, i)
                yield Load(addr)

        m.processor(0).run_thread(worker(), label="w")
        m.run()
        assert cs.finalize().total == 0

    def test_duplicate_race_reported_once(self):
        """The same (addr, kind, site-pair) is deduplicated."""
        m, cs = checked_machine(checks=("race",))
        addr = m.alloc(0, 8)

        def writer():
            yield Store(addr, 1)

        def reader():
            yield Compute(200)
            for _ in range(5):
                yield Load(addr)

        m.processor(0).run_thread(writer(), label="w")
        m.processor(1).run_thread(reader(), label="r")
        m.run()
        assert cs.finalize().total == 1


# ----------------------------------------------------------------------
# Seeded mutations of the shipped workloads: removing the
# synchronization from a correct program must surface as findings.
# ----------------------------------------------------------------------
def _accum_workload(m, synchronized):
    """Fig.8-style accumulate, folded into a *shared* total word; the
    mutation removes the lock around the read-modify-write."""
    from repro.apps.accum import fill_array

    n = 8
    array = m.alloc(0, n * 8)
    fill_array(m, array, n)
    total = m.alloc(0, 8)
    lock = SpinLock(m.alloc(0, 8))

    def summer(node, lo, hi):
        acc = 0
        for i in range(lo, hi):
            v = yield Load(array + i * 8)
            acc += v
            yield Compute(2)
        if synchronized:
            yield from lock.acquire()
        t = yield Load(total)
        yield Compute(2)
        yield Store(total, t + acc)
        if synchronized:
            yield from lock.release()

    m.processor(0).run_thread(summer(0, 0, n // 2), label="sum0")
    m.processor(1).run_thread(summer(1, n // 2, n), label="sum1")
    return total


def _barrier_workload(m, synchronized):
    """Barrier-phased writer/readers; the mutation removes the barrier."""
    from repro.runtime.barrier import SMTreeBarrier

    barrier = SMTreeBarrier(m, arity=2) if synchronized else None
    addr = m.alloc(0, 8)

    def member(node):
        if node == 0:
            yield Store(addr, 42)
        if barrier is not None:
            yield from barrier.enter(node)
        else:
            yield Compute(1)  # the mutation: no barrier between phases
        if node != 0:
            yield Load(addr)

    for node in range(m.n_nodes):
        m.processor(node).run_thread(member(node), label=f"n{node}")
    return addr


class TestSeededMutations:
    @pytest.mark.parametrize("workload,n_nodes", [
        (_accum_workload, 2),
        (_barrier_workload, 4),
    ])
    def test_desynchronized_variant_is_flagged(self, workload, n_nodes):
        m, cs = checked_machine(n_nodes=n_nodes, checks=("race",))
        addr = workload(m, synchronized=False)
        m.run()
        rep = cs.finalize()
        assert rep.total >= 1, "mutation removed sync but no race reported"
        assert all(f.addr == addr for f in rep.findings)
        assert all(
            all("test_check.py" in s for s in f.sites) for f in rep.findings
        )

    @pytest.mark.parametrize("workload,n_nodes", [
        (_accum_workload, 2),
        (_barrier_workload, 4),
    ])
    def test_synchronized_variant_is_clean(self, workload, n_nodes):
        m, cs = checked_machine(n_nodes=n_nodes, checks=CHECKER_NAMES)
        workload(m, synchronized=True)
        m.run()
        rep = cs.finalize()
        assert rep.total == 0, rep.summarize()


# ----------------------------------------------------------------------
# Coherence sanitizer (violations require corrupting protocol state by
# hand — the real protocol maintains the invariants)
# ----------------------------------------------------------------------
def _dirty_line(m):
    """Run a store on node 0; return its (MODIFIED) cache line."""
    addr = m.alloc(0, 8)

    def writer():
        yield Store(addr, 1)

    m.processor(0).run_thread(writer(), label="w")
    m.run()
    lines = [
        ln for ln in m.nodes[0].cache.resident_lines()
        if m.nodes[0].cache.state(ln) in (LineState.MODIFIED, LineState.EXCLUSIVE)
    ]
    assert lines
    return lines[0]


class TestCoherenceSanitizer:
    def test_clean_run_no_findings(self):
        m, cs = checked_machine(n_nodes=4, checks=("coherence",))
        addr = m.alloc(0, 8)

        def worker(node):
            yield Store(addr, node)
            yield Load(addr)

        for node in range(4):
            m.processor(node).run_thread(worker(node))
        m.run()
        assert cs.finalize().total == 0

    def test_stale_dirty_line_at_quiescence(self):
        m, cs = checked_machine(checks=("coherence",))
        line = _dirty_line(m)
        entry = m.nodes[home_of(line)].directory.peek(line)
        entry.owner = 1  # corrupt: home now credits the wrong node
        rep = cs.finalize()
        assert any(
            f.kind == "stale-dirty-line" and f.addr == line for f in rep.findings
        )

    def test_live_swmr_violation(self):
        m, cs = checked_machine(checks=("coherence",))
        line = _dirty_line(m)
        # corrupt: a second cache claims ownership of the same line
        m.nodes[1].cache.fill(line, LineState.MODIFIED)
        assert any(f.kind == "multiple-owners" for f in cs.report.findings)
        cs.finalize()

    def test_live_directory_entry_inconsistency(self):
        m, cs = checked_machine(checks=("coherence",))
        line = _dirty_line(m)
        directory = m.nodes[home_of(line)].directory
        directory.peek(line).sharers.add(1)  # EXCLUSIVE entry with a sharer
        directory.drop_sharer(line, 3)  # any mutation triggers the check
        assert any(
            f.kind == "directory-inconsistent" for f in cs.report.findings
        )
        cs.finalize()


# ----------------------------------------------------------------------
# Deadlock / livelock watchdog
# ----------------------------------------------------------------------
class TestDeadlockWatchdog:
    def test_spin_starvation_flagged_once(self):
        m, cs = checked_machine(checks=("deadlock",), spin_limit=50)
        addr = m.alloc(0, 8)

        def spinner():
            for _ in range(120):
                yield Load(addr)  # never-satisfied condition poll

        m.processor(0).run_thread(spinner(), label="spinner")
        m.run()
        rep = cs.finalize()
        spins = [f for f in rep.findings if f.kind == "spin-starvation"]
        assert len(spins) == 1
        assert spins[0].addr == addr
        assert "test_check.py" in spins[0].sites[0]

    def test_productive_loop_not_flagged(self):
        m, cs = checked_machine(checks=("deadlock",), spin_limit=50)
        addr = m.alloc(0, 8)

        def worker():
            for i in range(120):
                yield Load(addr)
                yield Store(addr, i)  # a store resets the spin counter

        m.processor(0).run_thread(worker(), label="w")
        m.run()
        assert cs.finalize().total == 0

    def test_unresolved_future_reported_at_quiescence(self):
        m, cs = checked_machine(checks=("deadlock",))
        fut = Future()  # nobody ever resolves this

        def waiter():
            yield from fut.wait()

        m.processor(1).run_thread(waiter(), label="waiter")
        m.run()
        rep = cs.finalize()
        stuck = [f for f in rep.findings if f.kind == "suspended-at-quiescence"]
        assert len(stuck) == 1
        assert stuck[0].node == 1
        assert "waiter" in stuck[0].message
        assert "sync.py" in stuck[0].sites[0]  # parked inside Future.wait

    def test_resumed_suspension_is_clean(self):
        m, cs = checked_machine(checks=("deadlock",))
        fut = Future()

        def waiter():
            yield from fut.wait()

        def resolver():
            yield Compute(100)
            fut.resolve(1)

        m.processor(0).run_thread(waiter(), label="waiter")
        m.processor(1).run_thread(resolver(), label="resolver")
        m.run()
        assert cs.finalize().total == 0


# ----------------------------------------------------------------------
# Future double-resolution guard (satellite of the checker work)
# ----------------------------------------------------------------------
class TestFutureDoubleResolve:
    def test_double_resolve_reports_both_sites(self):
        fut = Future()
        fut.resolve(1)
        with pytest.raises(SimulationError) as ei:
            fut.resolve(2)
        msg = str(ei.value)
        assert "resolved twice" in msg
        assert msg.count("test_check.py") == 2  # first AND second site
        assert "first value 1" in msg and "second 2" in msg


# ----------------------------------------------------------------------
# CheckerSet mechanics
# ----------------------------------------------------------------------
class TestCheckerSet:
    def test_finalize_idempotent_and_detaches(self):
        m, cs = checked_machine()
        proc = m.processor(0)
        assert "_execute" in proc.__dict__  # wrapped (instance attr)
        rep = cs.finalize()
        assert cs.finalize() is rep
        assert "_execute" not in proc.__dict__  # pristine class methods back
        assert hooks.SINKS == []

    def test_context_manager_finalizes(self):
        m = Machine(MachineConfig(n_nodes=2))
        with CheckerSet(m, checks=("race",)) as cs:
            assert hooks.SINKS
        assert hooks.SINKS == []

    def test_on_finding_callback(self):
        seen = []
        m, cs = checked_machine(checks=("race",), on_finding=seen.append)
        addr = m.alloc(0, 8)

        def writer():
            yield Store(addr, 1)

        def reader():
            yield Compute(100)
            yield Load(addr)

        m.processor(0).run_thread(writer())
        m.processor(1).run_thread(reader())
        m.run()
        cs.finalize()
        assert len(seen) == 1 and isinstance(seen[0], Finding)

    def test_checkers_do_not_perturb_simulated_time(self):
        def run(checked):
            m = Machine(MachineConfig(n_nodes=2))
            cs = CheckerSet(m) if checked else None
            addr = m.alloc(0, 8)
            lock = SpinLock(m.alloc(0, 8))

            def bump(node):
                yield from lock.acquire()
                v = yield Load(addr)
                yield Store(addr, v + 1)
                yield from lock.release()

            for node in (0, 1):
                m.processor(node).run_thread(bump(node))
            m.run()
            if cs is not None:
                assert cs.finalize().total == 0
            return m.sim.now

        assert run(False) == run(True)

    def test_validate_checks(self):
        assert validate_checks(["deadlock", "race", "race"]) == ("race", "deadlock")
        assert validate_checks(CHECKER_NAMES) == CHECKER_NAMES
        with pytest.raises(ValueError, match="bogus"):
            validate_checks(["race", "bogus"])


# ----------------------------------------------------------------------
# CheckReport: merging, caps, serialization
# ----------------------------------------------------------------------
def _finding(i=0, checker="race"):
    return Finding(
        checker=checker, kind="write-write", time=i, node=0,
        message=f"f{i}", addr=0x10 + i, sites=(f"a.py:{i}", f"b.py:{i}"),
    )


class TestCheckReport:
    def test_cap_counts_dropped(self):
        rep = CheckReport(max_findings=2)
        for i in range(5):
            rep.add(_finding(i))
        assert len(rep.findings) == 2
        assert rep.dropped == 3
        assert rep.total == 5
        assert rep.counts == {"race": 5}

    def test_merge_preserves_order_and_counts(self):
        a, b = CheckReport(), CheckReport()
        a.add(_finding(0))
        b.add(_finding(1, checker="deadlock"))
        a.merge(b)
        assert [f.message for f in a.findings] == ["f0", "f1"]
        assert a.counts == {"race": 1, "deadlock": 1}

    def test_dict_round_trip(self):
        rep = CheckReport()
        rep.add(_finding(3))
        back = CheckReport.from_dict(
            json.loads(json.dumps(rep.as_dict()))
        )
        assert back.findings == rep.findings
        assert back.counts == rep.counts
        assert isinstance(back.findings[0].sites, tuple)

    def test_summarize(self):
        rep = CheckReport()
        assert rep.summarize() == "check: no findings"
        rep.add(_finding(1))
        text = rep.summarize()
        assert "1 finding" in text and "0x11" in text and "a.py:1" in text


# ----------------------------------------------------------------------
# The findings gate: python -m repro.check over run.json manifests
# ----------------------------------------------------------------------
class TestValidateCli:
    def _manifest(self, tmp_path, name, check):
        p = tmp_path / name
        p.write_text(json.dumps({"experiment": "x", "check": check}))
        return str(p)

    def test_clean_manifests_exit_zero(self, tmp_path, capsys):
        clean = CheckReport().as_dict()
        p = self._manifest(tmp_path, "run1.json", clean)
        assert validate_main([p]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_nonzero_and_write_artifact(self, tmp_path, capsys):
        rep = CheckReport()
        rep.add(_finding(0))
        p1 = self._manifest(tmp_path, "run1.json", rep.as_dict())
        p2 = self._manifest(tmp_path, "run2.json", CheckReport().as_dict())
        out = tmp_path / "findings.json"
        assert validate_main([p1, p2, "--out", str(out)]) == 1
        merged = json.loads(out.read_text())
        assert merged["total"] == 1
        assert capsys.readouterr().out.startswith("check: 1 finding")

    def test_unchecked_manifest_noted(self, tmp_path, capsys):
        p = tmp_path / "run.json"
        p.write_text(json.dumps({"experiment": "x"}))
        assert validate_main([str(p)]) == 0
        assert "no check section" in capsys.readouterr().out

    def test_usage_errors(self, capsys):
        assert validate_main([]) == 2
        assert validate_main(["--out"]) == 2
        assert validate_main(["--bogus", "x.json"]) == 2
        assert "usage:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Observability-session + trace wiring
# ----------------------------------------------------------------------
class TestSessionWiring:
    def test_session_collects_findings_and_mirrors_to_trace(self):
        from repro.experiments.common import make_machine
        from repro.obs.session import ObsConfig, session

        cfg = ObsConfig(
            check=("race",), trace=True, trace_kinds=("check",),
            metrics=False, profile=False,
        )
        with session(cfg) as s:
            m = make_machine(2)
            addr = m.alloc(0, 8)

            def writer():
                yield Store(addr, 1)

            def reader():
                yield Compute(100)
                yield Load(addr)

            m.processor(0).run_thread(writer(), label="w")
            m.processor(1).run_thread(reader(), label="r")
            m.run()
            data = s.data()
        assert data["check"]["total"] == 1
        rec = data["records"][0]
        assert rec["check"]["total"] == 1
        check_events = [ev for ev in rec["trace"] if ev[2] == "check"]
        assert check_events and check_events[0][3] == "write-read"

    def test_absorb_merges_worker_findings(self):
        from repro.obs.session import ObsConfig, ObsSession

        rep = CheckReport()
        rep.add(_finding(0))
        s = ObsSession(ObsConfig(check=("race",)))
        s.absorb({"records": [], "metrics": None,
                  "cycle_attribution": None, "check": rep.as_dict()})
        s.absorb({"records": [], "metrics": None,
                  "cycle_attribution": None, "check": rep.as_dict()})
        assert s.check.total == 2

    def test_cli_run_experiment_with_checkers(self, tmp_path):
        from repro.cli import run_experiment

        out = run_experiment(
            "barrier", quick=True,
            metrics_out=str(tmp_path / "run.json"),
            check="race,coherence,deadlock",
        )
        assert "check: no findings" in out
        manifest = json.loads((tmp_path / "run.json").read_text())
        assert manifest["check"]["total"] == 0
        # the manifest gates cleanly through the validator
        assert validate_main([str(tmp_path / "run.json")]) == 0

    def test_cli_rejects_unknown_checker(self):
        from repro.cli import run_experiment

        with pytest.raises(SystemExit, match="bogus"):
            run_experiment("barrier", quick=True, check="race,bogus")


# ----------------------------------------------------------------------
# All shipped experiments: zero findings AND cycle-identical when fully
# checked (the checkers must never perturb simulated time)
# ----------------------------------------------------------------------
GOLDEN = Path(__file__).parent / "golden" / "cycle_identity.json"

CONFIGS = {
    "barrier": dict(n_nodes=16),
    "rti": dict(n_nodes=16, trials=3),
    "fig7": dict(block_sizes=(64, 256, 1024)),
    "fig8": dict(block_sizes=(64, 256, 1024)),
    "fig9": dict(delays=(0, 1000), depth=9, n_nodes=16),
    "fig10": dict(tols=(3e-3, 1e-3), n_nodes=16),
    "fig11": dict(grid_sizes=(32,), n_nodes=16, iters=3),
    "faults": dict(loss_rates=(0.0, 0.05), nbytes=512, n_nodes=16, episodes=2),
}


@pytest.mark.parametrize("exp_id", sorted(CONFIGS))
def test_checked_experiment_clean_and_cycle_identical(exp_id):
    from repro.experiments import ALL_EXPERIMENTS
    from repro.obs.session import ObsConfig, session

    golden = json.loads(GOLDEN.read_text())
    cfg = ObsConfig(check=CHECKER_NAMES, metrics=False, profile=False)
    with session(cfg) as s:
        res = ALL_EXPERIMENTS[exp_id](**CONFIGS[exp_id])
        data = s.data()
    assert data["check"]["total"] == 0, (
        f"{exp_id}: checkers flagged a shipped experiment:\n"
        + CheckReport.from_dict(data["check"]).summarize()
    )
    normalized = json.loads(json.dumps(res.rows, default=str))
    assert normalized == golden[exp_id]["rows"], (
        f"{exp_id}: attaching checkers changed simulated cycle counts — "
        "the zero-overhead contract is broken"
    )


# ----------------------------------------------------------------------
# Property: fully-synchronized random programs never produce findings
# ----------------------------------------------------------------------
@given(
    st.integers(2, 4),
    st.lists(st.integers(0, 40), min_size=1, max_size=6),
)
@settings(max_examples=15, deadline=None)
def test_future_synchronized_programs_have_no_findings(n_nodes, delays):
    m = Machine(MachineConfig(n_nodes=n_nodes))
    cs = CheckerSet(m, checks=CHECKER_NAMES)
    addrs = [m.alloc(i % n_nodes, 8) for i in range(len(delays))]
    futs = [Future() for _ in delays]

    def producer(i):
        yield Compute(delays[i])
        yield Store(addrs[i], i + 1)
        futs[i].resolve(i)

    def consumer():
        total = 0
        for i in range(len(delays)):
            yield from futs[i].wait()
            v = yield Load(addrs[i])
            total += v
        return total

    for i in range(len(delays)):
        m.processor(i % n_nodes).run_thread(producer(i), label=f"p{i}")
    m.processor(n_nodes - 1).run_thread(consumer(), label="c")
    m.run()
    rep = cs.finalize()
    assert rep.total == 0, rep.summarize()
