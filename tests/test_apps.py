"""Correctness tests for the paper's applications."""

import numpy as np
import pytest

from repro.apps.accum import (
    AccumFetchService,
    accum_message_passing,
    accum_shared_memory,
    fill_array,
)
from repro.apps.aq import (
    aq_parallel,
    aq_sequential,
    count_nodes,
    default_integrand,
    sequential_cycles as aq_seq_cycles,
)
from repro.apps.grain import grain_parallel, grain_sequential, sequential_cycles
from repro.apps.jacobi import JacobiApp, initial_grid, reference_jacobi
from repro.machine import Machine, MachineConfig
from repro.runtime import BulkTransfer, Runtime


def machine(n=4):
    return Machine(MachineConfig(n_nodes=n))


class TestAccum:
    def test_sm_sum_correct(self):
        m = machine()
        arr = m.alloc(1, 64 * 8)
        values = fill_array(m, arr, 64)
        box = []
        m.processor(0).run_thread(accum_shared_memory(arr, 64), on_finish=box.append)
        m.run()
        assert box == [sum(values)]

    def test_mp_sum_correct(self):
        m = machine()
        bulk = BulkTransfer(m)
        AccumFetchService(m, bulk)
        arr = m.alloc(1, 64 * 8)
        buf = m.alloc(0, 64 * 8)
        values = fill_array(m, arr, 64)
        box = []
        m.processor(0).run_thread(
            accum_message_passing(bulk, 1, arr, buf, 64), on_finish=box.append
        )
        m.run()
        assert box == [sum(values)]

    def test_sm_beats_mp_with_prefetching(self):
        """Fig. 8: prefetched SM accum is faster (MP serializes
        transfer and compute)."""
        n_elems = 512  # 4 KB
        # SM
        m1 = machine()
        arr1 = m1.alloc(1, n_elems * 8)
        fill_array(m1, arr1, n_elems)
        t1 = []
        m1.processor(0).run_thread(
            accum_shared_memory(arr1, n_elems), on_finish=lambda v: t1.append(m1.sim.now)
        )
        m1.run()
        # MP
        m2 = machine()
        bulk = BulkTransfer(m2)
        AccumFetchService(m2, bulk)
        arr2 = m2.alloc(1, n_elems * 8)
        buf2 = m2.alloc(0, n_elems * 8)
        fill_array(m2, arr2, n_elems)
        t2 = []
        m2.processor(0).run_thread(
            accum_message_passing(bulk, 1, arr2, buf2, n_elems),
            on_finish=lambda v: t2.append(m2.sim.now),
        )
        m2.run()
        assert t1[0] < t2[0]


class TestGrain:
    def test_sequential_count(self):
        m = machine(1)
        box = []
        m.processor(0).run_thread(grain_sequential(6, 0), on_finish=box.append)
        m.run()
        assert box == [64]

    def test_sequential_cycles_matches_simulation(self):
        m = machine(1)
        box = []
        m.processor(0).run_thread(grain_sequential(6, 50), on_finish=box.append)
        m.run()
        assert m.sim.now == sequential_cycles(6, 50)

    def test_paper_calibration_anchors(self):
        """7.1 ms at l=0 and 131.2 ms at l=1000 for n=12 (33 MHz)."""
        ms0 = sequential_cycles(12, 0) / 33e3
        ms1000 = sequential_cycles(12, 1000) / 33e3
        assert abs(ms0 - 7.1) / 7.1 < 0.05
        assert abs(ms1000 - 131.2) / 131.2 < 0.05

    @pytest.mark.parametrize("kind", ["hybrid", "sm"])
    def test_parallel_correct(self, kind):
        m = machine(8)
        rt = Runtime(m, scheduler=kind)
        result, _ = rt.run_to_completion(
            0, lambda rt, nd: grain_parallel(rt, nd, 7, 10)
        )
        assert result == 128


class TestAq:
    def test_sequential_matches_scipy(self):
        import scipy.integrate as si

        m = machine(1)
        box = []
        m.processor(0).run_thread(
            aq_sequential(default_integrand, 0, 0, 1, 1, 1e-4), on_finish=box.append
        )
        m.run()
        ref, _err = si.dblquad(
            lambda y, x: default_integrand(x, y), 0, 1, 0, 1, epsabs=1e-8
        )
        assert abs(box[0] - ref) < 5e-3

    @pytest.mark.parametrize("kind", ["hybrid", "sm"])
    def test_parallel_matches_sequential(self, kind):
        m0 = machine(1)
        box = []
        m0.processor(0).run_thread(
            aq_sequential(default_integrand, 0, 0, 1, 1, 1e-3), on_finish=box.append
        )
        m0.run()
        m = machine(8)
        rt = Runtime(m, scheduler=kind)
        result, _ = rt.run_to_completion(
            0, lambda rt, nd: aq_parallel(rt, nd, default_integrand, 0, 0, 1, 1, 1e-3)
        )
        assert result == pytest.approx(box[0], rel=1e-12)

    def test_tolerance_scales_tree(self):
        n_loose = count_nodes(default_integrand, 0, 0, 1, 1, 1e-2)
        n_tight = count_nodes(default_integrand, 0, 0, 1, 1, 1e-4)
        assert n_tight > 2 * n_loose

    def test_tree_is_irregular(self):
        """Different quadrants refine to different depths."""
        quads = [(0, 0, 0.5, 0.5), (0.5, 0.5, 1, 1), (0, 0.5, 0.5, 1)]
        counts = {q: count_nodes(default_integrand, *q, 2.5e-4) for q in quads}
        assert len(set(counts.values())) > 1

    def test_sequential_cycle_model(self):
        m = machine(1)
        m.processor(0).run_thread(aq_sequential(default_integrand, 0, 0, 1, 1, 1e-3))
        m.run()
        assert m.sim.now == aq_seq_cycles(default_integrand, 0, 0, 1, 1, 1e-3)


class TestJacobi:
    @pytest.mark.parametrize("mode", ["sm", "mp"])
    def test_matches_numpy_reference(self, mode):
        m = machine(4)  # 2x2 mesh
        app = JacobiApp(m, grid_size=16, iters=5, mode=mode)
        grid, _cycles = app.run()
        ref = reference_jacobi(initial_grid(16), 5)
        np.testing.assert_allclose(grid, ref, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("mode", ["sm", "mp"])
    def test_more_iterations_converge_toward_steady_state(self, mode):
        m = machine(4)
        app = JacobiApp(m, grid_size=16, iters=12, mode=mode)
        grid, _ = app.run()
        resid = np.abs(grid - reference_jacobi(initial_grid(16), 13)).max()
        prev_resid = np.abs(initial_grid(16) - reference_jacobi(initial_grid(16), 13)).max()
        assert resid < prev_resid

    def test_grid_not_divisible_rejected(self):
        with pytest.raises(ValueError):
            JacobiApp(machine(4), grid_size=17, iters=1)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            JacobiApp(machine(4), grid_size=16, iters=1, mode="bogus")

    def test_single_node_no_exchange(self):
        m = machine(1)
        app = JacobiApp(m, grid_size=8, iters=3, mode="sm")
        grid, _ = app.run()
        ref = reference_jacobi(initial_grid(8), 3)
        np.testing.assert_allclose(grid, ref, rtol=1e-12)

    def test_cycles_scale_with_grid(self):
        m1 = machine(4)
        _g, c_small = JacobiApp(m1, grid_size=16, iters=3, mode="sm").run()
        m2 = machine(4)
        _g, c_large = JacobiApp(m2, grid_size=32, iters=3, mode="sm").run()
        assert c_large > c_small


class TestAccumPipelined:
    def _run_mp_pipelined(self, n_elems, chunk=64):
        from repro.apps.accum import accum_message_pipelined

        m = Machine(MachineConfig(n_nodes=4))
        bulk = BulkTransfer(m)
        AccumFetchService(m, bulk)
        arr = m.alloc(1, n_elems * 8)
        buf = m.alloc(0, n_elems * 8)
        values = fill_array(m, arr, n_elems)
        box = []
        m.processor(0).run_thread(
            accum_message_pipelined(bulk, 1, arr, buf, n_elems, chunk_elems=chunk),
            on_finish=lambda v: box.append((v, m.sim.now)),
        )
        m.run()
        total, cycles = box[0]
        assert total == sum(values)
        return cycles

    def test_sum_correct(self):
        self._run_mp_pipelined(128)

    def test_chunk_validation(self):
        from repro.apps.accum import accum_message_pipelined

        with pytest.raises(ValueError):
            list(accum_message_pipelined(None, 1, 0, 0, 8, chunk_elems=0))

    def test_pipelining_beats_monolithic_transfer(self):
        """Overlapping chunk transfers with summing beats the
        transfer-then-sum version (paper §4.4's speculation)."""
        n_elems = 512  # 4 KB
        m = Machine(MachineConfig(n_nodes=4))
        bulk = BulkTransfer(m)
        AccumFetchService(m, bulk)
        arr = m.alloc(1, n_elems * 8)
        buf = m.alloc(0, n_elems * 8)
        fill_array(m, arr, n_elems)
        box = []
        m.processor(0).run_thread(
            accum_message_passing(bulk, 1, arr, buf, n_elems),
            on_finish=lambda v: box.append(m.sim.now),
        )
        m.run()
        mono = box[0]
        piped = self._run_mp_pipelined(n_elems)
        assert piped < mono

    def test_paper_prediction_pipelined_close_to_sm(self):
        """§4.4: even pipelined, messaging beats prefetched SM 'only by
        a very small amount' (we accept either side within 40%)."""
        n_elems = 512
        piped = self._run_mp_pipelined(n_elems)
        m = Machine(MachineConfig(n_nodes=4))
        arr = m.alloc(1, n_elems * 8)
        fill_array(m, arr, n_elems)
        box = []
        m.processor(0).run_thread(
            accum_shared_memory(arr, n_elems), on_finish=lambda v: box.append(m.sim.now)
        )
        m.run()
        sm = box[0]
        assert 0.6 < piped / sm < 1.6, f"pipelined {piped} vs SM {sm}"


class TestJacobiConvergence:
    @pytest.mark.parametrize("mode", ["sm", "mp"])
    def test_stops_early_when_converged(self, mode):
        m = machine(4)
        app = JacobiApp(m, grid_size=16, iters=500, mode=mode, converge_eps=0.5)
        _grid, _cycles = app.run()
        assert app.converged_at is not None
        assert app.converged_at < 500
        # every node stopped at the same iteration
        assert len(set(app._iter_done)) == 1

    def test_matches_reference_up_to_stop(self):
        m = machine(4)
        app = JacobiApp(m, grid_size=16, iters=500, mode="sm", converge_eps=0.5)
        grid, _ = app.run()
        ref = reference_jacobi(initial_grid(16), app.converged_at)
        np.testing.assert_allclose(grid, ref, rtol=1e-12, atol=1e-12)

    def test_tighter_eps_runs_longer(self):
        stops = {}
        for eps in (1.0, 0.05):
            m = machine(4)
            app = JacobiApp(m, grid_size=16, iters=500, mode="sm", converge_eps=eps)
            app.run()
            stops[eps] = app.converged_at
        assert stops[0.05] > stops[1.0]

    def test_no_eps_runs_fixed_iterations(self):
        m = machine(4)
        app = JacobiApp(m, grid_size=16, iters=7, mode="sm")
        app.run()
        assert app.converged_at is None
        assert set(app._iter_done) == {7}
