"""Orchestrator lifecycle tests (ISSUE 6 satellite).

Covered: priority ordering, cancellation of queued and of running
jobs, dedup hit on resubmission (no re-execution), failure capture,
and graceful shutdown with jobs in flight.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.orchestrator import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    JobCancelled,
    JobOrchestrator,
    OrchestratorClosed,
)
from repro.serve.store import RunStore

POLL = 0.005


def _spin_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(POLL)


class FakeExecutor:
    """Deterministic executor: records execution order, optionally
    blocks on a gate (to hold a job 'running') and polls
    ``should_cancel`` while blocked (cooperative cancellation)."""

    def __init__(self) -> None:
        self.executed: list[str] = []
        self.gates: dict[str, threading.Event] = {}
        self.started: dict[str, threading.Event] = {}
        self.fail: set[str] = set()
        self._lock = threading.Lock()

    def hold(self, name: str) -> threading.Event:
        """Make job ``name`` block until the returned event is set."""
        self.gates[name] = threading.Event()
        self.started[name] = threading.Event()
        return self.gates[name]

    def key_for(self, spec: dict) -> str:
        return f"key-{spec['name']}"

    def execute(self, spec, should_cancel):
        name = spec["name"]
        started = self.started.get(name)
        if started is not None:
            started.set()
        gate = self.gates.get(name)
        while gate is not None and not gate.is_set():
            if should_cancel():
                raise JobCancelled()
            time.sleep(POLL)
        if name in self.fail:
            raise RuntimeError(f"boom {name}")
        with self._lock:
            self.executed.append(name)
        meta = {"experiment": name}
        return meta, {"report.txt": f"result of {name}\n".encode()}


@pytest.fixture()
def rig(tmp_path):
    executor = FakeExecutor()
    store = RunStore(tmp_path / "store")
    orch = JobOrchestrator(executor, store, workers=1)
    yield executor, store, orch
    orch.shutdown(drain=False, timeout=10.0)


class TestPriority:
    def test_higher_priority_runs_first_ties_fifo(self, rig):
        executor, _, orch = rig
        # submit before starting workers so the queue order is decided
        # purely by (priority, submission sequence)
        orch.submit({"name": "low-a"}, priority=0)
        orch.submit({"name": "high"}, priority=5)
        orch.submit({"name": "low-b"}, priority=0)
        orch.submit({"name": "mid"}, priority=3)
        orch.start()
        _spin_until(lambda: len(executor.executed) == 4)
        assert executor.executed == ["high", "mid", "low-a", "low-b"]


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, rig):
        executor, store, orch = rig
        blocker_gate = executor.hold("blocker")
        orch.start()
        blocker = orch.submit({"name": "blocker"})
        executor.started["blocker"].wait(5.0)
        victim = orch.submit({"name": "victim"})
        assert victim.state == QUEUED
        assert orch.cancel(victim.id).state == CANCELLED
        blocker_gate.set()
        _spin_until(lambda: orch.get(blocker.id).state == DONE)
        assert orch.get(victim.id).state == CANCELLED
        assert "victim" not in executor.executed
        assert store.get(victim.key) is None
        assert orch.counters["cancelled"] == 1

    def test_cancel_running_job_cooperatively(self, rig):
        executor, store, orch = rig
        executor.hold("runner")  # never released: cancel must break it
        orch.start()
        job = orch.submit({"name": "runner"})
        executor.started["runner"].wait(5.0)
        assert orch.get(job.id).state == "running"
        orch.cancel(job.id)
        finished = orch.wait(job.id, timeout=10.0)
        assert finished.state == CANCELLED
        assert store.get(job.key) is None  # never published
        assert "runner" not in executor.executed

    def test_cancel_unknown_job_raises(self, rig):
        _, _, orch = rig
        with pytest.raises(KeyError):
            orch.cancel("nope")

    def test_cancel_done_job_is_idempotent_noop(self, rig):
        executor, _, orch = rig
        orch.start()
        job = orch.submit({"name": "j"})
        orch.wait(job.id, timeout=10.0)
        assert orch.cancel(job.id).state == DONE


class TestDedup:
    def test_resubmission_served_from_store_without_dispatch(self, rig):
        executor, store, orch = rig
        orch.start()
        first = orch.submit({"name": "job"})
        orch.wait(first.id, timeout=10.0)
        assert first.state == DONE and not first.dedup
        assert store.read_artifact(first.key, "report.txt") == b"result of job\n"

        second = orch.submit({"name": "job"})
        # answered at submission: terminal immediately, never queued
        assert second.state == DONE
        assert second.dedup is True
        assert second.key == first.key
        assert executor.executed == ["job"]  # exactly one real execution
        assert orch.counters["dedup_hits"] == 1
        assert orch.counters["executed"] == 1
        assert orch.dedup_hit_ratio() == 0.5

    def test_different_spec_is_not_deduped(self, rig):
        executor, _, orch = rig
        orch.start()
        a = orch.submit({"name": "a"})
        orch.wait(a.id, timeout=10.0)
        b = orch.submit({"name": "b"})
        orch.wait(b.id, timeout=10.0)
        assert not b.dedup
        assert executor.executed == ["a", "b"]


class TestFailure:
    def test_failed_job_captures_error_and_publishes_nothing(self, rig):
        executor, store, orch = rig
        executor.fail.add("bad")
        orch.start()
        job = orch.submit({"name": "bad"})
        finished = orch.wait(job.id, timeout=10.0)
        assert finished.state == FAILED
        assert "boom bad" in finished.error
        assert store.get(job.key) is None
        assert orch.counters["failed"] == 1
        # a failed run was never stored, so a resubmission retries
        retry = orch.submit({"name": "bad"})
        assert not retry.dedup


class TestGracefulShutdown:
    def test_drain_finishes_in_flight_and_keeps_queue(self, rig):
        executor, store, orch = rig
        gate = executor.hold("slow")
        orch.start()
        slow = orch.submit({"name": "slow"})
        executor.started["slow"].wait(5.0)
        queued = orch.submit({"name": "queued"})

        done = threading.Event()

        def stop():
            orch.shutdown(drain=True, timeout=30.0)
            done.set()

        stopper = threading.Thread(target=stop)
        stopper.start()
        time.sleep(5 * POLL)
        assert not done.is_set()  # draining: blocked on the slow job
        gate.set()
        stopper.join(30.0)
        assert done.is_set()
        # in-flight work completed and published; queued work survived
        assert orch.get(slow.id).state == DONE
        assert store.get(slow.key) is not None
        assert orch.get(queued.id).state == QUEUED
        assert "queued" not in executor.executed

    def test_submit_after_shutdown_rejected(self, rig):
        _, _, orch = rig
        orch.start()
        orch.shutdown(drain=True, timeout=10.0)
        with pytest.raises(OrchestratorClosed):
            orch.submit({"name": "late"})

    def test_non_drain_shutdown_cancels_in_flight(self, rig):
        executor, store, orch = rig
        executor.hold("stuck")  # never released
        orch.start()
        job = orch.submit({"name": "stuck"})
        executor.started["stuck"].wait(5.0)
        orch.shutdown(drain=False, timeout=30.0)
        assert orch.get(job.id).state == CANCELLED
        assert store.get(job.key) is None
