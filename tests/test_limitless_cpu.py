"""Tests for LimitLESS software traps charged to the home CPU."""

from repro.machine import Machine, MachineConfig
from repro.memory import AccessKind, CoherenceParams, make_addr
from repro.proc import Compute, Yield


def machine(on_cpu: bool, hw_pointers: int = 2, n: int = 16):
    return Machine(
        MachineConfig(
            n_nodes=n,
            dir_hw_pointers=hw_pointers,
            coherence=CoherenceParams(
                limitless_trap_on_cpu=on_cpu, trap_cycles=60
            ),
        )
    )


def overflow_line(m, readers=8):
    """Make a line homed at node 0 overflow its hardware pointers."""
    addr = make_addr(0, 0x100)
    for reader in range(1, readers + 1):
        m.coherence.access(reader, addr, AccessKind.READ, lambda: None)
        m.run()
    return addr


class TestLimitlessCpuTraps:
    def test_trap_steals_home_cpu_time(self):
        """A thread computing on the home node is delayed by the
        overflow handler's CPU time (the trap jumps the ready queue
        at the thread's next scheduling point)."""
        results = {}
        for on_cpu in (False, True):
            m = machine(on_cpu)
            overflow_line(m)  # several traps already taken
            done = []

            def local_work():
                for _ in range(10):
                    yield Compute(10)
                    yield Yield()  # scheduling points between chunks
                done.append(m.sim.now)

            t0 = m.sim.now
            m.processor(0).run_thread(local_work())
            # concurrently, another overflow access arrives
            m.coherence.access(
                9, make_addr(0, 0x100), AccessKind.WRITE, lambda: None
            )
            m.run()
            results[on_cpu] = done[0] - t0
        assert results[True] > results[False]

    def test_trap_thread_visible_in_stats(self):
        m = machine(True)
        overflow_line(m)
        # the home processor ran trap contexts
        labels_ran = m.processor(0).stats.contexts_run
        assert labels_ran > 0
        assert m.nodes[0].directory.stats.software_traps > 0

    def test_disabled_by_default(self):
        m = Machine(MachineConfig(n_nodes=4))
        assert m.coherence.on_software_trap is None

    def test_remote_latency_unchanged_when_home_idle(self):
        """With an idle home CPU the trap overlaps the port charge, so
        requester-visible latency stays in the same ballpark."""
        lat = {}
        for on_cpu in (False, True):
            m = machine(on_cpu)
            addr = overflow_line(m)
            done = []
            t0 = m.sim.now
            m.coherence.access(9, addr, AccessKind.WRITE, lambda: done.append(m.sim.now))
            m.run()
            lat[on_cpu] = done[0] - t0
        assert abs(lat[True] - lat[False]) <= lat[False] * 0.5
