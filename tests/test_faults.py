"""Tests for the seeded fault-injection subsystem."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultRates,
    LinkOutage,
    NodeStall,
    SOFTWARE_KINDS,
    lossy_plan,
)
from repro.machine import Machine, MachineConfig
from repro.network.packet import PacketKind
from repro.proc import Compute, Load, Send, Store
from repro.trace import Tracer


def ping_machine(n_nodes=4):
    """Machine with a counting 'ping' handler on every node."""
    m = Machine(MachineConfig(n_nodes=n_nodes))
    got = []

    def handler(msg):
        got.append((m.sim.now, msg.src, msg.operands[0]))
        yield Compute(1)

    for node in range(n_nodes):
        m.processor(node).register_handler("ping", handler)
    return m, got


def spray(m, n=40, dst=1):
    """One thread on node 0 sending ``n`` spaced pings to ``dst``."""

    def worker():
        for i in range(n):
            yield Send(dst, "ping", operands=(i,))
            yield Compute(25)

    m.processor(0).run_thread(worker())
    m.run()


class TestFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultRates(drop=1.5)
        with pytest.raises(ValueError):
            FaultRates(delay=-0.1)

    def test_outage_and_stall_validation(self):
        with pytest.raises(ValueError):
            LinkOutage(0, 1, start=10, end=10)
        with pytest.raises(ValueError):
            NodeStall(0, start=0, duration=0)

    def test_protocol_kinds_warn(self):
        with pytest.warns(UserWarning, match="coherence-protocol"):
            FaultPlan(
                rates=FaultRates(drop=0.1),
                kinds=frozenset(PacketKind),
            )

    def test_default_kinds_are_software_only(self):
        plan = lossy_plan(0.5)
        assert plan.kinds == SOFTWARE_KINDS
        assert plan.eligible(PacketKind.USER_MESSAGE)
        assert not plan.eligible(PacketKind.COH_READ_REQ)


class TestDeterminism:
    def run_once(self, drop=0.25, seed=11):
        m, got = ping_machine()
        inj = FaultInjector(m, lossy_plan(drop, seed=seed))
        spray(m)
        # pid is a process-global counter, so compare everything else
        schedule = [(e.time, e.node, e.fault, e.detail) for e in inj.log]
        return m.sim.now, got, schedule

    def test_same_seed_same_schedule_and_cycles(self):
        a = self.run_once(seed=11)
        b = self.run_once(seed=11)
        assert a == b

    def test_different_seed_different_schedule(self):
        _, _, sched_a = self.run_once(seed=11)
        _, _, sched_b = self.run_once(seed=12)
        assert sched_a != sched_b

    def test_zero_rate_identical_to_uninjected(self):
        m0, got0 = ping_machine()
        spray(m0)
        m1, got1 = ping_machine()
        FaultInjector(m1, lossy_plan(0.0, seed=5))
        spray(m1)
        assert m0.sim.now == m1.sim.now
        assert got0 == got1
        assert m1.network.stats.faults_injected == 0


class TestFaultKinds:
    def test_drops_lose_messages(self):
        m, got = ping_machine()
        inj = FaultInjector(m, lossy_plan(0.5, seed=3))
        spray(m, n=40)
        assert m.network.stats.dropped > 0
        assert len(got) == 40 - m.network.stats.dropped
        assert all(e.fault == "drop" for e in inj.log)

    def test_duplicates_deliver_twice(self):
        m, got = ping_machine()
        plan = FaultPlan(rates=FaultRates(duplicate=0.5), seed=3)
        FaultInjector(m, plan)
        spray(m, n=40)
        dups = m.network.stats.duplicated
        assert dups > 0
        assert len(got) == 40 + dups

    def test_delay_still_delivers(self):
        m, got = ping_machine()
        plan = FaultPlan(rates=FaultRates(delay=0.5), seed=3)
        FaultInjector(m, plan)
        spray(m, n=40)
        assert m.network.stats.delayed > 0
        assert len(got) == 40

    def test_reorder_overtakes(self):
        m, got = ping_machine()
        plan = FaultPlan(
            rates=FaultRates(reorder=0.4), reorder_range=(40, 60), seed=3
        )
        FaultInjector(m, plan)
        spray(m, n=40)
        assert m.network.stats.reordered > 0
        assert len(got) == 40
        seqs = [seq for _, _, seq in got]
        assert seqs != sorted(seqs)  # something actually overtook

    def test_link_outage_window(self):
        m, got = ping_machine()
        # node 0 -> 1 are mesh neighbours; kill that link early on
        plan = FaultPlan(outages=[LinkOutage(0, 1, start=0, end=300)])
        FaultInjector(m, plan)
        spray(m, n=40)
        lost = m.network.stats.outage_drops
        assert 0 < lost < 40  # window expires mid-run
        assert len(got) == 40 - lost

    def test_node_stall_defers_handling(self):
        m0, got0 = ping_machine()
        spray(m0, n=10)
        base = [t for t, _, _ in got0]
        m1, got1 = ping_machine()
        plan = FaultPlan(stalls=[NodeStall(1, start=0, duration=2000)])
        FaultInjector(m1, plan)
        spray(m1, n=10)
        stalled = [t for t, _, _ in got1]
        assert m1.network.stats.stalls == 1
        assert len(stalled) == 10
        # every message waited out the stall window
        assert min(stalled) >= 2000 > min(base)

    def test_per_link_rates(self):
        m, got = ping_machine()
        plan = FaultPlan(link_rates={(0, 1): FaultRates(drop=1.0)})
        FaultInjector(m, plan)
        spray(m, n=10, dst=1)
        assert len(got) == 0
        assert m.network.stats.dropped == 10

    def test_protocol_traffic_untouched(self):
        m = Machine(MachineConfig(n_nodes=4))
        FaultInjector(m, lossy_plan(1.0, seed=1))
        addr = m.alloc(1, 8)  # remote home: loads/stores cross the fabric

        def worker():
            yield Store(addr, 42)
            v = yield Load(addr)
            assert v == 42

        m.processor(0).run_thread(worker())
        m.run()
        assert m.network.stats.dropped == 0


class TestAttachDetach:
    def test_detach_restores_pristine_send(self):
        m, got = ping_machine()
        inj = FaultInjector(m, lossy_plan(1.0, seed=1))
        inj.detach()
        assert not inj.attached
        spray(m, n=10)
        assert len(got) == 10
        assert m.network.stats.faults_injected == 0

    def test_context_manager(self):
        m, got = ping_machine()
        with FaultInjector(m, lossy_plan(1.0, seed=1)) as inj:
            assert inj.attached
        assert not inj.attached

    def test_double_attach_rejected(self):
        m, _ = ping_machine()
        inj = FaultInjector(m, lossy_plan(0.5))
        with pytest.raises(RuntimeError):
            inj.attach()

    def test_stacked_wrappers_restore_lifo(self):
        m, _ = ping_machine()
        tracer = Tracer(m, kinds={"packet"})
        inj = FaultInjector(m, lossy_plan(0.5))
        # tracer attached first: detaching it under the injector's
        # wrapper must be refused
        with pytest.raises(RuntimeError):
            tracer.detach()
        inj.detach()
        tracer.detach()


class TestObservability:
    def test_fault_trace_events(self):
        m, _ = ping_machine()
        tracer = Tracer(m, kinds={"fault"})
        FaultInjector(m, lossy_plan(0.5, seed=3), tracer=tracer)
        spray(m, n=40)
        faults = tracer.filter(kind="fault")
        assert faults
        assert len(faults) == m.network.stats.dropped
        assert all(ev.what == "drop" for ev in faults)

    def test_summary_and_stats_reset(self):
        m, _ = ping_machine()
        inj = FaultInjector(m, lossy_plan(0.5, seed=3))
        spray(m, n=40)
        assert "drop=" in inj.summary()
        assert m.network.stats.faults_injected > 0
        assert m.network.stats.packets > 0
        m.network.stats.reset()
        assert m.network.stats.faults_injected == 0
        assert m.network.stats.packets == 0
        assert not m.network.stats.by_kind

    def test_report_surfaces_faults_and_hot_links(self):
        from repro.analysis.report import collect

        m, _ = ping_machine()
        FaultInjector(m, lossy_plan(0.5, seed=3))
        spray(m, n=40)
        rep = collect(m)
        assert rep.faults_injected == m.network.stats.faults_injected
        assert rep.hot_links
        (pair, busy) = rep.hot_links[0]
        assert busy > 0 and pair in m.network.link_utilization()
        text = rep.format()
        assert "faults injected" in text
        assert "hottest links" in text


class TestZeroRateOnPaperWorkloads:
    """Acceptance: a zero-rate plan is cycle-identical to an uninjected
    machine on the fig7 (bulk memcpy) and fig8 (accum) MP workloads."""

    def test_fig7_memcpy_identical(self):
        from repro.experiments.common import make_machine, run_thread_timed
        from repro.runtime.bulk import BulkTransfer

        def measure(inject):
            m = make_machine(4)
            bulk = BulkTransfer(m)
            if inject:
                FaultInjector(m, lossy_plan(0.0, seed=9))
            nbytes = 1024
            src = m.alloc(0, nbytes)
            dst = m.alloc(1, nbytes)
            for i in range(nbytes // 8):
                m.store.write(src + i * 8, i)

            def bench():
                t0 = m.sim.now
                yield from bulk.send(1, src, dst, nbytes, wait_ack=True)
                return m.sim.now - t0

            cycles, _ = run_thread_timed(m, bench())
            return cycles, m.sim.now

        assert measure(False) == measure(True)

    def test_fig8_accum_identical(self):
        from repro.apps.accum import (
            AccumFetchService,
            accum_message_passing,
            fill_array,
        )
        from repro.experiments.common import make_machine, run_thread_timed
        from repro.runtime.bulk import BulkTransfer

        def measure(inject):
            m = make_machine(4)
            bulk = BulkTransfer(m)
            AccumFetchService(m, bulk)
            if inject:
                FaultInjector(m, lossy_plan(0.0, seed=9))
            nbytes = 512
            arr = m.alloc(1, nbytes)
            buf = m.alloc(0, nbytes)
            values = fill_array(m, arr, nbytes // 8)

            def bench():
                t0 = m.sim.now
                total = yield from accum_message_passing(
                    bulk, 1, arr, buf, nbytes // 8
                )
                return (total, m.sim.now - t0)

            (total, cycles), _ = run_thread_timed(m, bench())
            assert total == sum(values)
            return cycles, m.sim.now

        assert measure(False) == measure(True)
