"""Tests for weak ordering: the store buffer and Fence effect."""

import pytest

from repro.machine import Machine, MachineConfig
from repro.params import ProcessorParams
from repro.proc import Compute, FetchOp, Load, Store
from repro.proc.effects import Fence


def machine(depth=4, n=4):
    return Machine(
        MachineConfig(
            n_nodes=n, processor=ProcessorParams(store_buffer_depth=depth)
        )
    )


class TestStoreBuffer:
    def test_store_issue_is_cheap(self):
        m = machine(depth=4)
        addr = m.alloc(1, 8)  # remote: blocking would cost ~30+
        times = []

        def t():
            t0 = m.sim.now
            yield Store(addr, 42)
            times.append(m.sim.now - t0)

        m.processor(0).run_thread(t())
        m.run()
        assert times[0] <= m.config.processor.store_issue_cost + 1
        assert m.store.read(addr) == 42  # retired by quiesce

    def test_fence_waits_for_retirement(self):
        m = machine(depth=4)
        addr = m.alloc(1, 8)
        fence_done = []

        def t():
            yield Store(addr, 7)
            yield Fence()
            fence_done.append(m.sim.now)

        m.processor(0).run_thread(t())
        m.run()
        # the fence cannot complete before a remote write transaction
        assert fence_done[0] > 20
        assert m.store.read(addr) == 7

    def test_fence_cheap_when_empty(self):
        m = machine(depth=4)
        box = []

        def t():
            t0 = m.sim.now
            yield Fence()
            box.append(m.sim.now - t0)

        m.processor(0).run_thread(t())
        m.run()
        assert box[0] <= 2

    def test_full_buffer_blocks(self):
        m = machine(depth=2)
        addrs = [m.alloc(1, 8) for _ in range(6)]
        issue_times = []

        def t():
            for a in addrs:
                t0 = m.sim.now
                yield Store(a, 1)
                issue_times.append(m.sim.now - t0)

        m.processor(0).run_thread(t())
        m.run()
        # first two issue instantly; later ones wait for retirements
        assert issue_times[0] <= 3 and issue_times[1] <= 3
        assert max(issue_times[2:]) > 10
        assert all(m.store.read(a) == 1 for a in addrs)

    def test_store_to_load_forwarding(self):
        m = machine(depth=4)
        addr = m.alloc(1, 8)
        got = []

        def t():
            yield Store(addr, 99)
            v = yield Load(addr)  # must see the buffered value
            got.append((v, m.sim.now))

        m.processor(0).run_thread(t())
        m.run()
        assert got[0][0] == 99
        assert got[0][1] < 20  # forwarded, not fetched remotely

    def test_youngest_store_forwards(self):
        m = machine(depth=4)
        addr = m.alloc(1, 8)
        got = []

        def t():
            yield Store(addr, 1)
            yield Store(addr, 2)
            v = yield Load(addr)
            got.append(v)

        m.processor(0).run_thread(t())
        m.run()
        assert got == [2]

    def test_fetchop_drains_first(self):
        """Atomics act as fences: the RMW sees all prior stores."""
        m = machine(depth=4)
        addr = m.alloc(1, 8)
        got = []

        def t():
            yield Store(addr, 10)
            old = yield FetchOp(addr, lambda v: v + 5)
            got.append(old)

        m.processor(0).run_thread(t())
        m.run()
        assert got == [10]
        assert m.store.read(addr) == 15

    def test_weak_ordering_speeds_up_store_streams(self):
        """§2.2: write latency tolerated through weak ordering."""
        def stream_time(depth):
            m = machine(depth=depth)
            dst = m.alloc(1, 1024)
            done = []

            def t():
                for i in range(64):
                    yield Store(dst + i * 16, i)  # one miss per line
                yield Fence()
                done.append(m.sim.now)

            m.processor(0).run_thread(t())
            m.run()
            return done[0]

        blocking = stream_time(0)
        weak = stream_time(8)
        assert weak < blocking * 0.6

    def test_disabled_by_default(self):
        m = Machine(MachineConfig(n_nodes=2))
        assert m.config.processor.store_buffer_depth == 0
        addr = m.alloc(1, 8)
        times = []

        def t():
            t0 = m.sim.now
            yield Store(addr, 1)
            times.append(m.sim.now - t0)

        m.processor(0).run_thread(t())
        m.run()
        assert times[0] > 10  # blocking store paid the remote miss

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ProcessorParams(store_buffer_depth=-1)

    def test_values_correct_under_mixed_traffic(self):
        m = machine(depth=3)
        addrs = [m.alloc((i % 3) + 1, 8) for i in range(12)]

        def writer():
            for i, a in enumerate(addrs):
                yield Store(a, i * 11)
                if i % 4 == 3:
                    yield Fence()
            yield Fence()

        m.processor(0).run_thread(writer())
        m.run()
        for i, a in enumerate(addrs):
            assert m.store.read(a) == i * 11
